//! Integration: full labeling pipelines across sim + truth + assign.

use crowdkit::assign::{run_assignment, EntropyGreedy, ExpectedAccuracyGain, RandomAssign};
use crowdkit::core::metrics::accuracy;
use crowdkit::core::traits::TruthInferencer;
use crowdkit::sim::dataset::LabelingDataset;
use crowdkit::sim::population::mixes;
use crowdkit::sim::SimulatedCrowd;
use crowdkit::truth::{pipeline::label_tasks, DawidSkene, MajorityVote, OneCoinEm};

fn run_accuracy<I: TruthInferencer>(
    data: &LabelingDataset,
    pop_size: usize,
    k: usize,
    seed: u64,
    algo: &I,
) -> f64 {
    let crowd = SimulatedCrowd::new(mixes::spam_heavy(pop_size, seed), seed);
    let outcome = label_tasks(&crowd, &data.tasks, k, algo).unwrap();
    let predicted: Vec<u32> = data
        .tasks
        .iter()
        .map(|t| outcome.label_for(t).unwrap())
        .collect();
    accuracy(&predicted, &data.truths)
}

#[test]
fn em_beats_majority_vote_on_spam_heavy_crowds() {
    let data = LabelingDataset::binary(300, 1);
    let mv: f64 = (0..3)
        .map(|s| run_accuracy(&data, 40, 5, s, &MajorityVote))
        .sum::<f64>()
        / 3.0;
    let ds: f64 = (0..3)
        .map(|s| run_accuracy(&data, 40, 5, s, &DawidSkene::default()))
        .sum::<f64>()
        / 3.0;
    assert!(
        ds > mv + 0.05,
        "Dawid–Skene ({ds:.3}) should clearly beat MV ({mv:.3}) under heavy spam"
    );
}

#[test]
fn accuracy_grows_with_redundancy() {
    let data = LabelingDataset::binary(300, 2);
    let low = run_accuracy(&data, 40, 1, 7, &OneCoinEm::default());
    let high = run_accuracy(&data, 40, 9, 7, &OneCoinEm::default());
    assert!(
        high > low,
        "9 votes ({high:.3}) should beat 1 vote ({low:.3})"
    );
}

#[test]
fn reliable_crowds_make_everyone_accurate() {
    let data = LabelingDataset::binary(200, 3);
    let crowd = SimulatedCrowd::new(mixes::reliable(40, 3), 3);
    let outcome = label_tasks(&crowd, &data.tasks, 5, &MajorityVote).unwrap();
    let predicted: Vec<u32> = data
        .tasks
        .iter()
        .map(|t| outcome.label_for(t).unwrap())
        .collect();
    assert!(accuracy(&predicted, &data.truths) > 0.9);
}

#[test]
fn quality_aware_assignment_beats_random_under_tight_budget() {
    // 200 tasks, budget of 600 questions (3 per task on average).
    let data = LabelingDataset::generate(200, 2, 0.5, (0.2, 0.8), 5);
    let algo = OneCoinEm::default();

    let acc = |policy: &mut dyn crowdkit::assign::AssignmentPolicy, seed: u64| -> f64 {
        let crowd = SimulatedCrowd::new(mixes::mixed(50, seed), seed);
        let out = run_assignment(&crowd, &data.tasks, policy, 600, 15).unwrap();
        let inference = algo.infer(&out.matrix).unwrap();
        let mut correct = 0;
        let mut total = 0;
        for (task, &truth) in data.tasks.iter().zip(&data.truths) {
            if let Some(t) = out.matrix.task_index(task.id) {
                total += 1;
                if inference.labels[t] == truth {
                    correct += 1;
                }
            }
        }
        // Unlabelled tasks count as wrong: policies must cover the set.
        correct as f64 / (total.max(data.tasks.len())) as f64
    };

    let runs = 5;
    let random: f64 = (0..runs)
        .map(|s| acc(&mut RandomAssign::new(s), s))
        .sum::<f64>()
        / runs as f64;
    let entropy: f64 = (0..runs).map(|s| acc(&mut EntropyGreedy, s)).sum::<f64>() / runs as f64;
    let gain: f64 = (0..runs)
        .map(|s| acc(&mut ExpectedAccuracyGain::default(), s))
        .sum::<f64>()
        / runs as f64;

    assert!(
        entropy >= random - 0.02,
        "entropy ({entropy:.3}) should not trail random ({random:.3})"
    );
    assert!(
        gain >= random - 0.02,
        "expected-gain ({gain:.3}) should not trail random ({random:.3})"
    );
}

#[test]
fn platform_budget_bounds_total_spend() {
    use crowdkit::core::budget::Budget;
    use crowdkit::sim::PlatformBuilder;

    let data = LabelingDataset::binary(100, 4);
    let pop = mixes::reliable(30, 4);
    let crowd = PlatformBuilder::new(pop).budget(Budget::new(50.0)).build();
    let outcome = label_tasks(&crowd, &data.tasks, 5, &MajorityVote).unwrap();
    assert_eq!(outcome.answers_bought, 50, "spend equals the budget exactly");
}
