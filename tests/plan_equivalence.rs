//! Optimizer soundness: for every fixture query, the optimized and the
//! naive plan return byte-identical result sets — at any platform thread
//! count — and the cost model never predicts the optimized plan to spend
//! more than the canonical one.

use crowdkit::sim::population::PopulationBuilder;
use crowdkit::sim::{PlatformBuilder, SimulatedCrowd};
use crowdkit::sql::exec::SimTaskFactory;
use crowdkit::sql::{QueryOpts, QueryStats, Session, Value};

const SEED: u64 = 73;

/// Every CrowdSQL shape: machine-only, selective fill, crowd filter,
/// crowd join, full crowd sort, top-k, COUNT(*), hash join.
const FIXTURE_QUERIES: &[&str] = &[
    "SELECT name FROM products WHERE id >= 3 ORDER BY id DESC",
    "SELECT category FROM products WHERE id >= 6",
    "SELECT name FROM products WHERE category = 'phone'",
    "SELECT name FROM products WHERE category = 'phone' AND id >= 4",
    "SELECT products.name, brands.bname FROM products, brands \
     WHERE CROWDEQUAL(products.name, brands.bname)",
    "SELECT name FROM products ORDER BY CROWDORDER(name)",
    "SELECT name FROM products ORDER BY CROWDORDER(name) LIMIT 2",
    "SELECT COUNT(*) FROM products WHERE category = 'phone'",
    "SELECT COUNT(*) FROM products WHERE id >= 2",
    "SELECT oid, bname FROM orders, brands WHERE cust = bname ORDER BY oid ASC",
];

fn session() -> Session {
    let s = Session::new();
    s.execute_ddl("CREATE TABLE products (id INT, name TEXT, category CROWD TEXT)")
        .unwrap();
    for i in 0..8 {
        s.execute_ddl(&format!("INSERT INTO products VALUES ({i}, 'p{i}', NULL)"))
            .unwrap();
    }
    s.execute_ddl("CREATE TABLE brands (bname TEXT)").unwrap();
    for b in ["p1", "p4", "zzz"] {
        s.execute_ddl(&format!("INSERT INTO brands VALUES ('{b}')"))
            .unwrap();
    }
    s.execute_ddl("CREATE TABLE orders (oid INT, cust TEXT)")
        .unwrap();
    s.execute_ddl("INSERT INTO orders VALUES (1, 'p1'), (2, 'zzz'), (3, NULL)")
        .unwrap();
    s
}

fn factory() -> impl crowdkit::sql::TaskFactory {
    SimTaskFactory {
        fill_truth: |_: &str, row: &[Value], _: &str| match row[0] {
            Value::Int(i) if i % 2 == 0 => "phone".to_owned(),
            _ => "other".to_owned(),
        },
        equal_truth: |l: &Value, r: &Value| l.display_raw().eq_ignore_ascii_case(&r.display_raw()),
        left_wins_truth: |l: &Value, r: &Value| l.display_raw() > r.display_raw(),
    }
}

fn crowd(threads: usize) -> SimulatedCrowd {
    // Perfect accuracy, so answers (and therefore result sets) are a
    // pure function of the query plan's question sequence.
    let pop = PopulationBuilder::new().reliable(60, 1.0, 1.0).build(SEED);
    PlatformBuilder::new(pop).seed(SEED).threads(threads).build()
}

fn run(sql: &str, opts: &QueryOpts, threads: usize) -> (Vec<Vec<Value>>, QueryStats) {
    let s = session();
    let oracle = crowd(threads);
    let mut f = factory();
    s.query_crowd(sql, &oracle, &mut f, opts)
        .unwrap_or_else(|e| panic!("{sql} failed: {e}"))
}

#[test]
fn optimized_and_naive_plans_agree_on_every_fixture_query() {
    for sql in FIXTURE_QUERIES {
        let (naive_rows, naive) = run(sql, &QueryOpts::naive().votes(3), 1);
        for threads in [1, 4] {
            for batch in [0, 4] {
                let opts = QueryOpts::new().votes(3).batch(batch);
                let (opt_rows, opt) = run(sql, &opts, threads);
                assert_eq!(
                    naive_rows, opt_rows,
                    "{sql} (threads={threads}, batch={batch}): result sets must be byte-identical"
                );
                assert!(
                    opt.predicted_spend <= naive.predicted_spend + 1e-9,
                    "{sql}: predicted optimized spend {} exceeds naive {}",
                    opt.predicted_spend,
                    naive.predicted_spend
                );
            }
        }
    }
}

#[test]
fn results_are_identical_across_thread_counts() {
    for sql in FIXTURE_QUERIES {
        let (rows_1, stats_1) = run(sql, &QueryOpts::new().votes(3), 1);
        let (rows_4, stats_4) = run(sql, &QueryOpts::new().votes(3), 4);
        assert_eq!(rows_1, rows_4, "{sql}: thread count changed the result");
        assert_eq!(
            stats_1.questions, stats_4.questions,
            "{sql}: thread count changed the question count"
        );
    }
}

#[test]
fn explain_prediction_matches_query_prediction() {
    // The spend EXPLAIN promises is the spend query_crowd reports as its
    // prediction (same catalog, same opts).
    let sql = "SELECT category FROM products WHERE id >= 6";
    let s = session();
    let report = s.explain(sql, true).unwrap();
    let oracle = crowd(1);
    let mut f = factory();
    let (_, stats) = s
        .query_crowd(sql, &oracle, &mut f, &QueryOpts::new())
        .unwrap();
    assert!(
        (report.predicted.spend - stats.predicted_spend).abs() < 1e-9,
        "explain predicted {}, query predicted {}",
        report.predicted.spend,
        stats.predicted_spend
    );
}
