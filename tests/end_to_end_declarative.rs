//! Integration: the declarative layers (CrowdSQL + crowd-Datalog) running
//! against the simulated platform.

use crowdkit::core::answer::AnswerValue;
use crowdkit::core::task::{Task, TaskKind};
use crowdkit::datalog::{parse_program, Const, Engine, OracleResolver};
use crowdkit::sim::population::PopulationBuilder;
use crowdkit::sim::SimulatedCrowd;
use crowdkit::sql::exec::SimTaskFactory;
use crowdkit::sql::{QueryOpts, Session, Value};

fn products_session(n: i64) -> Session {
    let s = Session::new();
    s.execute_ddl("CREATE TABLE products (id INT, name TEXT, category CROWD TEXT)")
        .unwrap();
    for i in 0..n {
        s.execute_ddl(&format!("INSERT INTO products VALUES ({i}, 'p{i}', NULL)"))
            .unwrap();
    }
    s
}

fn factory() -> impl crowdkit::sql::TaskFactory {
    SimTaskFactory {
        fill_truth: |_: &str, row: &[Value], _: &str| match row[0] {
            Value::Int(i) if i % 3 == 0 => "phone".to_owned(),
            _ => "other".to_owned(),
        },
        equal_truth: |l: &Value, r: &Value| l.display_raw().eq_ignore_ascii_case(&r.display_raw()),
        left_wins_truth: |l: &Value, r: &Value| l.display_raw() > r.display_raw(),
    }
}

#[test]
fn crowdsql_query_with_noisy_crowd_still_answers_correctly() {
    let s = products_session(9);
    let pop = PopulationBuilder::new().reliable(60, 0.85, 0.95).build(31);
    let crowd = SimulatedCrowd::new(pop, 31);
    let mut f = factory();
    let (rows, stats) = s
        .query_crowd(
            "SELECT name FROM products WHERE category = 'phone'",
            &crowd,
            &mut f,
            &QueryOpts::new().votes(5),
        )
        .unwrap();
    let names: Vec<String> = rows.iter().map(|r| r[0].display_raw()).collect();
    assert_eq!(names, vec!["p0", "p3", "p6"], "ids divisible by 3 are phones");
    assert!(stats.questions > 0);
}

#[test]
fn crowdsql_optimizer_saves_questions_on_selective_queries() {
    let sql = "SELECT category FROM products WHERE id >= 8";
    let run = |optimized: bool| -> u64 {
        let s = products_session(10);
        let pop = PopulationBuilder::new().reliable(60, 0.95, 1.0).build(7);
        let crowd = SimulatedCrowd::new(pop, 7);
        let mut f = factory();
        let opts = QueryOpts::new().votes(3).optimize(optimized);
        let (_, stats) = s.query_crowd(sql, &crowd, &mut f, &opts).unwrap();
        stats.questions
    };
    let opt = run(true);
    let naive = run(false);
    assert!(
        opt * 3 <= naive,
        "optimized ({opt}) should be ≤ a third of naive ({naive}) at 20% selectivity"
    );
}

#[test]
fn crowdsql_crowdorder_limit_returns_the_best_row() {
    let s = Session::new();
    s.execute_ddl("CREATE TABLE t (name TEXT)").unwrap();
    for n in ["delta", "alpha", "omega", "kappa", "sigma"] {
        s.execute_ddl(&format!("INSERT INTO t VALUES ('{n}')")).unwrap();
    }
    let pop = PopulationBuilder::new().reliable(60, 0.95, 1.0).build(3);
    let crowd = SimulatedCrowd::new(pop, 3);
    let mut f = factory();
    let (rows, _) = s
        .query_crowd(
            "SELECT name FROM t ORDER BY CROWDORDER(name) LIMIT 1",
            &crowd,
            &mut f,
            &QueryOpts::new().votes(3),
        )
        .unwrap();
    assert_eq!(rows, vec![vec![Value::text("sigma")]], "lexicographic max");
}

#[test]
fn datalog_program_with_simulated_crowd_and_negation() {
    let program = parse_program(
        r#"
        person("ada"). person("bob"). person("cyd").
        @crowd hometown/2.
        located(P, C) :- person(P), hometown(P, C).
        in_paris(P) :- located(P, C), C = "paris".
        not_in_paris(P) :- person(P), not in_paris(P).
    "#,
    )
    .unwrap();
    let engine = Engine::new(program).unwrap();

    let pop = PopulationBuilder::new().reliable(40, 0.9, 0.99).build(5);
    let crowd = SimulatedCrowd::new(pop, 5);
    let mut resolver = OracleResolver::new(&crowd, 5, |id, _pred, bound, _free| {
        let who = bound[0].1.display_raw();
        let truth = if who == "ada" || who == "cyd" { "paris" } else { "berlin" };
        Task::new(id, TaskKind::OpenText, format!("hometown of {who}?"))
            .with_truth(AnswerValue::Text(truth.into()))
    });
    let (db, stats) = engine.run(&mut resolver).unwrap();

    let in_paris = db.relation("in_paris");
    assert_eq!(
        in_paris,
        vec![
            vec![Const::Str("ada".into())],
            vec![Const::Str("cyd".into())]
        ]
    );
    let not_in_paris = db.relation("not_in_paris");
    assert_eq!(not_in_paris, vec![vec![Const::Str("bob".into())]]);
    assert_eq!(stats.fetches, 3, "one fetch per person");
    assert_eq!(stats.questions_asked, 15, "5 votes per fetch");
}

#[test]
fn datalog_and_sql_agree_on_the_same_crowd_facts() {
    // The same ground truth served through both declarative layers must
    // produce the same answer set.
    let truth_category = |i: i64| if i % 2 == 0 { "phone" } else { "other" };

    // SQL side.
    let s = Session::new();
    s.execute_ddl("CREATE TABLE items (id INT, category CROWD TEXT)")
        .unwrap();
    for i in 0..6 {
        s.execute_ddl(&format!("INSERT INTO items VALUES ({i}, NULL)"))
            .unwrap();
    }
    let pop = PopulationBuilder::new().reliable(40, 0.95, 1.0).build(1);
    let crowd = SimulatedCrowd::new(pop, 1);
    let mut f = SimTaskFactory {
        fill_truth: move |_: &str, row: &[Value], _: &str| match row[0] {
            Value::Int(i) => truth_category(i).to_owned(),
            _ => unreachable!(),
        },
        equal_truth: |_: &Value, _: &Value| false,
        left_wins_truth: |_: &Value, _: &Value| false,
    };
    let (rows, _) = s
        .query_crowd(
            "SELECT id FROM items WHERE category = 'phone'",
            &crowd,
            &mut f,
            &QueryOpts::new().votes(3),
        )
        .unwrap();
    let sql_ids: Vec<i64> = rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(i) => i,
            _ => unreachable!(),
        })
        .collect();

    // Datalog side.
    let program = parse_program(
        r#"
        item(0). item(1). item(2). item(3). item(4). item(5).
        @crowd category/2.
        phone(I) :- item(I), category(I, C), C = "phone".
    "#,
    )
    .unwrap();
    let engine = Engine::new(program).unwrap();
    let pop = PopulationBuilder::new().reliable(40, 0.95, 1.0).build(2);
    let crowd2 = SimulatedCrowd::new(pop, 2);
    let mut resolver = OracleResolver::new(&crowd2, 3, move |id, _pred, bound, _free| {
        let i = match bound[0].1 {
            Const::Int(i) => i,
            _ => unreachable!(),
        };
        Task::new(id, TaskKind::OpenText, format!("category of {i}?"))
            .with_truth(AnswerValue::Text(truth_category(i).into()))
    });
    let (db, _) = engine.run(&mut resolver).unwrap();
    let datalog_ids: Vec<i64> = db
        .relation("phone")
        .into_iter()
        .map(|row| match row[0] {
            Const::Int(i) => i,
            _ => unreachable!(),
        })
        .collect();

    let mut sql_sorted = sql_ids;
    sql_sorted.sort_unstable();
    assert_eq!(sql_sorted, datalog_ids);
    assert_eq!(sql_sorted, vec![0, 2, 4]);
}
