//! Integration: crowd operators running against the simulated platform.

use crowdkit::core::answer::AnswerValue;
use crowdkit::core::metrics::pairwise_cluster_f1;
use crowdkit::core::task::{Task, TaskKind};
use crowdkit::core::ids::TaskId;
use crowdkit::ops::agg::estimate_count;
use crowdkit::ops::collect::{chao92, crowd_collect};
use crowdkit::ops::filter::crowd_filter;
use crowdkit::ops::join::{candidate_pairs, crowd_join, JoinConfig};
use crowdkit::ops::sort::tournament::crowd_top_k;
use crowdkit::sim::dataset::{
    CollectionPool, CountingDataset, EntityDataset, LabelingDataset, RankingDataset,
};
use crowdkit::sim::population::{mixes, PopulationBuilder};
use crowdkit::sim::SimulatedCrowd;
use crowdkit::truth::sequential::{MajorityMargin, Sprt};

#[test]
fn filter_with_margin_rule_is_cheaper_than_fixed_k_at_similar_accuracy() {
    let data = LabelingDataset::binary(200, 9);
    let run = |rule: &dyn crowdkit::core::traits::StoppingRule| {
        let crowd = SimulatedCrowd::new(mixes::reliable(60, 9), 9);
        let out = crowd_filter(&crowd, &data.tasks, rule, 7).unwrap();
        let correct = out
            .decisions
            .iter()
            .zip(&data.truths)
            .filter(|(d, &t)| matches!(d, Some(d) if d.keep == (t == 1)))
            .count();
        (out.questions_asked, correct as f64 / data.tasks.len() as f64)
    };
    let (fixed_cost, fixed_acc) = run(&crowdkit::truth::sequential::FixedK { k: 7 });
    let (margin_cost, margin_acc) = run(&MajorityMargin { margin: 2 });
    let (sprt_cost, sprt_acc) = run(&Sprt::default());

    assert!(margin_cost < fixed_cost, "margin {margin_cost} < fixed {fixed_cost}");
    assert!(sprt_cost < fixed_cost, "sprt {sprt_cost} < fixed {fixed_cost}");
    assert!(margin_acc > fixed_acc - 0.05, "margin acc {margin_acc} vs {fixed_acc}");
    assert!(sprt_acc > fixed_acc - 0.05, "sprt acc {sprt_acc} vs {fixed_acc}");
}

#[test]
fn entity_resolution_pipeline_reaches_high_f1_with_reliable_crowd() {
    let data = EntityDataset::generate(60, 3, 1, 13);
    let texts: Vec<String> = data.records.iter().map(|r| r.text.clone()).collect();
    let cands = candidate_pairs(&texts, 0.3);
    let pop = PopulationBuilder::new().reliable(40, 0.92, 0.99).build(13);
    let crowd = SimulatedCrowd::new(pop, 13);
    let out = crowd_join(
        &crowd,
        texts.len(),
        &cands,
        |id, a, b| {
            Task::binary(id, format!("{a} vs {b}"))
                .with_truth(AnswerValue::Choice(data.same_entity(a, b) as u32))
        },
        &JoinConfig::default(),
    )
    .unwrap();
    let pr = pairwise_cluster_f1(&out.clusters, &data.truth_clusters());
    assert!(pr.precision() > 0.9, "precision {}", pr.precision());
    assert!(
        out.deduced_same + out.deduced_different > 0,
        "transitivity fires on duplicate-heavy data"
    );
}

#[test]
fn top_k_recovers_the_true_top_items() {
    let data = RankingDataset::generate(32, 21);
    let pop = PopulationBuilder::new().reliable(60, 0.93, 0.99).build(21);
    let crowd = SimulatedCrowd::new(pop, 21);
    let out = crowd_top_k(&crowd, 32, 3, 3, |id, a, b| {
        data.comparison_task(id, a, b)
    })
    .unwrap();
    let positions = data.true_positions();
    // The returned champions should all be genuinely near the top.
    for &w in &out.winners {
        assert!(
            positions[w] < 6,
            "winner {w} has true position {} — not near the top",
            positions[w]
        );
    }
    assert_eq!(out.winners.len(), 3);
}

#[test]
fn count_estimation_ci_covers_truth_most_of_the_time() {
    let data = CountingDataset::generate(3000, 0.25, 17);
    let truth = data.true_count() as f64;
    let mut covered = 0;
    let runs = 10;
    for seed in 0..runs {
        let pop = PopulationBuilder::new().reliable(400, 0.95, 1.0).build(seed);
        let crowd = SimulatedCrowd::new(pop, seed);
        let est = estimate_count(&crowd, &data.tasks, 300, 3, 1.96, seed).unwrap();
        if est.ci_low <= truth && truth <= est.ci_high {
            covered += 1;
        }
        assert!((est.estimate - truth).abs() / truth < 0.35);
    }
    assert!(covered >= 7, "95% CI covered truth only {covered}/{runs} times");
}

#[test]
fn collection_curve_approaches_true_richness() {
    let pool = CollectionPool::generate(40, 0);
    let task = pool.task(TaskId::new(0));
    let pop = PopulationBuilder::new().reliable(500, 0.8, 0.95).build(23);
    let crowd = SimulatedCrowd::new(pop, 23);
    let out = crowd_collect(&crowd, &task, 0.995, 400).unwrap();
    let distinct = out.counts.distinct();
    assert!(
        distinct > 25,
        "after {} answers only {distinct}/40 species observed",
        out.questions_asked
    );
    let est = chao92(&out.counts);
    assert!(
        est >= distinct as f64 && est < 90.0,
        "chao92 {est} should sit between observed ({distinct}) and a sane cap"
    );
}

#[test]
fn collection_task_kind_matches_enumeration() {
    let pool = CollectionPool::generate(5, 0);
    let task = pool.task(TaskId::new(0));
    assert!(matches!(task.kind, TaskKind::Collection));
}
