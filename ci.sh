#!/usr/bin/env bash
# Local CI: build, test, lint. Run from the repository root.
set -euo pipefail

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Machine-readable truth-inference timings (per-algorithm ns/iter).
cargo run --release -p crowdkit-bench --bin bench_truth -- BENCH_truth.json
