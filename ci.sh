#!/usr/bin/env bash
# Local CI: build, test, lint. Run from the repository root.
set -euo pipefail

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Workspace static analysis: determinism & safety rules (DET/PANIC/SAFETY/
# DOC). Exits nonzero on any unsuppressed finding; LINT.json is the
# machine-readable report.
cargo run --release -p crowdkit-lint -- --json LINT.json

RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Telemetry overhead gate: instrumented hot paths must stay within 5% of
# the null-recorder baseline (asserted inside the bench binary).
cargo bench -p crowdkit-bench --bench obs_overhead

# Machine-readable truth-inference timings (per-algorithm ns/iter).
cargo run --release -p crowdkit-bench --bin bench_truth -- BENCH_truth.json
