#!/usr/bin/env bash
# Local CI: build, test, lint, trace, perf gate. Run from the repository
# root. Kept artifacts (gitignored, archive from CI if wanted):
#   RUNREPORT.json      per-experiment cost/latency/quality telemetry
#   RUNLOG.jsonl        headered deterministic event stream of the suite
#   LINT.json           workspace static-analysis findings
#   BENCH_truth.json    current per-algorithm ns/iter snapshot
#   BENCH_scale.json    macrobench snapshot (sparse vs dense EM, peak RSS)
#   BENCH_HISTORY.jsonl rolling bench history (regression-gate baseline)
set -euo pipefail

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Workspace static analysis: per-file determinism & safety rules (DET/
# PANIC/SAFETY/DOC) plus the interprocedural passes (taint chains, CONC
# lock rules) behind the ratcheted baseline. Exits nonzero on any NEW
# finding, any stale baseline entry, or any stale suppression; LINT.json
# is the machine-readable report. The scan doubles as the linter's
# self-benchmark: a full-workspace symbol-table + call-graph + taint +
# lock-model pass must stay under 10 seconds.
LINT_T0=$(date +%s%N)
cargo run --release -p crowdkit-lint -- --json LINT.json --baseline LINT_BASELINE.json --audit-suppressions > /dev/null
LINT_T1=$(date +%s%N)
LINT_MS=$(( (LINT_T1 - LINT_T0) / 1000000 ))
echo "crowdkit-lint full-workspace scan: ${LINT_MS} ms"
test "$LINT_MS" -lt 10000 || { echo "lint self-benchmark: scan took ${LINT_MS} ms (>= 10s gate)"; exit 1; }

# Burn-down ratchet: the acknowledged-debt counter may only decrease.
# LINT.json records the baselined count of this scan; the committed
# baseline's burn_down must equal it (no silent re-growth), and both must
# agree with the entry list (validated again here, independent of the
# tool).
python3 - <<'EOF'
import json
lint = json.load(open("LINT.json"))
base = json.load(open("LINT_BASELINE.json"))
assert base["burn_down"] == len(base["entries"]), \
    f"burn_down {base['burn_down']} != {len(base['entries'])} entries"
assert lint["baselined"] == base["burn_down"], \
    f"scan matched {lint['baselined']} baselined finding(s) but burn_down says {base['burn_down']}"
for e in base["entries"]:
    assert len(e.get("reason", "").strip()) >= 3, f"baseline entry {e['fingerprint']} has no reason"
print(f"lint burn-down: {base['burn_down']} acknowledged finding(s), all matched and reasoned")
EOF

RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Optimizer ablation gate: run E10 instrumented and assert the optimized
# plans' actual crowd spend beats the naive plans' by a fixed margin
# (mean over the fixture queries, optimized × 1.2 ≤ naive).
cargo run --release -p crowdkit-bench --bin experiments -- e10 --report > /dev/null
python3 - <<'EOF'
import json
r = json.load(open("RUNREPORT.json"))
q = next(x for x in r["runs"] if x["id"] == "e10")["quality"]
naive, opt = q["spend_actual_naive"], q["spend_actual_opt"]
assert opt * 1.2 <= naive, f"optimizer margin gate: optimized {opt} * 1.2 > naive {naive}"
assert q["spend_pred_naive"] > 0 and q["spend_pred_opt"] > 0, "predictions missing from RUNREPORT"
print(f"e10 optimizer gate: optimized {opt:.0f} vs naive {naive:.0f} actual spend — ok")
EOF

# Full experiment suite with telemetry: RUNREPORT.json + the headered
# deterministic event log, then replay and metrics-rollup smoke-checks
# over that log (`top` must find and render the suite's metrics.snapshot
# telemetry).
cargo run --release -p crowdkit-bench --bin experiments -- all --report --log RUNLOG.jsonl > /dev/null
cargo run --release -p crowdkit-trace --bin crowdtrace -- replay RUNLOG.jsonl > /dev/null
cargo run --release -p crowdkit-trace --bin crowdtrace -- top RUNLOG.jsonl | grep -q 'platform.tasks_answered'

# Decision-provenance smoke-check: the suite log must explain a known
# task end to end (votes, margin, worker weights, flip timeline) and the
# audit rollup must surface contested tasks, worker influence and
# spend-per-correct-label. Output goes through files, not pipes — the
# CLI streams with print! and an early-exiting grep would SIGPIPE it.
cargo run --release -p crowdkit-trace --bin crowdtrace -- why 7 RUNLOG.jsonl --exp e13 --algo ds > WHY.txt
grep -q 'margin' WHY.txt
grep -q 'votes:' WHY.txt
grep -q 'weight' WHY.txt
grep -q 'flips:' WHY.txt
cargo run --release -p crowdkit-trace --bin crowdtrace -- audit RUNLOG.jsonl > AUDIT.txt
grep -q 'contested tasks' AUDIT.txt
grep -q 'most influential workers' AUDIT.txt
grep -q 'spend/correct' AUDIT.txt
rm -f WHY.txt AUDIT.txt

# Telemetry overhead gates: instrumented hot paths must stay within 5% of
# the null-recorder baseline for obs events, within 3% of the
# disabled-flag baseline for always-on metrics, and within 5% of the
# obs-alone baseline for decision-provenance capture (asserted inside the
# bench binaries).
cargo bench -p crowdkit-bench --bench obs_overhead
cargo bench -p crowdkit-bench --bench metrics_overhead
cargo bench -p crowdkit-bench --bench prov_overhead

# Machine-readable truth-inference timings (per-algorithm ns/iter); each
# run also appends one line to BENCH_HISTORY.jsonl.
cargo run --release -p crowdkit-bench --bin bench_truth -- BENCH_truth.json BENCH_HISTORY.jsonl

# Perf-regression gate: current ns/iter vs the rolling median of the last
# 5 same-bench same-thread-count history entries; >25% slower on any
# algorithm fails.
cargo run --release -p crowdkit-trace --bin crowdtrace -- regress --history BENCH_HISTORY.jsonl --current BENCH_truth.json

# Million-scale macrobench, smoke tier (10k tasks / 1k workers / 100k
# responses): times the sparse incremental EM kernels against their dense
# baselines (ds/zc/glad plus *_dense, kos) and records peak RSS; appends a
# bench:"scale" history line, then gates it like the truth numbers.
cargo run --release -p crowdkit-bench --bin bench_scale -- smoke
cargo run --release -p crowdkit-trace --bin crowdtrace -- regress --history BENCH_HISTORY.jsonl --current BENCH_scale.json
