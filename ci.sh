#!/usr/bin/env bash
# Local CI: build, test, lint. Run from the repository root.
set -euo pipefail

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
