//! CrowdSQL walkthrough: CROWD columns, CROWDEQUAL joins, CROWDORDER with
//! LIMIT, and the naive-vs-optimized plan cost gap.
//!
//! ```sh
//! cargo run --example crowdsql_query
//! ```

use crowdkit::sim::population::PopulationBuilder;
use crowdkit::sim::SimulatedCrowd;
use crowdkit::sql::exec::SimTaskFactory;
use crowdkit::sql::{QueryOpts, Session, Value};

fn main() {
    let seed = 5;
    let session = Session::new();
    session
        .execute_ddl("CREATE TABLE products (id INT, name TEXT, category CROWD TEXT)")
        .unwrap();
    for i in 0..12 {
        session
            .execute_ddl(&format!("INSERT INTO products VALUES ({i}, 'product{i}', NULL)"))
            .unwrap();
    }

    let sql = "SELECT name FROM products WHERE category = 'phone' AND id >= 6";

    println!("query:\n  {sql}\n");
    let naive_plan = session.explain(sql, false).unwrap();
    let opt_plan = session.explain(sql, true).unwrap();
    println!("naive plan:\n{}", indent(&naive_plan.to_string()));
    println!(
        "optimized plan (rewrites: {}):\n{}",
        opt_plan.rewrites.join(", "),
        indent(&opt_plan.to_string())
    );
    println!(
        "predicted spend: naive {:.0}, optimized {:.0}\n",
        naive_plan.predicted.spend, opt_plan.predicted.spend
    );

    // Ground truth for the simulation: even ids are phones.
    let mut factory = SimTaskFactory {
        fill_truth: |_: &str, row: &[Value], _: &str| match row[0] {
            Value::Int(i) if i % 2 == 0 => "phone".to_owned(),
            _ => "laptop".to_owned(),
        },
        equal_truth: |l: &Value, r: &Value| l.display_raw().eq_ignore_ascii_case(&r.display_raw()),
        left_wins_truth: |l: &Value, r: &Value| l.display_raw() > r.display_raw(),
    };

    for (label, optimized) in [("naive", false), ("optimized", true)] {
        // Fresh session per run so write-back caching doesn't mask costs.
        let s = Session::new();
        s.execute_ddl("CREATE TABLE products (id INT, name TEXT, category CROWD TEXT)")
            .unwrap();
        for i in 0..12 {
            s.execute_ddl(&format!("INSERT INTO products VALUES ({i}, 'product{i}', NULL)"))
                .unwrap();
        }
        let pop = PopulationBuilder::new().reliable(40, 0.9, 0.99).build(seed);
        let crowd = SimulatedCrowd::new(pop, seed);
        let opts = QueryOpts::new().votes(3).optimize(optimized);
        let (rows, stats) = s.query_crowd(sql, &crowd, &mut factory, &opts).unwrap();
        println!(
            "{label:>9}: {} rows, {} crowd questions ({} cells filled, {:.0} spent over {} rounds)",
            rows.len(),
            stats.questions,
            stats.cells_filled,
            stats.spend,
            stats.rounds
        );
        if optimized {
            let names: Vec<String> = rows.iter().map(|r| r[0].display_raw()).collect();
            println!("           rows: {names:?}");
        }
    }

    println!("\nthe optimizer ran the machine predicate (id >= 6) before buying");
    println!("crowd answers, so only surviving rows paid for category fills.");
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}
