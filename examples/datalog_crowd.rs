//! Crowd-Datalog walkthrough: a Deco-style program whose `@crowd`
//! predicate is fetched on demand from a simulated crowd, with recursion
//! and negation in the same program.
//!
//! ```sh
//! cargo run --example datalog_crowd
//! ```

use crowdkit::core::answer::AnswerValue;
use crowdkit::core::task::{Task, TaskKind};
use crowdkit::datalog::{parse_program, Const, Engine, OracleResolver};
use crowdkit::sim::population::PopulationBuilder;
use crowdkit::sim::SimulatedCrowd;

fn main() {
    let seed = 9;
    let program = parse_program(
        r#"
        % machine-known facts
        restaurant("sushi_dai").   restaurant("ichiran").
        restaurant("le_bernardin"). restaurant("noma").

        % the crowd knows where restaurants are
        @crowd city_of/2.

        located(R, C) :- restaurant(R), city_of(R, C).
        in_tokyo(R)   :- located(R, C), C = "tokyo".
        elsewhere(R)  :- restaurant(R), not in_tokyo(R).

        % stratified aggregation over crowd-fetched tuples
        per_city(C, count<R>) :- located(R, C).
    "#,
    )
    .expect("program parses");

    let engine = Engine::new(program).expect("program validates");

    // Ground truth the simulated workers draw from.
    let city = |r: &str| -> &str {
        match r {
            "sushi_dai" | "ichiran" => "tokyo",
            "le_bernardin" => "new york",
            _ => "copenhagen",
        }
    };

    let pop = PopulationBuilder::new().reliable(30, 0.85, 0.98).build(seed);
    let crowd = SimulatedCrowd::new(pop, seed);
    let mut resolver = OracleResolver::new(&crowd, 5, |id, pred, bound, _free| {
        // Render the fetch as an open-text task with latent truth attached.
        let restaurant = bound
            .first()
            .map(|(_, c)| c.display_raw())
            .unwrap_or_default();
        Task::new(id, TaskKind::OpenText, format!("{pred}: city of {restaurant}?"))
            .with_truth(AnswerValue::Text(city(&restaurant).to_owned()))
    });

    let (db, stats) = engine.run(&mut resolver).expect("evaluation succeeds");

    println!("fetches issued      : {}", stats.fetches);
    println!("crowd tuples learned: {}", stats.crowd_tuples);
    println!("questions purchased : {}", stats.questions_asked);
    println!();
    let names = |pred: &str| -> Vec<String> {
        db.relation(pred)
            .into_iter()
            .map(|row| {
                row.iter()
                    .map(Const::display_raw)
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .collect()
    };
    println!("located   : {:?}", names("located"));
    println!("in_tokyo  : {:?}", names("in_tokyo"));
    println!("elsewhere : {:?}", names("elsewhere"));
    println!("per_city  : {:?}", names("per_city"));

    println!("\neach restaurant cost one fetch (5 votes, plurality-reconciled);");
    println!("the fetch cache means no binding is ever bought twice.");
}
