//! Open-world data acquisition: populating a `CREATE CROWD TABLE` from
//! nothing, CrowdDB-style, by composing the collect and fill operators
//! with CrowdSQL.
//!
//! The database starts empty. The crowd (1) enumerates the entities that
//! exist, with Chao92 estimating how many are still unseen, and (2) fills
//! each acquired row's attributes; the result is then queryable like any
//! other table.
//!
//! ```sh
//! cargo run --release --example open_world
//! ```

use crowdkit::core::ids::TaskId;
use crowdkit::ops::collect::{chao92, crowd_collect};
use crowdkit::sim::dataset::CollectionPool;
use crowdkit::sim::population::PopulationBuilder;
use crowdkit::sim::SimulatedCrowd;
use crowdkit::sql::exec::SimTaskFactory;
use crowdkit::sql::{QueryOpts, Session, Value};

fn main() {
    let seed = 29;
    // The latent open world: 25 restaurants the database knows nothing of.
    let pool = CollectionPool::generate(25, seed);

    // Phase 1 — enumerate: buy collection answers until Good–Turing
    // coverage says the unseen tail is small.
    let pop = PopulationBuilder::new().reliable(300, 0.85, 0.97).build(seed);
    let crowd = SimulatedCrowd::new(pop, seed);
    let out = crowd_collect(&crowd, &pool.task(TaskId::new(0)), 0.97, 300)
        .expect("enumeration succeeds");
    println!(
        "enumeration: {} answers → {} distinct entities (chao92 estimates {:.1}, truth {})",
        out.questions_asked,
        out.counts.distinct(),
        chao92(&out.counts),
        pool.richness()
    );

    // Phase 2 — acquire into a crowd table and fill its crowd column.
    let session = Session::new();
    session
        .execute_ddl("CREATE TABLE restaurants (name TEXT, city CROWD TEXT)")
        .unwrap();
    let mut names: Vec<String> = out.counts.items().map(|(n, _)| n.to_owned()).collect();
    names.sort();
    for name in &names {
        session
            .execute_ddl(&format!("INSERT INTO restaurants VALUES ('{name}', NULL)"))
            .unwrap();
    }

    // Ground truth for fills: city derived from the species index.
    let mut factory = SimTaskFactory {
        fill_truth: |_: &str, row: &[Value], _: &str| {
            let name = row[0].display_raw();
            let idx: usize = name
                .trim_start_matches("species-")
                .parse()
                .unwrap_or(0);
            if idx.is_multiple_of(2) { "tokyo" } else { "osaka" }.to_owned()
        },
        equal_truth: |l: &Value, r: &Value| l == r,
        left_wins_truth: |l: &Value, r: &Value| l.display_raw() > r.display_raw(),
    };
    let pop = PopulationBuilder::new().reliable(200, 0.9, 0.99).build(seed);
    let crowd = SimulatedCrowd::new(pop, seed);
    let (rows, stats) = session
        .query_crowd(
            "SELECT COUNT(*) FROM restaurants WHERE city = 'tokyo'",
            &crowd,
            &mut factory,
            &QueryOpts::new().votes(3),
        )
        .unwrap();
    println!(
        "fill + query: {} crowd questions filled {} cells; {} of {} acquired restaurants are in tokyo",
        stats.questions,
        stats.cells_filled,
        rows[0][0].display_raw(),
        names.len()
    );

    // Phase 3 — the purchased cells persist: a second query is free.
    let (rows, stats) = session
        .query_crowd(
            "SELECT name FROM restaurants WHERE city = 'osaka' ORDER BY name ASC LIMIT 3",
            &crowd,
            &mut factory,
            &QueryOpts::new().votes(3),
        )
        .unwrap();
    let osaka: Vec<String> = rows.iter().map(|r| r[0].display_raw()).collect();
    println!(
        "follow-up query cost {} questions (write-back cache); first osaka rows: {osaka:?}",
        stats.questions
    );
}
