//! Quality control without a worker model: qualification tests and gold
//! questions on a heavily spammed crowd.
//!
//! ```sh
//! cargo run --example quality_control
//! ```

use crowdkit::core::metrics::accuracy;
use crowdkit::sim::dataset::LabelingDataset;
use crowdkit::sim::population::mixes;
use crowdkit::sim::{PlatformBuilder, Qualification, SimulatedCrowd};
use crowdkit::truth::gold::{inject_gold_stride, GoldWeightedVote};
use crowdkit::truth::{pipeline::label_tasks, MajorityVote};

fn main() {
    let seed = 17;
    let n_tasks = 400;
    let k = 5;
    let data = LabelingDataset::binary(n_tasks, seed);

    println!("{n_tasks} binary tasks, {k} votes each, spam-heavy crowd (40% spam, 20% adversarial)\n");

    // Baseline: majority vote on the raw crowd.
    let crowd = SimulatedCrowd::new(mixes::spam_heavy(80, seed), seed);
    let out = label_tasks(&crowd, &data.tasks, k, &MajorityVote).unwrap();
    let score = |out: &crowdkit::truth::pipeline::PipelineOutcome| -> f64 {
        let predicted: Vec<u32> = data
            .tasks
            .iter()
            .map(|t| out.label_for(t).unwrap_or(0))
            .collect();
        accuracy(&predicted, &data.truths)
    };
    println!(
        "raw crowd, majority vote          : {:>5.1}%  ({} answers)",
        100.0 * score(&out),
        out.answers_bought
    );

    // Defence 1: qualification test before workers may take tasks.
    let screened = PlatformBuilder::new(mixes::spam_heavy(80, seed))
        .qualification(Qualification {
            questions: 8,
            pass_fraction: 0.75,
            difficulty: 0.2,
        })
        .seed(seed)
        .build();
    let pool_after = screened.population().len();
    let screening_cost = screened.ledger().entry("qualification").unwrap().count;
    let out = label_tasks(&screened, &data.tasks, k, &MajorityVote).unwrap();
    println!(
        "qualification gate + majority vote: {:>5.1}%  ({} answers + {} screening questions, pool 80 → {pool_after})",
        100.0 * score(&out),
        out.answers_bought,
        screening_cost
    );

    // Defence 2: gold questions scored after the fact (no screening cost,
    // but 10% of the tasks are questions we already knew the answer to).
    let ids: Vec<_> = data.tasks.iter().map(|t| t.id).collect();
    let gold = inject_gold_stride(&ids, &data.truths, 10);
    let crowd = SimulatedCrowd::new(mixes::spam_heavy(80, seed), seed);
    let out = label_tasks(&crowd, &data.tasks, k, &GoldWeightedVote::new(gold)).unwrap();
    println!(
        "10% gold + weighted vote          : {:>5.1}%  ({} answers, 40 of them on known-answer tasks)",
        100.0 * score(&out),
        out.answers_bought
    );

    println!("\nboth defences spend a little to learn who to trust — and on spammed");
    println!("crowds that beats counting every vote equally. run `experiments e13`");
    println!("for the full sweep.");
}
