//! Quickstart: label 500 binary tasks with a noisy simulated crowd and
//! compare majority vote against the EM family.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use crowdkit::core::metrics::accuracy;
use crowdkit::core::traits::TruthInferencer;
use crowdkit::sim::dataset::LabelingDataset;
use crowdkit::sim::population::mixes;
use crowdkit::sim::SimulatedCrowd;
use crowdkit::truth::{pipeline::label_tasks, DawidSkene, Glad, Kos, MajorityVote, OneCoinEm};

fn main() {
    let seed = 42;
    let n_tasks = 500;
    let redundancy = 5;

    // A spam-heavy crowd: 40 % reliable, 40 % spammers, 20 % adversarial —
    // the regime where modelling workers pays off.
    let data = LabelingDataset::binary(n_tasks, seed);
    println!("labeling {n_tasks} binary tasks, {redundancy} votes each, spam-heavy crowd\n");
    println!("{:<10} {:>9} {:>10} {:>11}", "algorithm", "accuracy", "questions", "iterations");

    let algorithms: Vec<Box<dyn TruthInferencer>> = vec![
        Box::new(MajorityVote),
        Box::new(OneCoinEm::default()),
        Box::new(DawidSkene::default()),
        Box::new(Glad::default()),
        Box::new(Kos::default()),
    ];

    for algo in &algorithms {
        // Fresh platform per run so every algorithm sees identical answers.
        let crowd = SimulatedCrowd::new(mixes::spam_heavy(60, seed), seed);
        let outcome = label_tasks(&crowd, &data.tasks, redundancy, algo.as_ref())
            .expect("collection succeeds");
        let predicted: Vec<u32> = data
            .tasks
            .iter()
            .map(|t| outcome.label_for(t).expect("every task labelled"))
            .collect();
        println!(
            "{:<10} {:>8.1}% {:>10} {:>11}",
            algo.name(),
            100.0 * accuracy(&predicted, &data.truths),
            outcome.answers_bought,
            outcome.inference.iterations,
        );
    }

    println!("\nEM-family algorithms model worker quality and shake off the spammers;");
    println!("majority vote counts every spammer vote at face value.");
}
