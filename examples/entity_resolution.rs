//! Crowd entity resolution end-to-end: blocking → crowd verification →
//! transitivity deduction, with the cost ladder printed at each rung.
//!
//! ```sh
//! cargo run --example entity_resolution
//! ```

use crowdkit::core::answer::AnswerValue;
use crowdkit::core::metrics::pairwise_cluster_f1;
use crowdkit::core::task::Task;
use crowdkit::ops::join::{all_pairs_count, candidate_pairs, crowd_join, AskOrder, JoinConfig};
use crowdkit::sim::dataset::EntityDataset;
use crowdkit::sim::population::PopulationBuilder;
use crowdkit::sim::SimulatedCrowd;

fn main() {
    let seed = 11;
    // 120 entities, up to 4 dirty duplicates each, typo noise.
    let data = EntityDataset::generate(120, 4, 2, seed);
    let texts: Vec<String> = data.records.iter().map(|r| r.text.clone()).collect();
    let n = data.records.len();
    println!("{n} records over {} latent entities", data.num_entities);
    println!("full pair space: {} pairs\n", all_pairs_count(n));

    // Rung 1: similarity blocking.
    let candidates = candidate_pairs(&texts, 0.4);
    println!(
        "after blocking (jaccard ≥ 0.4): {} candidate pairs ({:.1}% of the space)",
        candidates.len(),
        100.0 * candidates.len() as f64 / all_pairs_count(n) as f64
    );

    // Rung 2 & 3: crowd verification, with and without transitivity.
    let truth_clusters = data.truth_clusters();
    for (label, use_transitivity) in [("verification only", false), ("with transitivity", true)] {
        let pop = PopulationBuilder::new().reliable(50, 0.85, 0.97).build(seed);
        let crowd = SimulatedCrowd::new(pop, seed);
        let outcome = crowd_join(
            &crowd,
            n,
            &candidates,
            |id, a, b| {
                Task::binary(
                    id,
                    format!("same product? '{}' vs '{}'", texts[a], texts[b]),
                )
                .with_truth(AnswerValue::Choice(data.same_entity(a, b) as u32))
            },
            &JoinConfig {
                votes_per_pair: 3,
                use_transitivity,
                order: AskOrder::SimilarityDesc,
            },
        )
        .expect("join succeeds");

        let pr = pairwise_cluster_f1(&outcome.clusters, &truth_clusters);
        println!(
            "\n{label}:\n  pairs asked      : {}\n  deduced same     : {}\n  deduced different: {}\n  crowd questions  : {}\n  cluster F1       : {:.3}",
            outcome.pairs_asked,
            outcome.deduced_same,
            outcome.deduced_different,
            outcome.questions_asked,
            pr.f1()
        );
    }

    println!("\ntransitivity answers pairs the crowd never sees — same F1, fewer questions.");
}
