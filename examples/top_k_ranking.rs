//! Crowd sort and top-k: how ranking quality grows with the comparison
//! budget, and how a tournament finds the max for a fraction of the cost.
//!
//! ```sh
//! cargo run --example top_k_ranking
//! ```

use crowdkit::core::metrics::kendall_tau;
use crowdkit::ops::sort::rankers::{borda, bradley_terry, copeland, elo};
use crowdkit::ops::sort::tournament::crowd_max;
use crowdkit::ops::sort::{collect_comparisons, order_by_scores, sample_pairs};
use crowdkit::sim::dataset::RankingDataset;
use crowdkit::sim::population::PopulationBuilder;
use crowdkit::sim::SimulatedCrowd;

fn main() {
    let seed = 3;
    let n = 40;
    let data = RankingDataset::generate(n, seed);
    let full_space = n * (n - 1) / 2;
    println!("{n} items with a latent total order; full pair space = {full_space}\n");

    // True positions → "ranking score" per item (higher = better) so
    // Kendall tau compares against the latent order.
    let true_pos = data.true_positions();
    let truth_scores: Vec<f64> = true_pos.iter().map(|&p| -(p as f64)).collect();

    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9}",
        "budget", "borda", "copeland", "elo", "btl"
    );
    for budget in [50, 150, 400, full_space] {
        let pairs = sample_pairs(n, budget, seed);
        let pop = PopulationBuilder::new().reliable(40, 0.8, 0.95).build(seed);
        let crowd = SimulatedCrowd::new(pop, seed);
        let graph = collect_comparisons(&crowd, n, &pairs, 3, |id, a, b| {
            data.comparison_task(id, a, b)
        })
        .expect("collection succeeds");

        let tau = |scores: Vec<f64>| kendall_tau(&scores, &truth_scores);
        println!(
            "{:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            budget,
            tau(borda(&graph)),
            tau(copeland(&graph)),
            tau(elo(&graph, 32.0, 3)),
            tau(bradley_terry(&graph, 200, 1e-9)),
        );
    }

    // Max via tournament: n−1 matches instead of a full graph.
    let pop = PopulationBuilder::new().reliable(40, 0.85, 0.97).build(seed);
    let crowd = SimulatedCrowd::new(pop, seed);
    let out = crowd_max(&crowd, n, 3, |id, a, b| data.comparison_task(id, a, b))
        .expect("tournament succeeds");
    println!(
        "\ntournament max: item {} (true max {}) in {} matches / {} questions",
        out.winners[0],
        data.true_max(),
        out.matches,
        out.questions_asked
    );

    // Full-sort tau rises with budget; the tournament finds the extreme
    // with ~n matches — the tutorial's "don't sort when you need max".
    let order = order_by_scores(&truth_scores);
    println!("true best-first order starts with: {:?}", &order[..5]);
}
