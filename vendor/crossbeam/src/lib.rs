//! Vendored, API-compatible subset of the `crossbeam` crate.
//!
//! The workspace builds in fully offline environments, so the external
//! dependency is replaced by a thin adapter over `std::thread::scope`
//! (stable since Rust 1.63) exposing `crossbeam::thread`'s scoped-spawn
//! API: spawn closures receive a `&Scope` handle for nested spawning and
//! `scope` returns a `Result` like the original.

/// Scoped threads (`crossbeam::thread` surface).
pub mod thread {
    /// The result type of [`scope`]: `Err` carries a child panic payload.
    pub type ScopeResult<T> = std::thread::Result<T>;

    /// Handle for spawning threads tied to an enclosing [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a `&Scope` so it
        /// can spawn further siblings, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Creates a scope in which spawned threads are joined before return.
    ///
    /// Unlike `std::thread::scope`, a panicking child does not propagate:
    /// it is reported through the returned `Result`, as crossbeam does.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Utilities (`crossbeam::utils` surface).
pub mod utils {
    /// Pads and aligns a value to 128 bytes to avoid false sharing.
    #[derive(Debug, Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line padding.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_all_children() {
        let counter = AtomicU64::new(0);
        let total = crate::thread::scope(|s| {
            let mut handles = Vec::new();
            for i in 0..8u64 {
                let counter = &counter;
                handles.push(s.spawn(move |_| {
                    counter.fetch_add(i, Ordering::Relaxed);
                    i * 2
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 28);
        assert_eq!(total, 56);
    }

    #[test]
    fn nested_spawn_via_scope_handle() {
        let n = crate::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn child_panic_is_reported_not_propagated() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
            7
        });
        assert!(r.is_err(), "panicking child surfaces as Err");
    }

    #[test]
    fn cache_padded_derefs() {
        let mut p = crate::utils::CachePadded::new(5u8);
        *p += 1;
        assert_eq!(*p, 6);
        assert!(core::mem::align_of::<crate::utils::CachePadded<u8>>() >= 128);
    }
}
