//! Vendored, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! This workspace builds in fully offline environments, so the external
//! crates.io dependency is replaced by this shim implementing exactly the
//! surface crowdkit uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12, but with the same determinism
//! contract (same seed ⇒ same sequence) and statistical quality far beyond
//! what the simulator's tests require. Integer ranges use the widening
//! multiply-shift method, so the bias is at most 2⁻⁶⁴ per draw.

/// The core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics when empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types with a uniform range sampler. The [`SampleRange`] impls
/// are generic over this trait — mirroring upstream `rand` — so type
/// inference can unify an untyped integer-literal range with the value
/// type demanded by the surrounding expression.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

/// Unbiased-to-2⁻⁶⁴ draw from `[0, span)` via widening multiply.
#[inline]
fn mul_shift(rng_word: u64, span: u64) -> u64 {
    ((rng_word as u128 * span as u128) >> 64) as u64
}

macro_rules! int_uniform_impls {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as $wide).wrapping_add(mul_shift(rng.next_u64(), span + 1) as $wide) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    (lo as $wide).wrapping_add(mul_shift(rng.next_u64(), span) as $wide) as $t
                }
            }
        }
    )*};
}

int_uniform_impls!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! float_uniform_impls {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u: f64 = Standard::sample_standard(rng);
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    (lo as f64 + u * (hi as f64 - lo as f64)) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let v = (lo as f64 + u * (hi as f64 - lo as f64)) as $t;
                    // Clamp away from `hi` in case of rounding.
                    if v >= hi { lo } else { v }
                }
            }
        }
    )*};
}

float_uniform_impls!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = Standard::sample_standard(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — the canonical seed-expansion function.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand`'s `StdRng` (ChaCha12), but
    /// the same contract: a fixed seed yields a fixed sequence.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, SampleRange};

    /// Shuffle and sampling extensions for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64(), "different seeds diverge");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate} far from 0.3");
    }

    #[test]
    fn shuffle_and_choose_cover_all_elements() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut xs: Vec<u32> = (0..10).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(*xs.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 10, "choose eventually hits every element");
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
