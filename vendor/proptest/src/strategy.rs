//! Value-generation strategies (`proptest::strategy` surface subset).

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the runner's RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies with the same
    /// value type can be mixed (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.inner.sample(rng)
    }
}

/// Always produces a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniformly random booleans (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen::<f64>() < 0.5
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from at least one boxed option.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! range_strategy_impls {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy_impls {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy_impls!(
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
);

/// Length specification for [`vec()`]: a fixed size or a range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Generates `Vec`s whose elements come from `elem` and whose length is
/// drawn from `size` (`prop::collection::vec`).
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// The result of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// Pattern-string strategies: `"[a-z]{1,8}"` generates matching strings.
// ---------------------------------------------------------------------------

/// One repeatable unit of a string pattern.
#[derive(Debug, Clone)]
enum PatternAtom {
    /// A fixed literal character.
    Lit(char),
    /// A character class: any of the listed characters.
    Class(Vec<char>),
    /// A parenthesised sub-pattern.
    Group(Vec<RepeatedAtom>),
}

#[derive(Debug, Clone)]
struct RepeatedAtom {
    atom: PatternAtom,
    min: usize,
    max: usize,
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "inverted class range `{lo}-{hi}`");
            set.extend(lo..=hi);
            i += 3;
        } else {
            set.push(chars[i]);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated character class");
    assert!(!set.is_empty(), "empty character class");
    (set, i + 1)
}

fn parse_quantifier(chars: &[char], i: usize) -> (usize, usize, usize) {
    if i < chars.len() && chars[i] == '{' {
        let close = chars[i..]
            .iter()
            .position(|&c| c == '}')
            .expect("unterminated quantifier")
            + i;
        let body: String = chars[i + 1..close].iter().collect();
        let (min, max) = match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("bad quantifier"),
                hi.trim().parse().expect("bad quantifier"),
            ),
            None => {
                let n = body.trim().parse().expect("bad quantifier");
                (n, n)
            }
        };
        (min, max, close + 1)
    } else if i < chars.len() && chars[i] == '?' {
        (0, 1, i + 1)
    } else {
        (1, 1, i)
    }
}

/// Parses a sub-pattern until `end` (or end of input when `end` is None).
fn parse_sequence(chars: &[char], mut i: usize, until_paren: bool) -> (Vec<RepeatedAtom>, usize) {
    let mut atoms = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            ')' if until_paren => return (atoms, i + 1),
            '[' => {
                let (set, next) = parse_class(chars, i + 1);
                i = next;
                PatternAtom::Class(set)
            }
            '(' => {
                let (seq, next) = parse_sequence(chars, i + 1, true);
                i = next;
                PatternAtom::Group(seq)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape");
                i += 2;
                PatternAtom::Lit(chars[i - 1])
            }
            '.' => {
                // Any char except newline. Sample from ASCII printable plus
                // a few multi-byte code points so byte-vs-char bugs surface.
                let mut set: Vec<char> = (' '..='~').collect();
                set.extend(['\t', 'é', 'λ', '軍', '🦀']);
                i += 1;
                PatternAtom::Class(set)
            }
            c => {
                assert!(
                    !matches!(c, '|' | '*' | '+' | '^' | '$'),
                    "unsupported pattern metacharacter `{c}` — the offline \
                     proptest shim generates from a literal/class/group subset"
                );
                i += 1;
                PatternAtom::Lit(c)
            }
        };
        let (min, max, next) = parse_quantifier(chars, i);
        i = next;
        atoms.push(RepeatedAtom { atom, min, max });
    }
    assert!(!until_paren, "unterminated group");
    (atoms, i)
}

fn sample_atoms(atoms: &[RepeatedAtom], rng: &mut StdRng, out: &mut String) {
    for ra in atoms {
        let reps = rng.gen_range(ra.min..=ra.max);
        for _ in 0..reps {
            match &ra.atom {
                PatternAtom::Lit(c) => out.push(*c),
                PatternAtom::Class(set) => {
                    out.push(set[rng.gen_range(0..set.len())]);
                }
                PatternAtom::Group(seq) => sample_atoms(seq, rng, out),
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let (atoms, _) = parse_sequence(&chars, 0, false);
        let mut out = String::new();
        sample_atoms(&atoms, rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_sample_within_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = (3u32..9).sample(&mut r);
            assert!((3..9).contains(&x));
            let f = (0.5f64..2.0).sample(&mut r);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_compose() {
        let mut r = rng();
        let strat = vec((0u8..5, 10u8..20), 2..6);
        for _ in 0..200 {
            let v = strat.sample(&mut r);
            assert!((2..6).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 5 && (10..20).contains(&b));
            }
        }
    }

    #[test]
    fn map_and_oneof_transform() {
        let mut r = rng();
        let strat = crate::prop_oneof![
            (0u32..5).prop_map(|x| x * 2),
            Just(100u32),
        ];
        let mut saw_even_small = false;
        let mut saw_hundred = false;
        for _ in 0..200 {
            match strat.sample(&mut r) {
                100 => saw_hundred = true,
                x => {
                    assert!(x < 10 && x % 2 == 0);
                    saw_even_small = true;
                }
            }
        }
        assert!(saw_even_small && saw_hundred);
    }

    #[test]
    fn pattern_strings_match_their_shape() {
        let mut r = rng();
        for _ in 0..300 {
            let s = "[a-z]{1,8}".sample(&mut r);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = "[A-Z][a-z0-9]{0,4}".sample(&mut r);
            assert!(t.chars().next().unwrap().is_ascii_uppercase());
            assert!(t.len() <= 5);

            let u = "[a-d]{1,3}( [a-d]{1,3}){0,2}".sample(&mut r);
            let words: Vec<&str> = u.split(' ').collect();
            assert!((1..=3).contains(&words.len()), "bad word count in {u:?}");
            for w in words {
                assert!((1..=3).contains(&w.len()));
                assert!(w.chars().all(|c| ('a'..='d').contains(&c)));
            }
        }
    }

    #[test]
    fn class_with_split_range_avoids_excluded_char() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[a-mo-z]".sample(&mut r);
            assert_ne!(s, "n");
            assert_eq!(s.len(), 1);
        }
    }
}
