//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The workspace builds in fully offline environments, so the external
//! dependency is replaced by this shim implementing the surface crowdkit's
//! property tests use: the [`proptest!`] macro with `#![proptest_config]`,
//! range / tuple / `Just` / pattern-string strategies,
//! `prop::collection::vec`, `prop::bool::ANY`, `prop_map`, [`prop_oneof!`],
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are drawn from a fixed-seed
//! deterministic RNG (reproducible by construction, no persistence files)
//! and failing inputs are reported without shrinking — the failing case
//! index and seed are printed instead so a failure is still replayable.

pub mod strategy;

/// Runner configuration and error plumbing (`proptest::test_runner` surface).
pub mod test_runner {
    /// Controls how many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Maximum consecutive `prop_assume!` rejections tolerated before
        /// the property is considered vacuous and fails.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases with default limits.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw a fresh case.
        Reject(String),
        /// An assertion failed; the property is falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection from a message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type property bodies evaluate to inside the runner.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Strategy namespace (`proptest::prop` mirror — `prop::collection::vec`
/// and friends).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }

    /// Boolean strategies.
    pub mod bool {
        /// Uniformly random booleans.
        pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
    }

    /// Numeric strategies live directly on range syntax (`0u32..10`).
    pub mod num {}
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    use crate::strategy::Strategy;
    use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};

    /// Drives one property: draws cases, skips rejects, panics on failure
    /// with enough context to replay (seed + case index).
    pub fn run_property<S, F>(name: &str, cfg: &ProptestConfig, strat: S, body: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        // Fixed seed: deterministic across runs, varied per property name
        // so sibling properties don't see identical streams.
        let seed = name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
            });
        let mut rng = StdRng::seed_from_u64(seed);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < cfg.cases {
            if rejected > cfg.max_global_rejects {
                panic!(
                    "property `{name}`: gave up after {rejected} prop_assume! rejections \
                     ({accepted}/{} cases run)",
                    cfg.cases
                );
            }
            let value = strat.sample(&mut rng);
            match body(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property `{name}` falsified at case {accepted} (seed {seed:#x}): {msg}"
                    );
                }
            }
        }
    }
}

/// Runs each contained `fn name(arg in strategy, ...) { body }` as a
/// property over randomly generated cases.
///
/// Mirrors `proptest::proptest!`, including the optional leading
/// `#![proptest_config(...)]` attribute.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            $crate::__rt::run_property(
                stringify!($name),
                &cfg,
                ($($strat,)+),
                |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*), l, r
        );
    }};
}

/// `assert_ne!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}
