//! Vendored, API-compatible subset of the `parking_lot` crate.
//!
//! The workspace builds in fully offline environments, so the external
//! dependency is replaced by thin wrappers over `std::sync` primitives
//! exposing `parking_lot`'s panic-free guard API: `lock()` returns the
//! guard directly (poisoning is absorbed — a poisoned mutex is still
//! structurally sound, and crowdkit's invariants are checked by tests,
//! not by poison propagation).

use std::fmt;
use std::sync::{PoisonError, TryLockError};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning — the prior panic already failed its own test/thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_increments() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 1);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
