//! Vendored, API-compatible subset of the `criterion` crate.
//!
//! The workspace builds in fully offline environments, so the external
//! dependency is replaced by a lightweight wall-clock harness exposing the
//! surface crowdkit's benches use: `criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`BenchmarkId`] and [`Bencher::iter`].
//!
//! Statistics are intentionally simple — a warm-up pass followed by timed
//! samples, reporting min/mean — because the benches gate relative
//! comparisons (e.g. batched vs sequential execution), not absolute
//! regression thresholds.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut label = function_name.into();
        let _ = write!(label, "/{parameter}");
        Self { label }
    }

    /// Just a parameter, rendered on its own.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Passed to bench closures; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    samples: usize,
    /// (min, mean) of the measured samples, populated by `iter`.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Runs `routine` once to warm up, then `samples` timed iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((min, total / self.samples as u32));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(group: &str, label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    let name = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    match b.result {
        Some((min, mean)) => println!(
            "bench {name:<50} min {:>12}   mean {:>12}   ({samples} samples)",
            fmt_duration(min),
            fmt_duration(mean),
        ),
        None => println!("bench {name:<50} (no measurement — iter never called)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&self.name, &id.into().label, self.criterion.sample_size, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().label, self.criterion.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one("", &id.into().label, self.sample_size, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("spin", 8), |b| {
            b.iter(|| {
                runs += 1;
                (0..1000u64).sum::<u64>()
            });
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("mv", 200).label, "mv/200");
        assert_eq!(BenchmarkId::from_parameter(9).label, "9");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }
}
