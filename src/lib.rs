//! # crowdkit — crowdsourced data management in Rust
//!
//! A from-scratch implementation of the crowdsourced data management stack
//! surveyed in *"Crowdsourced Data Management: Overview and Challenges"*
//! (SIGMOD 2017): quality control (truth inference), cost control
//! (task pruning, answer deduction, sampling), latency control, task
//! assignment, crowd-powered operators, and declarative crowdsourcing —
//! all running against a deterministic platform simulator.
//!
//! ## Crate map
//!
//! | Module (re-export) | Crate | What it provides |
//! |---|---|---|
//! | [`core`] | `crowdkit-core` | tasks, answers, budgets, metrics, the `CrowdOracle`/`TruthInferencer` traits |
//! | [`sim`] | `crowdkit-sim` | worker models, populations, latency models, the simulated platform, dataset generators |
//! | [`truth`] | `crowdkit-truth` | majority vote, Dawid–Skene EM, one-coin EM, GLAD, KOS, numeric aggregation, stopping rules |
//! | [`assign`] | `crowdkit-assign` | task-assignment policies and the budgeted collection driver |
//! | [`ops`] | `crowdkit-ops` | crowd filter / join / sort / top-k / count / collect / fill / categorize |
//! | [`datalog`] | `crowdkit-datalog` | Datalog with `@crowd` predicates (Deco-style on-demand fetches) |
//! | [`sql`] | `crowdkit-sql` | CrowdSQL: CROWD columns, CROWDEQUAL, CROWDORDER, plus the machine-first optimizer |
//!
//! ## Quickstart
//!
//! Label a batch of binary tasks with a simulated crowd and Dawid–Skene:
//!
//! ```
//! use crowdkit::core::metrics::accuracy;
//! use crowdkit::sim::dataset::LabelingDataset;
//! use crowdkit::sim::population::mixes;
//! use crowdkit::sim::SimulatedCrowd;
//! use crowdkit::truth::{pipeline::label_tasks, DawidSkene};
//!
//! let data = LabelingDataset::binary(200, 7);
//! let mut crowd = SimulatedCrowd::new(mixes::mixed(30, 7), 7);
//! let outcome = label_tasks(&mut crowd, &data.tasks, 5, &DawidSkene::default()).unwrap();
//!
//! let predicted: Vec<u32> = data
//!     .tasks
//!     .iter()
//!     .map(|t| outcome.label_for(t).unwrap())
//!     .collect();
//! let acc = accuracy(&predicted, &data.truths);
//! assert!(acc > 0.7, "5-vote Dawid–Skene on a mixed crowd: {acc}");
//! ```
//!
//! See `examples/` for entity resolution, crowd top-k, CrowdSQL, and
//! crowd-Datalog walkthroughs, and `crates/bench` for the experiment
//! harness that regenerates every table/figure listed in DESIGN.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use crowdkit_assign as assign;
pub use crowdkit_core as core;
pub use crowdkit_datalog as datalog;
pub use crowdkit_ops as ops;
pub use crowdkit_sim as sim;
pub use crowdkit_sql as sql;
pub use crowdkit_truth as truth;
