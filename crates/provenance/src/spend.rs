//! The cross-layer cost ledger: who was paid, for which task, under
//! which plan node.
//!
//! A [`SpendLedger`] accumulates per-task and per-worker crowd spend as
//! answers are delivered (the assignment driver and the CrowdSQL round
//! oracle feed it from their sequential delivery loops) and flushes it as
//! `prov.spend` detail events — `scope:"task"` and `scope:"worker"` rows
//! keyed by external id, in ascending id order. Plan-node attribution
//! (`scope:"node"`) is emitted directly by the Volcano executor, which
//! already tracks per-operator question counts; together the three scopes
//! let `crowdtrace why` answer "what did this task cost and who earned
//! it" and `crowdtrace audit` compute spend-per-correct-label.

use std::collections::BTreeMap;

use crowdkit_obs::{self as obs, Event, Recorder};

/// Accumulates crowd spend by task and by worker for one run.
///
/// Construct only when [`crate::capture_detail`] holds (the events are
/// high-volume detail rows); `BTreeMap` keys make the flush order — and
/// therefore the event stream — deterministic regardless of delivery
/// interleaving upstream.
#[derive(Debug, Default)]
pub struct SpendLedger {
    by_task: BTreeMap<u64, (f64, u64)>,
    by_worker: BTreeMap<u64, (f64, u64)>,
}

impl SpendLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Books `cost` against external task id `task` and worker id
    /// `worker` (one delivered answer).
    pub fn note(&mut self, task: u64, worker: u64, cost: f64) {
        let t = self.by_task.entry(task).or_insert((0.0, 0));
        t.0 += cost;
        t.1 += 1;
        let w = self.by_worker.entry(worker).or_insert((0.0, 0));
        w.0 += cost;
        w.1 += 1;
    }

    /// True when no answers were booked.
    pub fn is_empty(&self) -> bool {
        self.by_task.is_empty()
    }

    /// Flushes the ledger as `prov.spend` events into the active obs
    /// recorder: one `scope:"task"` row per task then one
    /// `scope:"worker"` row per worker, ascending by external id. Call
    /// from sequential code after the run completes.
    pub fn emit(&self) {
        let rec = obs::current();
        if !rec.enabled() {
            return;
        }
        for (&task, &(spend, answers)) in &self.by_task {
            rec.record(
                Event::new("prov.spend")
                    .str("scope", "task")
                    .u64("task", task)
                    .f64("spend", spend)
                    .u64("answers", answers),
            );
        }
        for (&worker, &(spend, answers)) in &self.by_worker {
            rec.record(
                Event::new("prov.spend")
                    .str("scope", "worker")
                    .u64("worker", worker)
                    .f64("spend", spend)
                    .u64("answers", answers),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ledger_aggregates_and_emits_in_id_order() {
        let mut ledger = SpendLedger::new();
        assert!(ledger.is_empty());
        ledger.note(7, 2, 0.05);
        ledger.note(3, 2, 0.05);
        ledger.note(7, 1, 0.10);
        assert!(!ledger.is_empty());

        let rec = Arc::new(obs::JsonlRecorder::in_memory().with_wall(false));
        obs::with_recorder(rec.clone(), || ledger.emit());
        let text = String::from_utf8(rec.take_bytes()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 + 2);
        assert!(lines[0].contains("\"scope\":\"task\"") && lines[0].contains("\"task\":3"));
        assert!(lines[1].contains("\"task\":7") && lines[1].contains("\"answers\":2"));
        let spend7: f64 = 0.05 + 0.10;
        assert!(lines[1].contains(&format!("\"spend\":{spend7}")));
        assert!(lines[2].contains("\"scope\":\"worker\"") && lines[2].contains("\"worker\":1"));
        assert!(lines[3].contains("\"worker\":2") && lines[3].contains("\"answers\":2"));
    }

    #[test]
    fn emit_into_null_recorder_is_a_no_op() {
        let mut ledger = SpendLedger::new();
        ledger.note(1, 1, 1.0);
        ledger.emit();
    }
}
