//! Per-inference-run decision lineage: label flip history across EM
//! iterations, posterior margins, contributing votes and final worker
//! weights, distilled into `prov.*` obs events.
//!
//! A truth inferencer opens a [`RunLineage`] right after it initialises
//! its posterior table, feeds it the *committed* posterior table once per
//! EM iteration (after the E-step commit — on the sparse freeze path the
//! committed table is bit-identical to the dense reference's, so the
//! recorded lineage is too), and closes it with the final posteriors and
//! per-worker quality. All bookkeeping is `O(tasks · labels)` per
//! iteration — a couple of compares per task next to the transcendentals
//! the E-step just spent — and everything is emitted from the sequential
//! tail of the run, in ascending dense-index order, which keeps the
//! stream deterministic at any thread count.

use crowdkit_core::response::ResponseMatrix;
use crowdkit_obs::{self as obs, Event, Recorder};

/// One label flip: at iteration `iter` task `task` moved `from` → `to`.
#[derive(Debug, Clone, Copy)]
struct Flip {
    iter: u32,
    task: u32,
    from: u32,
    to: u32,
}

/// Collector for one truth-inference run's decision lineage.
///
/// Constructed via [`RunLineage::begin`], which returns `None` unless a
/// provenance scope is active on this thread *and* the obs recorder is
/// enabled — so the instrumentation sites stay a cheap
/// `if let Some(l) = &mut lineage` away from zero cost.
#[derive(Debug)]
pub struct RunLineage {
    algo: &'static str,
    k: usize,
    contested_margin: f64,
    /// Current argmax label per task; the baseline is the initial
    /// posterior table (vote fractions for the EM kernels).
    labels: Vec<u32>,
    flips: Vec<Flip>,
}

/// Argmax per row of a flat `tasks × k` table; ties break to the smallest
/// index, matching `crowdkit-truth`'s `argmax_labels`.
fn argmax_rows(posteriors: &[f64], k: usize) -> Vec<u32> {
    if k == 0 {
        return Vec::new();
    }
    posteriors
        .chunks_exact(k)
        .map(|row| {
            let mut best = 0usize;
            for (l, &p) in row.iter().enumerate().skip(1) {
                if p > row[best] {
                    best = l;
                }
            }
            best as u32
        })
        .collect()
}

/// Top-1 minus top-2 probability of one posterior row (1.0 when `k < 2`).
fn margin_of(row: &[f64]) -> f64 {
    if row.len() < 2 {
        return 1.0;
    }
    let mut top1 = f64::NEG_INFINITY;
    let mut top2 = f64::NEG_INFINITY;
    for &p in row {
        if p > top1 {
            top2 = top1;
            top1 = p;
        } else if p > top2 {
            top2 = p;
        }
    }
    top1 - top2
}

impl RunLineage {
    /// Opens a lineage collector for `algo`, baselined on the initial
    /// posterior table (flat `tasks × k`). Returns `None` when no
    /// provenance scope is active on this thread or the obs recorder is
    /// disabled; the disabled cost is one relaxed load and a branch.
    pub fn begin(algo: &'static str, posteriors: &[f64], k: usize) -> Option<Self> {
        let cfg = crate::current()?;
        if !obs::current().enabled() {
            return None;
        }
        Some(Self {
            algo,
            k,
            contested_margin: cfg.contested_margin,
            labels: argmax_rows(posteriors, k),
            flips: Vec::new(),
        })
    }

    /// Records the label flips introduced by EM iteration `iter`
    /// (1-based), reading the *committed* posterior table after the
    /// E-step. Call once per completed iteration, from sequential code.
    pub fn observe_iter(&mut self, iter: usize, posteriors: &[f64]) {
        if self.k == 0 {
            return;
        }
        for (t, row) in posteriors.chunks_exact(self.k).enumerate() {
            let mut best = 0usize;
            for (l, &p) in row.iter().enumerate().skip(1) {
                if p > row[best] {
                    best = l;
                }
            }
            let new = best as u32;
            if let Some(cur) = self.labels.get_mut(t) {
                if *cur != new {
                    self.flips.push(Flip {
                        iter: iter as u32,
                        task: t as u32,
                        from: *cur,
                        to: new,
                    });
                    *cur = new;
                }
            }
        }
    }

    /// Closes the run: emits `prov.task` and `prov.worker` detail events
    /// (when the recorder wants detail) plus the always-on `prov.run`
    /// summary, all from this thread in ascending dense-index order.
    ///
    /// `worker_quality` is the algorithm's converged per-worker estimate
    /// (confusion diagonal, reliability, `sigmoid(alpha)`, agreement);
    /// algorithms with no worker model (plain majority vote) pass `None`
    /// and report a uniform weight of 1.
    pub fn finish(
        mut self,
        matrix: &ResponseMatrix,
        posteriors: &[f64],
        worker_quality: Option<&[f64]>,
    ) {
        let rec = obs::current();
        if !rec.enabled() {
            return;
        }
        let n_tasks = matrix.num_tasks();
        let k = self.k;
        // The final committed table is what the last observe_iter saw for
        // the EM kernels, but single-pass algorithms never call it — fold
        // the final table in as one more observation so `labels` is
        // always the final decision.
        self.observe_iter(self.flips.last().map_or(1, |f| f.iter as usize), posteriors);

        let mut margins = vec![0.0f64; n_tasks];
        for (t, row) in posteriors.chunks_exact(k.max(1)).enumerate().take(n_tasks) {
            margins[t] = margin_of(row);
        }
        let mut contested = 0u64;
        let mut margin_sum = 0.0f64;
        for &m in &margins {
            if m < self.contested_margin {
                contested += 1;
            }
            margin_sum += m;
        }
        let margin_mean = if n_tasks == 0 {
            0.0
        } else {
            margin_sum / n_tasks as f64
        };

        if rec.detail() {
            self.emit_tasks(&*rec, matrix, &margins);
            self.emit_workers(&*rec, matrix, worker_quality);
        }
        rec.record(
            Event::new("prov.run")
                .str("algo", self.algo)
                .u64("tasks", n_tasks as u64)
                .u64("workers", matrix.num_workers() as u64)
                .u64("contested", contested)
                .f64("margin_thr", self.contested_margin)
                .f64("margin_mean", margin_mean)
                .u64("flips", self.flips.len() as u64),
        );
    }

    /// One `prov.task` event per task: final label, margin, contributing
    /// votes ("w3=1,w7=0" in CSR order) and flip timeline ("i2:0>1").
    fn emit_tasks(&self, rec: &dyn Recorder, matrix: &ResponseMatrix, margins: &[f64]) {
        use std::fmt::Write as _;
        let n_tasks = matrix.num_tasks();
        let mut flip_strs: Vec<String> = vec![String::new(); n_tasks];
        for f in &self.flips {
            let s = &mut flip_strs[f.task as usize];
            if !s.is_empty() {
                s.push(',');
            }
            let _ = write!(s, "i{}:{}>{}", f.iter, f.from, f.to);
        }
        let (offsets, entries) = matrix.task_csr();
        for t in 0..n_tasks {
            let span = &entries[offsets[t] as usize..offsets[t + 1] as usize];
            let mut votes = String::new();
            for &(w, l) in span {
                if !votes.is_empty() {
                    votes.push(',');
                }
                let _ = write!(votes, "w{}={}", matrix.worker_id(w as usize).0, l);
            }
            rec.record(
                Event::new("prov.task")
                    .str("algo", self.algo)
                    .u64("task", matrix.task_id(t).0)
                    .u64("label", u64::from(self.labels.get(t).copied().unwrap_or(0)))
                    .f64("margin", margins.get(t).copied().unwrap_or(0.0))
                    .u64("n", span.len() as u64)
                    .str("votes", votes.as_str())
                    .str("flips", flip_strs[t].as_str()),
            );
        }
    }

    /// One `prov.worker` event per worker: converged weight plus how many
    /// of the worker's answers agree with (or were overruled by) the
    /// final labels.
    fn emit_workers(
        &self,
        rec: &dyn Recorder,
        matrix: &ResponseMatrix,
        worker_quality: Option<&[f64]>,
    ) {
        let (offsets, entries) = matrix.worker_csr();
        for w in 0..matrix.num_workers() {
            let span = &entries[offsets[w] as usize..offsets[w + 1] as usize];
            let answers = span.len() as u64;
            let agree = span
                .iter()
                .filter(|&&(t, l)| self.labels.get(t as usize).copied() == Some(l))
                .count() as u64;
            let weight = worker_quality.and_then(|q| q.get(w).copied()).unwrap_or(1.0);
            rec.record(
                Event::new("prov.worker")
                    .str("algo", self.algo)
                    .u64("worker", matrix.worker_id(w).0)
                    .f64("weight", weight)
                    .u64("answers", answers)
                    .u64("agree", agree)
                    .u64("overruled", answers - agree),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Provenance;
    use crowdkit_core::ids::{TaskId, WorkerId};
    use std::sync::Arc;

    fn tiny_matrix() -> ResponseMatrix {
        // Two tasks, three workers, binary labels.
        let mut m = ResponseMatrix::new(2);
        m.push(TaskId(10), WorkerId(100), 1).expect("push");
        m.push(TaskId(10), WorkerId(101), 1).expect("push");
        m.push(TaskId(11), WorkerId(100), 0).expect("push");
        m.push(TaskId(11), WorkerId(102), 1).expect("push");
        m
    }

    #[test]
    fn begin_requires_scope_and_recorder() {
        assert!(RunLineage::begin("mv", &[0.5, 0.5], 2).is_none());
        crate::with_provenance(Arc::new(Provenance::default()), || {
            assert!(
                RunLineage::begin("mv", &[0.5, 0.5], 2).is_none(),
                "null recorder: still off"
            );
            let rec = Arc::new(obs::MemoryRecorder::new());
            obs::with_recorder(rec, || {
                assert!(RunLineage::begin("mv", &[0.5, 0.5], 2).is_some());
            });
        });
    }

    #[test]
    fn argmax_ties_break_to_smallest_index() {
        assert_eq!(argmax_rows(&[0.5, 0.5, 0.2, 0.8], 2), vec![0, 1]);
    }

    #[test]
    fn margin_is_top1_minus_top2() {
        assert!((margin_of(&[0.7, 0.2, 0.1]) - 0.5).abs() < 1e-12);
        assert_eq!(margin_of(&[1.0]), 1.0);
        assert_eq!(margin_of(&[0.5, 0.5]), 0.0);
    }

    #[test]
    fn flips_and_events_round_trip() {
        let matrix = tiny_matrix();
        crate::with_provenance(Arc::new(Provenance::default()), || {
            let rec = Arc::new(obs::JsonlRecorder::in_memory().with_wall(false));
            obs::with_recorder(rec.clone(), || {
                // Baseline: task0 -> 1, task1 -> 0.
                let mut l = RunLineage::begin("ds", &[0.4, 0.6, 0.8, 0.2], 2).expect("on");
                // Iter 1 flips task1 to label 1.
                l.observe_iter(1, &[0.1, 0.9, 0.3, 0.7]);
                l.finish(&matrix, &[0.1, 0.9, 0.3, 0.7], Some(&[0.9, 0.8, 0.7]));
            });
            let text = String::from_utf8(rec.take_bytes()).expect("utf8");
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines.len(), 2 + 3 + 1, "2 tasks + 3 workers + run");
            assert!(lines[0].contains("\"key\":\"prov.task\""));
            assert!(lines[0].contains("\"task\":10"));
            assert!(lines[0].contains("\"votes\":\"w100=1,w101=1\""));
            assert!(lines[0].contains("\"flips\":\"\""));
            assert!(lines[1].contains("\"task\":11"));
            assert!(lines[1].contains("\"flips\":\"i1:0>1\""));
            assert!(lines[2].contains("\"key\":\"prov.worker\""));
            assert!(lines[2].contains("\"worker\":100"));
            assert!(lines[2].contains("\"weight\":0.9"));
            // Worker 100 answered task0=1 (agrees) and task1=0 (overruled).
            assert!(lines[2].contains("\"agree\":1"));
            assert!(lines[2].contains("\"overruled\":1"));
            assert!(lines[5].contains("\"key\":\"prov.run\""));
            assert!(lines[5].contains("\"flips\":1"));
            assert!(lines[5].contains("\"tasks\":2"));
        });
    }

    #[test]
    fn aggregating_recorder_gets_only_the_run_summary() {
        let matrix = tiny_matrix();
        let rec = Arc::new(obs::MemoryRecorder::new());
        crate::with_provenance(Arc::new(Provenance::default()), || {
            obs::with_recorder(rec.clone(), || {
                let l = RunLineage::begin("mv", &[0.0, 1.0, 1.0, 0.0], 2).expect("on");
                l.finish(&matrix, &[0.0, 1.0, 1.0, 0.0], None);
            });
        });
        assert_eq!(rec.count("prov.task"), 0);
        assert_eq!(rec.count("prov.worker"), 0);
        assert_eq!(rec.count("prov.run"), 1);
        // Margins are 1.0, far above the 0.1 default threshold.
        assert_eq!(rec.field_sum("prov.run", "contested"), 0.0);
    }
}
