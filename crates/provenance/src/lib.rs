//! # crowdkit-provenance — decision lineage and spend attribution
//!
//! The observability stack can say how fast inference ran
//! (`crowdkit-obs` events, `crowdkit-metrics` telemetry) but not *why* a
//! task ended up with label L or which workers swayed it. This crate is
//! the decision-provenance layer: while a provenance scope is active, the
//! truth inferencers record, per task, the contributing responses, the
//! final per-worker quality/weight at convergence, the posterior margin
//! (top-1 vs top-2 probability), and the label flip history across EM
//! iterations; the assignment driver and the CrowdSQL Volcano executor
//! attribute crowd spend down node → task → worker. Everything is emitted
//! as typed `prov.*` obs events with sim-clock/deterministic fields only,
//! so provenance streams are byte-identical across thread counts like the
//! rest of the event log. `crowdtrace why <task-id>` and
//! `crowdtrace audit` are the query side.
//!
//! ## Event schema
//!
//! | key          | deterministic fields |
//! |--------------|----------------------|
//! | `prov.task`  | `algo`, `task`, `label`, `margin`, `n`, `votes` ("w3=1,w7=0"), `flips` ("i2:0>1") |
//! | `prov.worker`| `algo`, `worker`, `weight`, `answers`, `agree`, `overruled` |
//! | `prov.run`   | `algo`, `tasks`, `workers`, `contested`, `margin_thr`, `margin_mean`, `flips` |
//! | `prov.spend` | `scope` ("node"/"task"/"worker"), `node` or `task` or `worker`, `spend`, `answers` or `questions` |
//!
//! `prov.task` and `prov.worker` are high-volume detail events: they are
//! only emitted when the active obs recorder reports
//! [`detail()`](crowdkit_obs::Recorder::detail) (the JSONL capture path),
//! while the one-per-inference-run `prov.run` summary also lands in
//! aggregating recorders so contested/low-margin counts reach
//! `RUNREPORT.json`.
//!
//! ## Scoping
//!
//! The sink mirrors the `crowdkit-obs` recorder / `crowdkit-metrics`
//! registry pattern: a thread-local scope entered with
//! [`with_provenance`], restored on unwind, nestable. When no scope is
//! active on the calling thread, [`current`] costs one relaxed atomic
//! load and a branch — inference hot loops pay nothing. Capture is
//! additionally gated on the obs recorder being enabled, since the events
//! have nowhere else to go.
//!
//! ```
//! use std::sync::Arc;
//! use crowdkit_provenance as prov;
//!
//! assert!(prov::current().is_none());
//! prov::with_provenance(Arc::new(prov::Provenance::default()), || {
//!     assert!(prov::current().is_some());
//! });
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod lineage;
pub mod spend;

pub use lineage::RunLineage;
pub use spend::SpendLedger;

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Provenance-capture configuration for one scope.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// Tasks whose posterior margin (top-1 minus top-2 probability) falls
    /// strictly below this threshold count as *contested* in the
    /// `prov.run` summary. `crowdtrace audit` applies its own (flaggable)
    /// threshold at read time; this one only feeds the run roll-up.
    pub contested_margin: f64,
}

impl Default for Provenance {
    fn default() -> Self {
        Self {
            contested_margin: 0.1,
        }
    }
}

/// Count of provenance scopes alive process-wide. Zero means no thread
/// can possibly capture, so [`current`] short-circuits on one relaxed
/// load without touching the thread-local.
static ACTIVE_SCOPES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Option<Arc<Provenance>>> = const { RefCell::new(None) };
}

/// The provenance scope active on this thread, or `None` when lineage
/// capture is off. Disabled cost: one relaxed load and a branch.
pub fn current() -> Option<Arc<Provenance>> {
    if ACTIVE_SCOPES.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether any provenance scope is active on this thread.
pub fn enabled() -> bool {
    current().is_some()
}

/// Restores the previous scope when dropped, so a panic inside
/// [`with_provenance`] cannot leak the scope into later work.
struct RestoreGuard {
    previous: Option<Option<Arc<Provenance>>>,
}

impl Drop for RestoreGuard {
    fn drop(&mut self) {
        if let Some(previous) = self.previous.take() {
            CURRENT.with(|c| *c.borrow_mut() = previous);
            ACTIVE_SCOPES.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Runs `f` with `p` as this thread's active provenance scope, restoring
/// the previous scope afterwards (including on panic). Scopes nest.
///
/// The scope is per-thread, exactly like the obs recorder scope: work `f`
/// hands to other threads captures nothing. Instrumented layers honour
/// this by emitting lineage only from sequential, fixed-order code paths
/// — that is what keeps `prov.*` streams byte-identical across thread
/// counts.
pub fn with_provenance<R>(p: Arc<Provenance>, f: impl FnOnce() -> R) -> R {
    ACTIVE_SCOPES.fetch_add(1, Ordering::Relaxed);
    let previous = CURRENT.with(|c| c.borrow_mut().replace(p));
    let _guard = RestoreGuard {
        previous: Some(previous),
    };
    f()
}

/// Whether high-volume per-task/per-worker/per-answer provenance should
/// be captured right now: a provenance scope is active on this thread
/// *and* the obs recorder wants detail events. Spend ledgers check this
/// once per run and skip all bookkeeping otherwise.
pub fn capture_detail() -> bool {
    enabled() && crowdkit_obs::current().detail()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        assert!(current().is_none());
        assert!(!enabled());
        assert!(!capture_detail());
    }

    #[test]
    fn with_provenance_scopes_and_restores() {
        let p = Arc::new(Provenance::default());
        with_provenance(p.clone(), || {
            assert!(Arc::ptr_eq(&current().expect("scoped"), &p));
        });
        assert!(current().is_none());
    }

    #[test]
    fn scopes_nest() {
        let outer = Arc::new(Provenance {
            contested_margin: 0.25,
        });
        let inner = Arc::new(Provenance {
            contested_margin: 0.5,
        });
        with_provenance(outer.clone(), || {
            with_provenance(inner.clone(), || {
                assert_eq!(current().expect("scoped").contested_margin, 0.5);
            });
            assert_eq!(current().expect("scoped").contested_margin, 0.25);
        });
        assert!(current().is_none());
    }

    #[test]
    fn scope_restores_after_panic() {
        let p = Arc::new(Provenance::default());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_provenance(p, || panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(current().is_none(), "panic must not leak the scope");
    }

    #[test]
    fn scope_is_thread_local() {
        let p = Arc::new(Provenance::default());
        with_provenance(p, || {
            let other = std::thread::spawn(current).join().expect("join");
            assert!(other.is_none(), "other threads see no scope");
        });
    }

    #[test]
    fn capture_detail_requires_a_detail_recorder() {
        let p = Arc::new(Provenance::default());
        with_provenance(p, || {
            // Null recorder: scope alone is not enough.
            assert!(!capture_detail());
            let jsonl = Arc::new(crowdkit_obs::JsonlRecorder::in_memory());
            crowdkit_obs::with_recorder(jsonl, || assert!(capture_detail()));
            let mem = Arc::new(crowdkit_obs::MemoryRecorder::new());
            crowdkit_obs::with_recorder(mem, || {
                assert!(!capture_detail(), "aggregators skip detail events");
            });
        });
    }
}
