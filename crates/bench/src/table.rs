//! Minimal aligned-table rendering for experiment output.

/// A simple experiment result table: header + rows of cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (printed above the grid).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and header.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are any Display).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match the header"
        );
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                // Right-align numbers-ish cells, left-align the first col.
                if i == 0 {
                    s.push_str(&format!("{:<width$}", c, width = widths[i]));
                } else {
                    s.push_str(&format!("{:>width$}", c, width = widths[i]));
                }
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Renders as CSV (for EXPERIMENTS.md tooling).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| -> String {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "123".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-name"));
        // Header and rows share the alignment width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.5), "50.0%");
    }
}
