// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E16 — Numeric aggregation under contaminated crowds.
//!
//! The numeric analogue of E1: MAE of mean / median / trimmed mean /
//! iteratively-reweighted estimation as the fraction of spammer answers
//! grows. Expected shape: the mean degrades linearly with contamination;
//! the robust estimators hold their error until the contamination
//! approaches one half; reweighting matches or beats the median by
//! exploiting the precise workers it identifies.

use crowdkit_core::answer::AnswerValue;
use crowdkit_core::ids::{IdGen, TaskId};
use crowdkit_core::metrics::mae;
use crowdkit_core::task::{Task, TaskKind};
use crowdkit_core::traits::CrowdOracle;
use crowdkit_obs as obs;
use crowdkit_sim::population::{Archetype, PopulationBuilder};
use crowdkit_sim::SimulatedCrowd;
use crowdkit_truth::numeric::{
    mean_estimates, median_estimates, reweighted_estimates, trimmed_mean_estimates,
    NumericResponses,
};

use crate::table::{f3, Table};

const N_TASKS: usize = 120;
const K: usize = 9;
const SEEDS: [u64; 3] = [161, 162, 163];

/// Collects K numeric answers per task from a crowd with the given
/// spammer share and returns the MAE of each aggregator.
fn run_mix(spam_share: f64, seed: u64) -> [f64; 4] {
    let total = 60usize;
    let spammers = (total as f64 * spam_share).round() as usize;
    let pop = PopulationBuilder::new()
        .add(
            total - spammers,
            Archetype::Numeric {
                bias: (-0.02, 0.02),
                noise: (0.01, 0.05),
            },
        )
        .spammers(spammers)
        .build(seed);
    let crowd = SimulatedCrowd::new(pop, seed);

    let mut ids = IdGen::new();
    let mut truths = Vec::with_capacity(N_TASKS);
    let mut responses = NumericResponses::new();
    // Keep (task, truth) in insertion order: scoring must sum in a fixed
    // order so repeat runs produce bit-identical aggregates.
    let mut truth_by_task: Vec<(TaskId, f64)> = Vec::with_capacity(N_TASKS);
    for i in 0..N_TASKS {
        let truth = 10.0 + (i as f64 * 7.3) % 80.0;
        let task = Task::new(
            ids.next_task(),
            TaskKind::Numeric {
                min: 0.0,
                max: 100.0,
            },
            format!("estimate #{i}"),
        )
        .with_truth(AnswerValue::Number(truth));
        truths.push(truth);
        truth_by_task.push((task.id, truth));
        for a in crowd.ask_many(&task, K).expect("collection succeeds") {
            responses.push(a.task, a.worker, a.value.as_number().unwrap());
        }
    }

    let score = |estimates: &std::collections::BTreeMap<TaskId, f64>| -> f64 {
        let mut est = Vec::with_capacity(N_TASKS);
        let mut tru = Vec::with_capacity(N_TASKS);
        for &(task, truth) in &truth_by_task {
            est.push(estimates[&task]);
            tru.push(truth);
        }
        mae(&est, &tru)
    };

    [
        score(&mean_estimates(&responses).unwrap()),
        score(&median_estimates(&responses).unwrap()),
        score(&trimmed_mean_estimates(&responses, 0.2).unwrap()),
        score(&reweighted_estimates(&responses, 25).unwrap().estimates),
    ]
}

fn mean_over_seeds(spam_share: f64) -> [f64; 4] {
    let mut sums = [0.0f64; 4];
    for &seed in &SEEDS {
        let r = run_mix(spam_share, seed);
        for i in 0..4 {
            sums[i] += r[i];
        }
    }
    sums.map(|s| s / SEEDS.len() as f64)
}

/// Runs E16.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        format!(
            "E16: numeric estimation MAE vs spammer share ({N_TASKS} tasks, k={K}, range 0–100, mean of {} seeds)",
            SEEDS.len()
        ),
        &["spam share", "mean", "median", "trimmed 20%", "reweighted"],
    );
    for spam in [0.0, 0.2, 0.4] {
        let [mean_err, median_err, trimmed_err, rew_err] = mean_over_seeds(spam);
        obs::quality("mae_mean", mean_err);
        obs::quality("mae_median", median_err);
        obs::quality("mae_reweighted", rew_err);
        t.row(vec![
            format!("{spam}"),
            f3(mean_err),
            f3(median_err),
            f3(trimmed_err),
            f3(rew_err),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_shape_robust_estimators_resist_spam() {
        let clean = mean_over_seeds(0.0);
        let spammed = mean_over_seeds(0.4);
        // The mean collapses under 40 % spam…
        assert!(
            spammed[0] > clean[0] * 3.0,
            "mean degrades hard: {:.2} → {:.2}",
            clean[0],
            spammed[0]
        );
        // …while the high-breakdown estimators stay much closer. (A 20 %
        // per-side trim cannot fully absorb 40 % contamination, so the
        // trimmed mean is only required to beat the mean, not halve it.)
        for (i, name) in [(1, "median"), (3, "reweighted")] {
            assert!(
                spammed[i] < spammed[0] / 2.0,
                "{name} ({:.2}) should hold up far better than the mean ({:.2})",
                spammed[i],
                spammed[0]
            );
        }
        assert!(
            spammed[2] < spammed[0],
            "trimmed ({:.2}) still beats the mean ({:.2})",
            spammed[2],
            spammed[0]
        );
        // Reweighting matches or beats the plain median under contamination.
        assert!(
            spammed[3] <= spammed[1] * 1.2,
            "reweighted {:.3} vs median {:.3}",
            spammed[3],
            spammed[1]
        );
    }
}
