// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E15 — Selective output: the coverage/accuracy trade-off of posterior
//! thresholding.
//!
//! Quality control does not end at inference: a system can return only the
//! tasks whose posterior clears a confidence threshold τ and route the
//! rest to more answers or to experts. Expected shape: accuracy on the
//! returned subset rises with τ while coverage falls. The two posterior
//! styles trade differently: majority-vote "posteriors" are coarse vote
//! fractions, so high τ keeps only unanimous tasks — a tiny but very pure
//! subset — while Dawid–Skene's model posteriors retain far more coverage
//! at a given τ at the price of EM's well-known overconfidence.

use crowdkit_core::traits::TruthInferencer;
use crowdkit_obs as obs;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::population::mixes;
use crowdkit_sim::SimulatedCrowd;
use crowdkit_truth::{pipeline::label_tasks, DawidSkene, MajorityVote};

use crate::table::{pct, Table};

const N_TASKS: usize = 400;
const K: usize = 5;
const SEEDS: [u64; 3] = [151, 152, 153];

/// (coverage, accuracy-on-selected) for one algorithm at threshold tau.
fn tradeoff(algo: &dyn TruthInferencer, tau: f64) -> (f64, f64) {
    let mut coverage = 0.0;
    let mut accuracy = 0.0;
    for &seed in &SEEDS {
        let data = LabelingDataset::binary(N_TASKS, seed);
        let crowd = SimulatedCrowd::new(mixes::mixed(60, seed), seed);
        let out = label_tasks(&crowd, &data.tasks, K, algo).expect("collection succeeds");
        let selected = out.inference.select_confident(tau);
        coverage += out.inference.coverage(tau);
        if selected.is_empty() {
            accuracy += 1.0; // vacuous: nothing returned, nothing wrong
            continue;
        }
        let mut correct = 0usize;
        for &t in &selected {
            let task_id = out.matrix.task_id(t);
            let idx = data.tasks.iter().position(|x| x.id == task_id).unwrap();
            if out.inference.labels[t] == data.truths[idx] {
                correct += 1;
            }
        }
        accuracy += correct as f64 / selected.len() as f64;
    }
    (coverage / SEEDS.len() as f64, accuracy / SEEDS.len() as f64)
}

/// Runs E15.
pub fn run() -> Vec<Table> {
    let taus = [0.5, 0.7, 0.9, 0.99];
    let mut t = Table::new(
        format!(
            "E15: selective output — coverage vs accuracy on the returned subset ({N_TASKS} tasks, k={K}, mixed crowd, mean of {} seeds)",
            SEEDS.len()
        ),
        &[
            "τ",
            "mv coverage",
            "mv accuracy",
            "ds coverage",
            "ds accuracy",
        ],
    );
    for &tau in &taus {
        let (mv_cov, mv_acc) = tradeoff(&MajorityVote, tau);
        let (ds_cov, ds_acc) = tradeoff(&DawidSkene::default(), tau);
        obs::quality("coverage", mv_cov);
        obs::quality("coverage", ds_cov);
        obs::quality("selected_accuracy", mv_acc);
        obs::quality("selected_accuracy", ds_acc);
        t.row(vec![
            format!("{tau}"),
            pct(mv_cov),
            pct(mv_acc),
            pct(ds_cov),
            pct(ds_acc),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_shape_higher_threshold_trades_coverage_for_accuracy() {
        let ds = DawidSkene::default();
        let (cov_low, acc_low) = tradeoff(&ds, 0.5);
        let (cov_high, acc_high) = tradeoff(&ds, 0.99);
        assert!(cov_high < cov_low, "coverage falls: {cov_low:.3} → {cov_high:.3}");
        assert!(
            acc_high > acc_low,
            "accuracy on the kept subset rises: {acc_low:.3} → {acc_high:.3}"
        );
        // EM posteriors are known to be somewhat overconfident, so the
        // τ=0.99 subset is not perfect — but it must be clearly better
        // than the unfiltered output.
        assert!(acc_high > 0.85, "high-confidence subset is high quality: {acc_high:.3}");
    }

    #[test]
    fn e15_shape_tau_half_returns_everything() {
        // With binary labels the argmax always has posterior ≥ 0.5.
        let (cov, _) = tradeoff(&MajorityVote, 0.5);
        assert!((cov - 1.0).abs() < 1e-9);
    }
}
