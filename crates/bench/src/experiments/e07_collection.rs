// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E7 — Open-world enumeration with species estimation.
//!
//! Emulates the CrowdDB open-world / Trushkowsky et al. Chao92 figures:
//! the species accumulation curve (distinct items vs answers bought) with
//! the Chao92 richness estimate tracking the true pool size. Expected
//! shape: distinct grows with diminishing returns; Chao92 approaches the
//! truth from the observed count; Good–Turing coverage rises toward 1.

use crowdkit_core::ids::TaskId;
use crowdkit_obs as obs;
use crowdkit_ops::collect::crowd_collect;
use crowdkit_sim::dataset::CollectionPool;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::SimulatedCrowd;

use crate::table::{f3, Table};

const RICHNESS: usize = 50;
const SEED: u64 = 71;

/// Runs E7.
pub fn run() -> Vec<Table> {
    let pool = CollectionPool::generate(RICHNESS, SEED);
    let task = pool.task(TaskId::new(0));
    let pop = PopulationBuilder::new().reliable(600, 0.8, 0.95).build(SEED);
    let crowd = SimulatedCrowd::new(pop, SEED);
    let out = crowd_collect(&crowd, &task, 2.0, 400).expect("collection succeeds");

    let mut t = Table::new(
        format!("E7: species accumulation (true richness {RICHNESS})"),
        &["answers", "distinct", "chao92", "coverage"],
    );
    for &checkpoint in &[10usize, 25, 50, 100, 200, 400] {
        if let Some(p) = out.curve.get(checkpoint.saturating_sub(1)) {
            t.row(vec![
                p.answers.to_string(),
                p.distinct.to_string(),
                f3(p.chao92_estimate),
                f3(p.coverage),
            ]);
        }
    }
    if let Some(last) = out.curve.last() {
        obs::quality("species_coverage", last.coverage);
        obs::quality(
            "chao92_rel_error",
            (last.chao92_estimate - RICHNESS as f64).abs() / RICHNESS as f64,
        );
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_shape_distinct_grows_and_chao_tracks_truth() {
        let tables = run();
        let rows = &tables[0].rows;
        assert!(rows.len() >= 4);
        let distinct: Vec<usize> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(
            distinct.windows(2).all(|w| w[1] >= w[0]),
            "accumulation is monotone: {distinct:?}"
        );
        let final_chao: f64 = rows.last().unwrap()[2].parse().unwrap();
        let final_distinct: f64 = rows.last().unwrap()[1].parse().unwrap();
        assert!(final_chao >= final_distinct);
        assert!(
            (final_chao - RICHNESS as f64).abs() < 20.0,
            "chao92 {final_chao} should approach {RICHNESS}"
        );
        let coverage: Vec<f64> = rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(coverage.last().unwrap() > &0.8);
    }
}
