// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E17 — Worker supply: churned availability and completion time.
//!
//! The latency axis is not just service time: on real platforms workers
//! come and go, and a batch stalls whenever nobody eligible is online.
//! This experiment sweeps the workers' duty cycle (fraction of time
//! online) and measures wall-clock completion of a fixed labeling batch.
//! Expected shape: completion time is flat while supply is plentiful and
//! blows up as the duty cycle starves the pool; a bigger pool buys back
//! most of the loss (supply redundancy as latency control).

use crowdkit_core::traits::CrowdOracle;
use crowdkit_obs as obs;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::latency::LatencyModel;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::platform::Churn;
use crowdkit_sim::PlatformBuilder;

use crate::table::{f3, Table};

const N_TASKS: usize = 150;
const K: usize = 3;
const SEEDS: [u64; 3] = [171, 172, 173];

/// Wall-clock seconds to buy K answers for every task.
fn completion_time(duty: f64, pool: usize, seed: u64) -> f64 {
    let population = PopulationBuilder::new().reliable(pool, 0.85, 0.95).build(seed);
    let mut builder = PlatformBuilder::new(population)
        .latency(LatencyModel::Exponential { mean: 15.0 })
        .seed(seed);
    if duty < 1.0 {
        builder = builder.churn(Churn {
            duty_cycle: duty,
            period: 1_800.0,
        });
    }
    let crowd = builder.build();
    let data = LabelingDataset::binary(N_TASKS, seed);
    for task in &data.tasks {
        crowd.ask_many(task, K).expect("collection succeeds");
    }
    crowd.now()
}

fn mean_time(duty: f64, pool: usize) -> f64 {
    SEEDS
        .iter()
        .map(|&s| completion_time(duty, pool, s))
        .sum::<f64>()
        / SEEDS.len() as f64
}

/// Runs E17.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        format!(
            "E17: completion time vs worker duty cycle ({N_TASKS} tasks × {K} answers, 15 s mean service, mean of {} seeds)",
            SEEDS.len()
        ),
        &["duty cycle", "pool 10 (s)", "pool 40 (s)"],
    );
    for duty in [1.0, 0.5, 0.2, 0.05] {
        let small = mean_time(duty, 10);
        let large = mean_time(duty, 40);
        obs::quality("completion_time_s", small);
        obs::quality("completion_time_s", large);
        t.row(vec![format!("{duty}"), f3(small), f3(large)]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_shape_scarce_supply_slows_completion() {
        let always_on = mean_time(1.0, 10);
        let scarce = mean_time(0.05, 10);
        assert!(
            scarce > always_on * 1.5,
            "5% duty ({scarce:.0}s) should be much slower than always-on ({always_on:.0}s)"
        );
    }

    #[test]
    fn e17_shape_bigger_pools_absorb_churn() {
        let small = mean_time(0.05, 10);
        let large = mean_time(0.05, 40);
        assert!(
            large < small,
            "a 40-worker pool ({large:.0}s) should beat 10 workers ({small:.0}s) at 5% duty"
        );
    }
}
