// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E8 — Task-assignment policies under fixed budgets.
//!
//! Emulates the QASCA ('15) evaluation table: final label accuracy under
//! identical question budgets for random, uncertainty-greedy, and
//! expected-accuracy-gain assignment. Expected shape: quality-aware
//! policies beat random under tight budgets and converge with it as the
//! budget loosens.

use crowdkit_assign::{run_assignment, AssignmentPolicy, EntropyGreedy, ExpectedAccuracyGain, RandomAssign, RoundRobin};
use crowdkit_core::traits::TruthInferencer;
use crowdkit_obs as obs;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::population::mixes;
use crowdkit_sim::SimulatedCrowd;
use crowdkit_truth::OneCoinEm;

use crate::table::{pct, Table};

const N_TASKS: usize = 200;
const SEEDS: [u64; 5] = [81, 82, 83, 84, 85];

fn accuracy_under_budget(policy_name: &str, budget: usize, seed: u64) -> f64 {
    let data = LabelingDataset::generate(N_TASKS, 2, 0.5, (0.2, 0.8), seed);
    let crowd = SimulatedCrowd::new(mixes::mixed(60, seed), seed);
    let mut random;
    let mut rr = RoundRobin;
    let mut entropy = EntropyGreedy;
    let mut gain = ExpectedAccuracyGain::default();
    let policy: &mut dyn AssignmentPolicy = match policy_name {
        "random" => {
            random = RandomAssign::new(seed);
            &mut random
        }
        "round_robin" => &mut rr,
        "entropy" => &mut entropy,
        _ => &mut gain,
    };
    let out = run_assignment(&crowd, &data.tasks, policy, budget, 25)
        .expect("assignment succeeds");
    let inference = OneCoinEm::default().infer(&out.matrix).expect("non-empty");
    let mut correct = 0usize;
    for (task, &truth) in data.tasks.iter().zip(&data.truths) {
        if let Some(t) = out.matrix.task_index(task.id) {
            if inference.labels[t] == truth {
                correct += 1;
            }
        }
        // Tasks with no answers count as wrong.
    }
    correct as f64 / N_TASKS as f64
}

/// Runs E8.
pub fn run() -> Vec<Table> {
    let budgets = [2 * N_TASKS, 3 * N_TASKS, 5 * N_TASKS];
    let mut t = Table::new(
        format!(
            "E8: assignment policy accuracy under fixed budgets ({N_TASKS} tasks, mixed crowd, mean of {} seeds)",
            SEEDS.len()
        ),
        &["policy", "budget 2n", "budget 3n", "budget 5n"],
    );
    for policy in ["random", "round_robin", "entropy", "expected_gain"] {
        let mut cells = vec![policy.to_owned()];
        for &b in &budgets {
            let avg: f64 = SEEDS
                .iter()
                .map(|&s| accuracy_under_budget(policy, b, s))
                .sum::<f64>()
                / SEEDS.len() as f64;
            obs::quality("accuracy", avg);
            cells.push(pct(avg));
        }
        t.row(cells);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_shape_quality_aware_at_least_matches_random_when_tight() {
        let avg = |p: &str| -> f64 {
            SEEDS
                .iter()
                .map(|&s| accuracy_under_budget(p, 2 * N_TASKS, s))
                .sum::<f64>()
                / SEEDS.len() as f64
        };
        let random = avg("random");
        let gain = avg("expected_gain");
        let entropy = avg("entropy");
        assert!(
            gain >= random - 0.02,
            "expected-gain ({gain:.3}) must not trail random ({random:.3})"
        );
        assert!(
            entropy >= random - 0.02,
            "entropy ({entropy:.3}) must not trail random ({random:.3})"
        );
    }

    #[test]
    fn e8_shape_more_budget_more_accuracy() {
        let tight = accuracy_under_budget("round_robin", 2 * N_TASKS, 81);
        let loose = accuracy_under_budget("round_robin", 5 * N_TASKS, 81);
        assert!(loose >= tight, "budget 5n ({loose:.3}) ≥ budget 2n ({tight:.3})");
    }
}
