// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E6 — Sampling-based crowd COUNT.
//!
//! Emulates the sampling-for-aggregation figures: relative error and
//! confidence-interval width of the estimated count as the sample
//! fraction grows. Expected shape: error and CI width fall roughly as
//! `1/√m`; the finite-population correction collapses the interval as the
//! sample approaches the population.

use crowdkit_core::metrics::relative_error;
use crowdkit_obs as obs;
use crowdkit_ops::agg::estimate_count;
use crowdkit_sim::dataset::CountingDataset;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::SimulatedCrowd;

use crate::table::{f3, Table};

const POPULATION: usize = 4000;
const PREVALENCE: f64 = 0.3;
const SEEDS: [u64; 5] = [61, 62, 63, 64, 65];

fn at_fraction(fraction: f64) -> (f64, f64, f64) {
    let mut rel = 0.0;
    let mut width = 0.0;
    let mut covered = 0.0;
    for &seed in &SEEDS {
        let data = CountingDataset::generate(POPULATION, PREVALENCE, seed);
        let truth = data.true_count() as f64;
        let pop = PopulationBuilder::new().reliable(POPULATION, 0.92, 0.99).build(seed);
        let crowd = SimulatedCrowd::new(pop, seed);
        let m = ((POPULATION as f64) * fraction).round() as usize;
        let est = estimate_count(&crowd, &data.tasks, m, 3, 1.96, seed)
            .expect("estimation succeeds");
        rel += relative_error(est.estimate, truth);
        width += (est.ci_high - est.ci_low) / POPULATION as f64;
        if est.ci_low <= truth && truth <= est.ci_high {
            covered += 1.0;
        }
    }
    let n = SEEDS.len() as f64;
    (rel / n, width / n, covered / n)
}

/// Runs E6.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        format!(
            "E6: crowd COUNT by sampling (population {POPULATION}, prevalence {PREVALENCE}, 3 votes/item, mean of {} seeds)",
            SEEDS.len()
        ),
        &["sample fraction", "relative error", "CI width / N", "CI coverage"],
    );
    for fraction in [0.01, 0.05, 0.1, 0.25, 1.0] {
        let (rel, width, cov) = at_fraction(fraction);
        obs::quality("count_rel_error", rel);
        obs::quality("ci_coverage", cov);
        t.row(vec![
            format!("{fraction}"),
            f3(rel),
            f3(width),
            f3(cov),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_shape_error_falls_with_sample_size() {
        let (rel_small, width_small, _) = at_fraction(0.02);
        let (rel_big, width_big, _) = at_fraction(0.5);
        assert!(rel_big < rel_small, "rel err {rel_small:.3} → {rel_big:.3}");
        assert!(width_big < width_small, "CI width {width_small:.3} → {width_big:.3}");
    }

    #[test]
    fn e6_full_census_is_near_exact() {
        let (rel, width, _) = at_fraction(1.0);
        assert!(rel < 0.05, "census relative error {rel}");
        assert!(width < 0.01, "census CI width {width}");
    }
}
