// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E3 — Crowd join cost ladder: all-pairs vs blocking vs transitivity.
//!
//! Emulates the CrowdER ('12) and transitivity ('13/'14) cost tables:
//! crowd pairs asked and resulting cluster F1 for each rung of the cost
//! ladder. Expected shape: blocking removes the overwhelming majority of
//! pairs at a small recall cost; transitivity removes a further large
//! fraction at essentially no F1 cost.

use crowdkit_core::answer::AnswerValue;
use crowdkit_core::metrics::pairwise_cluster_f1;
use crowdkit_obs as obs;
use crowdkit_core::task::Task;
use crowdkit_ops::join::{
    all_pairs_count, candidate_pairs, crowd_join, AskOrder, CandidatePair, JoinConfig,
};
use crowdkit_sim::dataset::EntityDataset;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::SimulatedCrowd;

use crate::table::{f3, Table};

const ENTITIES: usize = 80;
const SEED: u64 = 31;

fn join_with(
    data: &EntityDataset,
    candidates: &[CandidatePair],
    use_transitivity: bool,
) -> (usize, usize, f64) {
    let pop = PopulationBuilder::new().reliable(60, 0.9, 0.99).build(SEED);
    let crowd = SimulatedCrowd::new(pop, SEED);
    let out = crowd_join(
        &crowd,
        data.records.len(),
        candidates,
        |id, a, b| {
            Task::binary(id, format!("{a} vs {b}"))
                .with_truth(AnswerValue::Choice(data.same_entity(a, b) as u32))
        },
        &JoinConfig {
            votes_per_pair: 3,
            use_transitivity,
            order: AskOrder::SimilarityDesc,
        },
    )
    .expect("join succeeds");
    let f1 = pairwise_cluster_f1(&out.clusters, &data.truth_clusters()).f1();
    obs::quality("cluster_f1", f1);
    (out.pairs_asked, out.questions_asked, f1)
}

/// Runs E3.
pub fn run() -> Vec<Table> {
    let data = EntityDataset::generate(ENTITIES, 4, 2, SEED);
    let n = data.records.len();
    let texts: Vec<String> = data.records.iter().map(|r| r.text.clone()).collect();

    // All pairs (at similarity 0 every co-token pair qualifies; truly all
    // pairs would include token-disjoint ones — enumerate them directly).
    let mut everything = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            everything.push(CandidatePair {
                a,
                b,
                similarity: if data.same_entity(a, b) { 0.9 } else { 0.1 },
            });
        }
    }
    let blocked = candidate_pairs(&texts, 0.4);

    let mut t = Table::new(
        format!("E3: crowd join cost ladder ({n} records, {ENTITIES} entities, 3 votes/pair)"),
        &["strategy", "candidate pairs", "pairs asked", "questions", "cluster F1"],
    );
    let (asked, q, f1) = join_with(&data, &everything, false);
    t.row(vec![
        "all pairs".into(),
        all_pairs_count(n).to_string(),
        asked.to_string(),
        q.to_string(),
        f3(f1),
    ]);
    let (asked, q, f1) = join_with(&data, &blocked, false);
    t.row(vec![
        "blocking".into(),
        blocked.len().to_string(),
        asked.to_string(),
        q.to_string(),
        f3(f1),
    ]);
    let (asked, q, f1) = join_with(&data, &blocked, true);
    t.row(vec![
        "blocking + transitivity".into(),
        blocked.len().to_string(),
        asked.to_string(),
        q.to_string(),
        f3(f1),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_shape_each_rung_cuts_cost() {
        let data = EntityDataset::generate(30, 3, 1, 5);
        let texts: Vec<String> = data.records.iter().map(|r| r.text.clone()).collect();
        let n = texts.len();
        let blocked = candidate_pairs(&texts, 0.3);
        assert!(
            blocked.len() * 4 < all_pairs_count(n),
            "blocking keeps a small fraction: {} of {}",
            blocked.len(),
            all_pairs_count(n)
        );
        let (asked_plain, _, f1_plain) = join_with(&data, &blocked, false);
        let (asked_trans, _, f1_trans) = join_with(&data, &blocked, true);
        assert!(asked_trans <= asked_plain);
        assert!(
            (f1_plain - f1_trans).abs() < 0.1,
            "transitivity should not materially change F1: {f1_plain:.3} vs {f1_trans:.3}"
        );
    }
}
