// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! The experiment registry. Each module regenerates one table/figure from
//! DESIGN.md's per-experiment index.

pub mod e01_truth_accuracy;
pub mod e02_worker_quality;
pub mod e03_join_cost;
pub mod e04_ranking;
pub mod e05_filter_stopping;
pub mod e06_count_estimation;
pub mod e07_collection;
pub mod e08_assignment;
pub mod e09_latency;
pub mod e10_sql_optimizer;
pub mod e11_datalog_fetch;
pub mod e12_join_ablation;
pub mod e13_gold_injection;
pub mod e14_hit_batching;
pub mod e15_selective_output;
pub mod e16_numeric_aggregation;
pub mod e17_worker_supply;

use std::sync::Arc;

use crowdkit_metrics as metrics;
use crowdkit_obs::{self as obs, Event, ExperimentReport, RunReport};
use crowdkit_provenance as prov;

use crate::table::Table;

/// An experiment entry: id, description, and runner.
pub struct Experiment {
    /// Short id ("e1").
    pub id: &'static str,
    /// One-line description (matches DESIGN.md).
    pub description: &'static str,
    /// Produces the experiment's tables.
    pub run: fn() -> Vec<Table>,
}

/// All experiments, in id order.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "e1",
        description: "truth-inference accuracy vs redundancy across crowd mixes",
        run: e01_truth_accuracy::run,
    },
    Experiment {
        id: "e2",
        description: "worker-quality estimation error vs answers per worker",
        run: e02_worker_quality::run,
    },
    Experiment {
        id: "e3",
        description: "crowd join cost ladder: all-pairs vs blocking vs transitivity",
        run: e03_join_cost::run,
    },
    Experiment {
        id: "e4",
        description: "ranking quality (Kendall tau) vs comparison budget",
        run: e04_ranking::run,
    },
    Experiment {
        id: "e5",
        description: "filter cost/accuracy under stopping rules and selectivities",
        run: e05_filter_stopping::run,
    },
    Experiment {
        id: "e6",
        description: "sampling-based COUNT: error and CI width vs sample fraction",
        run: e06_count_estimation::run,
    },
    Experiment {
        id: "e7",
        description: "open-world collection: accumulation curve and Chao92",
        run: e07_collection::run,
    },
    Experiment {
        id: "e8",
        description: "task-assignment policies under fixed budgets",
        run: e08_assignment::run,
    },
    Experiment {
        id: "e9",
        description: "latency: completion time vs round size and straggler policy",
        run: e09_latency::run,
    },
    Experiment {
        id: "e10",
        description: "CrowdSQL optimizer: predicted vs actual spend, naive vs optimized",
        run: e10_sql_optimizer::run,
    },
    Experiment {
        id: "e11",
        description: "crowd-Datalog fetch minimization by body ordering",
        run: e11_datalog_fetch::run,
    },
    Experiment {
        id: "e12",
        description: "ER ablation: transitivity × ask order",
        run: e12_join_ablation::run,
    },
    Experiment {
        id: "e13",
        description: "gold-question injection on spam-heavy crowds",
        run: e13_gold_injection::run,
    },
    Experiment {
        id: "e14",
        description: "HIT batching: pair-based vs cluster-based (CrowdER)",
        run: e14_hit_batching::run,
    },
    Experiment {
        id: "e15",
        description: "selective output: confidence-threshold coverage vs accuracy",
        run: e15_selective_output::run,
    },
    Experiment {
        id: "e16",
        description: "numeric aggregation robustness vs spammer share",
        run: e16_numeric_aggregation::run,
    },
    Experiment {
        id: "e17",
        description: "worker supply: completion time vs churned availability",
        run: e17_worker_supply::run,
    },
];

/// Runs one experiment by id, returning its rendered output, or `None`
/// for an unknown id.
pub fn run_by_name(id: &str) -> Option<String> {
    let e = EXPERIMENTS.iter().find(|e| e.id == id)?;
    let mut out = String::new();
    out.push_str(&format!("=== {} — {} ===\n\n", e.id.to_uppercase(), e.description));
    for t in (e.run)() {
        out.push_str(&t.render());
        out.push('\n');
    }
    Some(out)
}

/// Runs every experiment, executing them in parallel (each experiment is
/// deterministic and independent) but printing in registry order.
pub fn run_all() -> String {
    let mut results: Vec<String> = Vec::with_capacity(EXPERIMENTS.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = EXPERIMENTS
            .iter()
            .map(|e| scope.spawn(move || run_by_name(e.id).expect("registered id")))
            .collect();
        for h in handles {
            results.push(h.join().expect("experiment thread panicked"));
        }
    });
    results.concat()
}

/// Output of an instrumented suite run ([`run_all_with_report`]).
pub struct SuiteRun {
    /// Concatenated rendered tables, in registry order (same text as
    /// [`run_all`]).
    pub rendered: String,
    /// Per-experiment cost/latency/quality telemetry plus suite totals —
    /// the `RUNREPORT.json` payload.
    pub report: RunReport,
    /// The merged deterministic JSONL event log (empty unless requested).
    pub events: Vec<u8>,
}

/// Runs every experiment like [`run_all`], but with telemetry: each
/// experiment executes under its own [`obs::MemoryRecorder`] and the
/// distilled [`ExperimentReport`]s land in a [`RunReport`], in registry
/// order.
///
/// With `capture_events` the full event streams are also captured, one
/// [`obs::ShardBuffers`] shard per experiment, and merged in registry order
/// into one JSONL log. The first line is a versioned [`obs::StreamHeader`]
/// carrying run metadata (git rev, thread count, workload id); every line
/// after it omits wall-clock data, so the event bytes are a pure function
/// of the experiments' seeds — identical at any thread count and across
/// repeat runs. `crowdtrace diff` compares exactly that deterministic
/// portion.
pub fn run_all_with_report(capture_events: bool) -> SuiteRun {
    let ids: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
    run_with_report(&ids, capture_events) // crowdkit-lint: allow(DET002) — suite driver: per-run wall timings are reported on purpose
        .expect("registry ids are valid")
}

/// Runs a subset of experiments instrumented, like [`run_all_with_report`]
/// but only for the given ids (in the given order). Returns `None` if any
/// id is unknown.
pub fn run_with_report(ids: &[&str], capture_events: bool) -> Option<SuiteRun> {
    let selected: Vec<&Experiment> = ids
        .iter()
        .map(|id| EXPERIMENTS.iter().find(|e| e.id == *id))
        .collect::<Option<Vec<_>>>()?;
    let shards = obs::ShardBuffers::new(selected.len(), capture_events);
    let mut rendered = String::new();
    let mut report = RunReport::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = selected
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let shard = shards.shard(i);
                scope.spawn(move || {
                    // The recorder and metric-registry scopes are
                    // thread-local, so both must be entered *inside* the
                    // experiment's own thread. A per-experiment registry
                    // keeps the concurrently running experiments from
                    // polluting each other's counters — that independence
                    // is what makes the metrics.snapshot events below
                    // byte-identical across suite thread interleavings.
                    let mem = Arc::new(obs::MemoryRecorder::new());
                    let rec: Arc<dyn obs::Recorder> = if capture_events {
                        Arc::new(obs::Tee(shard, mem.clone()))
                    } else {
                        mem.clone()
                    };
                    let reg = Arc::new(metrics::Registry::new());
                    let start = std::time::Instant::now(); // crowdkit-lint: allow(DET002) — benchmark harness: measuring wall time is the point
                    let text = obs::with_recorder(rec, || {
                        metrics::with_registry(reg.clone(), || {
                            // Provenance is scoped like obs/metrics: the
                            // summary `prov.run` events always land (and
                            // feed the report), full per-task lineage only
                            // when the recorder captures detail (--log).
                            prov::with_provenance(Arc::new(prov::Provenance::default()), || {
                                obs::record(Event::new("exp.begin").str("id", e.id));
                                let text = run_by_name(e.id).expect("registered id");
                                // Flush the experiment's final metric state as
                                // one snapshot delta before the end marker, so
                                // the events sit inside the exp span.
                                metrics::SnapshotExporter::new().emit(&reg, None);
                                obs::record(Event::new("exp.end").str("id", e.id));
                                text
                            })
                        })
                    });
                    let wall_ms = start.elapsed().as_millis() as u64;
                    let rep =
                        ExperimentReport::from_recorder(e.id, e.description, wall_ms, &mem);
                    (text, rep)
                })
            })
            .collect();
        for h in handles {
            let (text, rep) = h.join().expect("experiment thread panicked");
            rendered.push_str(&text);
            report.experiments.push(rep);
        }
    });
    let events = if capture_events {
        let sink = obs::JsonlRecorder::in_memory().with_wall(false);
        // Header first: schema version, provenance (git rev, thread
        // count), and the workload id. Thread count is metadata — the
        // event bytes below it are identical at any parallelism.
        sink.write_header(&obs::StreamHeader::new(
            crowdkit_trace::history::git_short_rev(),
            0,
            crowdkit_core::par::default_threads() as u32,
            &if ids.len() == EXPERIMENTS.len() {
                "experiments:all".to_owned()
            } else {
                format!("experiments:{}", ids.join(","))
            },
        ));
        shards.flush_to(&sink);
        sink.take_bytes()
    } else {
        Vec::new()
    };
    Some(SuiteRun {
        rendered,
        report,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for e in EXPERIMENTS {
            assert!(e.id.starts_with('e'));
            assert!(seen.insert(e.id), "duplicate id {}", e.id);
            assert!(!e.description.is_empty());
        }
        assert_eq!(EXPERIMENTS.len(), 17);
    }

    #[test]
    fn unknown_id_returns_none() {
        assert!(run_by_name("e99").is_none());
    }
}
