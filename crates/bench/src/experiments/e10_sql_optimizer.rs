// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E10 — CrowdSQL optimizer: naive vs optimized plan cost.
//!
//! Emulates the CrowdDB ('11) plan-cost comparisons: crowd questions asked
//! by the naive plan (eager fill, full crowd sort) vs the optimized plan
//! (machine-first, lazy fill, limit-aware tournament) for three query
//! shapes. Expected shape: the optimizer wins by the selectivity factor on
//! fill queries and by ~n/log n on top-k ordering.

use crowdkit_obs as obs;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::SimulatedCrowd;
use crowdkit_sql::exec::SimTaskFactory;
use crowdkit_sql::{Session, Value};

use crate::table::Table;

const SEED: u64 = 101;

fn products_session(n: i64) -> Session {
    let mut s = Session::new();
    s.execute_ddl("CREATE TABLE products (id INT, name TEXT, category CROWD TEXT)")
        .unwrap();
    for i in 0..n {
        s.execute_ddl(&format!("INSERT INTO products VALUES ({i}, 'p{i}', NULL)"))
            .unwrap();
    }
    s.execute_ddl("CREATE TABLE brands (bname TEXT)").unwrap();
    for b in ["p1", "p4", "p9", "zzz"] {
        s.execute_ddl(&format!("INSERT INTO brands VALUES ('{b}')"))
            .unwrap();
    }
    s
}

fn factory() -> impl crowdkit_sql::TaskFactory {
    SimTaskFactory {
        fill_truth: |_: &str, row: &[Value], _: &str| match row[0] {
            Value::Int(i) if i % 4 == 0 => "phone".to_owned(),
            _ => "other".to_owned(),
        },
        equal_truth: |l: &Value, r: &Value| l.display_raw().eq_ignore_ascii_case(&r.display_raw()),
        left_wins_truth: |l: &Value, r: &Value| l.display_raw() > r.display_raw(),
    }
}

fn questions(sql: &str, optimized: bool) -> u64 {
    let mut s = products_session(20);
    let pop = PopulationBuilder::new().reliable(80, 0.95, 1.0).build(SEED);
    let crowd = SimulatedCrowd::new(pop, SEED);
    let mut f = factory();
    let (_, stats) = s
        .query_crowd(sql, &crowd, &mut f, 3, optimized)
        .expect("query succeeds");
    stats.questions
}

const QUERIES: &[(&str, &str)] = &[
    (
        "Q1 selective fill",
        "SELECT category FROM products WHERE id >= 16",
    ),
    (
        "Q2 crowd join",
        "SELECT products.name FROM products, brands \
         WHERE CROWDEQUAL(products.name, brands.bname) AND products.id < 5",
    ),
    (
        "Q3 crowd top-2",
        "SELECT name FROM products ORDER BY CROWDORDER(name) LIMIT 2",
    ),
];

/// Runs E10.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E10: CrowdSQL crowd questions, naive vs optimized plan (20 rows, 3 votes)",
        &["query", "naive", "optimized", "saving"],
    );
    for (name, sql) in QUERIES {
        let naive = questions(sql, false);
        let opt = questions(sql, true);
        if naive > 0 {
            obs::quality("question_saving", (naive - opt) as f64 / naive as f64);
        }
        let saving = if naive > 0 {
            format!("{:.0}%", 100.0 * (naive - opt) as f64 / naive as f64)
        } else {
            "—".into()
        };
        t.row(vec![
            name.to_string(),
            naive.to_string(),
            opt.to_string(),
            saving,
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_shape_optimizer_strictly_cheaper_on_every_query() {
        for (name, sql) in QUERIES {
            let naive = questions(sql, false);
            let opt = questions(sql, true);
            assert!(
                opt < naive,
                "{name}: optimized ({opt}) must beat naive ({naive})"
            );
        }
    }

    #[test]
    fn e10_shape_selective_fill_saving_tracks_selectivity() {
        // 4 of 20 rows survive `id >= 16` → ~80 % saving on fills.
        let naive = questions(QUERIES[0].1, false);
        let opt = questions(QUERIES[0].1, true);
        assert!(
            opt * 4 <= naive,
            "Q1: optimized ({opt}) should be ≤ naive/4 ({naive})"
        );
    }
}
