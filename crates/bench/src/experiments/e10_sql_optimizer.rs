// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E10 — CrowdSQL optimizer: predicted vs actual cost, naive vs optimized.
//!
//! Emulates the CrowdDB ('11) plan-cost comparisons, now as a real
//! optimizer ablation: each query runs twice — once on the canonical
//! (naive) plan and once through the rewriter + cost model — against a
//! perfectly accurate simulated crowd, so the two plans must return
//! byte-identical result sets. For both variants the table reports the
//! cost model's *predicted* spend and round-trips next to the metered
//! *actuals*, which is the honest test of a cost-based optimizer: it has
//! to win in reality, not just in its own estimates.

use crowdkit_obs as obs;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::SimulatedCrowd;
use crowdkit_sql::exec::SimTaskFactory;
use crowdkit_sql::{QueryOpts, QueryStats, Session, Value};

use crate::table::Table;

const SEED: u64 = 101;
const VOTES: u32 = 3;
/// Crowd questions per simulated round-trip for the optimized plans.
const BATCH: usize = 8;

fn products_session(n: i64) -> Session {
    let s = Session::new();
    s.execute_ddl("CREATE TABLE products (id INT, name TEXT, category CROWD TEXT)")
        .unwrap();
    for i in 0..n {
        s.execute_ddl(&format!("INSERT INTO products VALUES ({i}, 'p{i}', NULL)"))
            .unwrap();
    }
    s.execute_ddl("CREATE TABLE brands (bname TEXT)").unwrap();
    for b in ["p1", "p4", "p9", "zzz"] {
        s.execute_ddl(&format!("INSERT INTO brands VALUES ('{b}')"))
            .unwrap();
    }
    s
}

fn factory() -> impl crowdkit_sql::TaskFactory {
    SimTaskFactory {
        fill_truth: |_: &str, row: &[Value], _: &str| match row[0] {
            Value::Int(i) if i % 4 == 0 => "phone".to_owned(),
            _ => "other".to_owned(),
        },
        equal_truth: |l: &Value, r: &Value| l.display_raw().eq_ignore_ascii_case(&r.display_raw()),
        left_wins_truth: |l: &Value, r: &Value| l.display_raw() > r.display_raw(),
    }
}

/// Runs `sql` on a fresh session against a fresh, perfectly accurate
/// crowd, so naive and optimized runs are comparable and must agree.
fn run_query(sql: &str, opts: &QueryOpts) -> (Vec<Vec<Value>>, QueryStats) {
    let s = products_session(20);
    let pop = PopulationBuilder::new().reliable(80, 1.0, 1.0).build(SEED);
    let crowd = SimulatedCrowd::new(pop, SEED);
    let mut f = factory();
    s.query_crowd(sql, &crowd, &mut f, opts)
        .expect("query succeeds")
}

const QUERIES: &[(&str, &str)] = &[
    (
        "Q1 selective fill",
        "SELECT category FROM products WHERE id >= 16",
    ),
    (
        "Q2 crowd join",
        "SELECT products.name FROM products, brands \
         WHERE CROWDEQUAL(products.name, brands.bname) AND products.id < 5",
    ),
    (
        "Q3 crowd top-2",
        "SELECT name FROM products ORDER BY CROWDORDER(name) LIMIT 2",
    ),
];

fn naive_opts() -> QueryOpts {
    QueryOpts::naive().votes(VOTES)
}

fn optimized_opts() -> QueryOpts {
    QueryOpts::new().votes(VOTES).batch(BATCH)
}

/// Runs E10.
pub fn run() -> Vec<Table> {
    let mut spend = Table::new(
        "E10a: CrowdSQL spend, predicted vs actual (20 rows, 3 votes)",
        &["query", "naive pred", "naive actual", "opt pred", "opt actual", "saving"],
    );
    let mut rounds = Table::new(
        "E10b: CrowdSQL round-trips (latency proxy), predicted vs actual",
        &["query", "naive pred", "naive actual", "opt pred", "opt actual"],
    );
    for (name, sql) in QUERIES {
        let (naive_rows, naive) = run_query(sql, &naive_opts());
        let (opt_rows, opt) = run_query(sql, &optimized_opts());
        assert_eq!(
            naive_rows, opt_rows,
            "{name}: optimization must not change results"
        );
        assert!(
            opt.spend < naive.spend,
            "{name}: optimized actual spend ({}) must beat naive ({})",
            opt.spend,
            naive.spend
        );
        if naive.questions > 0 {
            obs::quality(
                "question_saving",
                (naive.questions - opt.questions) as f64 / naive.questions as f64,
            );
        }
        obs::quality("spend_pred_naive", naive.predicted_spend);
        obs::quality("spend_actual_naive", naive.spend);
        obs::quality("spend_pred_opt", opt.predicted_spend);
        obs::quality("spend_actual_opt", opt.spend);
        obs::quality("rounds_pred_naive", naive.predicted_rounds);
        obs::quality("rounds_actual_naive", naive.rounds as f64);
        obs::quality("rounds_pred_opt", opt.predicted_rounds);
        obs::quality("rounds_actual_opt", opt.rounds as f64);
        let saving = format!(
            "{:.0}%",
            100.0 * (naive.spend - opt.spend) / naive.spend
        );
        spend.row(vec![
            name.to_string(),
            format!("{:.0}", naive.predicted_spend),
            format!("{:.0}", naive.spend),
            format!("{:.0}", opt.predicted_spend),
            format!("{:.0}", opt.spend),
            saving,
        ]);
        rounds.row(vec![
            name.to_string(),
            format!("{:.0}", naive.predicted_rounds),
            naive.rounds.to_string(),
            format!("{:.0}", opt.predicted_rounds),
            opt.rounds.to_string(),
        ]);
    }
    vec![spend, rounds]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_shape_optimizer_strictly_cheaper_and_result_preserving() {
        for (name, sql) in QUERIES {
            let (naive_rows, naive) = run_query(sql, &naive_opts());
            let (opt_rows, opt) = run_query(sql, &optimized_opts());
            assert_eq!(naive_rows, opt_rows, "{name}: results must match");
            assert!(
                opt.spend < naive.spend,
                "{name}: optimized spend ({}) must beat naive ({})",
                opt.spend,
                naive.spend
            );
            assert!(
                opt.questions < naive.questions,
                "{name}: optimized ({}) must beat naive ({})",
                opt.questions,
                naive.questions
            );
        }
    }

    #[test]
    fn e10_shape_predictions_bound_reality_for_perfect_crowds() {
        // With a perfectly accurate crowd and unit prices, the cost
        // model's spend prediction is exact for fill-only plans and an
        // upper bound when verdict caching kicks in.
        for (name, sql) in QUERIES {
            for opts in [naive_opts(), optimized_opts()] {
                let (_, stats) = run_query(sql, &opts);
                assert!(
                    stats.spend <= stats.predicted_spend + 1e-9,
                    "{name}: actual spend {} exceeds predicted {}",
                    stats.spend,
                    stats.predicted_spend
                );
            }
        }
    }

    #[test]
    fn e10_shape_selective_fill_saving_tracks_selectivity() {
        // 4 of 20 rows survive `id >= 16` → ~80 % saving on fills.
        let (_, naive) = run_query(QUERIES[0].1, &naive_opts());
        let (_, opt) = run_query(QUERIES[0].1, &optimized_opts());
        assert!(
            opt.questions * 4 <= naive.questions,
            "Q1: optimized ({}) should be ≤ naive/4 ({})",
            opt.questions,
            naive.questions
        );
    }

    #[test]
    fn e10_shape_batching_cuts_round_trips() {
        // The optimized plan batches 8 questions per round-trip; the
        // naive plan asks cell by cell.
        let (_, naive) = run_query(QUERIES[0].1, &naive_opts());
        let (_, opt) = run_query(QUERIES[0].1, &optimized_opts());
        assert!(
            opt.rounds < naive.rounds,
            "Q1: optimized rounds ({}) should beat naive ({})",
            opt.rounds,
            naive.rounds
        );
    }
}
