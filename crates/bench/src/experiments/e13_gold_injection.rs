// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E13 — Gold-question injection.
//!
//! Quality control without a worker model: seed the stream with questions
//! whose answers are known, score workers on them, and weight/eliminate
//! accordingly. Expected shape: on spam-heavy crowds, gold-weighted voting
//! closes most of the MV→EM gap once a few percent of tasks are gold, at
//! the cost of the gold questions themselves.

use crowdkit_core::traits::TruthInferencer;
use crowdkit_obs as obs;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::population::mixes;
use crowdkit_sim::SimulatedCrowd;
use crowdkit_truth::gold::{inject_gold_stride, GoldWeightedVote};
use crowdkit_truth::{pipeline::label_tasks, DawidSkene, MajorityVote};

use crate::table::{pct, Table};

const N_TASKS: usize = 300;
const K: usize = 5;
const SEEDS: [u64; 3] = [131, 132, 133];

/// Accuracy on *non-gold* tasks for one configuration.
fn run_config(gold_stride: Option<usize>, algo_name: &str, seed: u64) -> f64 {
    let data = LabelingDataset::binary(N_TASKS, seed);
    let ids: Vec<_> = data.tasks.iter().map(|t| t.id).collect();
    let gold = gold_stride.map(|s| inject_gold_stride(&ids, &data.truths, s));

    let crowd = SimulatedCrowd::new(mixes::spam_heavy(60, seed), seed);
    let mv = MajorityVote;
    let ds = DawidSkene::default();
    let gwv = gold.clone().map(GoldWeightedVote::new);
    let algo: &dyn TruthInferencer = match algo_name {
        "mv" => &mv,
        "ds" => &ds,
        _ => gwv.as_ref().expect("gold configured for gold_wmv"),
    };
    let out = label_tasks(&crowd, &data.tasks, K, algo).expect("collection succeeds");

    let mut correct = 0usize;
    let mut total = 0usize;
    for (task, &truth) in data.tasks.iter().zip(&data.truths) {
        if gold.as_ref().map(|g| g.contains(task.id)).unwrap_or(false) {
            continue; // score only the tasks we actually needed answered
        }
        total += 1;
        if out.label_for(task) == Some(truth) {
            correct += 1;
        }
    }
    correct as f64 / total as f64
}

fn mean_over_seeds(gold_stride: Option<usize>, algo: &str) -> f64 {
    let mean = SEEDS
        .iter()
        .map(|&s| run_config(gold_stride, algo, s))
        .sum::<f64>()
        / SEEDS.len() as f64;
    obs::quality("accuracy", mean);
    mean
}

/// Runs E13.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        format!(
            "E13: gold injection on a spam-heavy crowd ({N_TASKS} tasks, k={K}, accuracy on non-gold tasks, mean of {} seeds)",
            SEEDS.len()
        ),
        &["configuration", "gold tasks", "accuracy"],
    );
    t.row(vec![
        "mv (no gold)".into(),
        "0".into(),
        pct(mean_over_seeds(None, "mv")),
    ]);
    for stride in [20usize, 10, 5] {
        let gold_count = N_TASKS.div_ceil(stride);
        t.row(vec![
            format!("gold_wmv (every {stride}th gold)"),
            gold_count.to_string(),
            pct(mean_over_seeds(Some(stride), "gold_wmv")),
        ]);
    }
    t.row(vec![
        "ds (model-based, no gold)".into(),
        "0".into(),
        pct(mean_over_seeds(None, "ds")),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_shape_gold_weighting_beats_plain_mv_under_spam() {
        let mv = mean_over_seeds(None, "mv");
        let gold10 = mean_over_seeds(Some(10), "gold_wmv");
        assert!(
            gold10 > mv + 0.05,
            "gold_wmv at 10% gold ({gold10:.3}) should clearly beat MV ({mv:.3})"
        );
    }

    #[test]
    fn e13_shape_more_gold_does_not_hurt() {
        let sparse = mean_over_seeds(Some(20), "gold_wmv");
        let dense = mean_over_seeds(Some(5), "gold_wmv");
        assert!(
            dense >= sparse - 0.03,
            "denser gold ({dense:.3}) should not trail sparse gold ({sparse:.3})"
        );
    }
}
