// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E11 — Crowd-Datalog fetch minimization by body ordering.
//!
//! Emulates the Deco ('12) fetch-rule cost results: the number of crowd
//! fetches issued by a program that filters *before* reaching the crowd
//! predicate vs one that fetches first. The engine enumerates bindings of
//! the literals preceding a crowd atom, so body order is the Datalog
//! analogue of CrowdSQL's machine-first rule. Expected shape: fetch count
//! scales with the filtered binding set, not the full relation.

use crowdkit_datalog::{parse_program, Const, Engine, TableResolver};
use crowdkit_obs as obs;

use crate::table::Table;

const N_ITEMS: usize = 40;

/// A program where the machine filter precedes the crowd atom.
fn filtered_first(n: usize, cutoff: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("item(\"x{i}\", {i}).\n"));
    }
    src.push_str("@crowd label_of/2.\n");
    src.push_str(&format!(
        "out(X, L) :- item(X, I), I >= {cutoff}, label_of(X, L).\n"
    ));
    src
}

/// The same query with the crowd atom before the filter.
fn fetch_first(n: usize, cutoff: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("item(\"x{i}\", {i}).\n"));
    }
    src.push_str("@crowd label_of/2.\n");
    src.push_str(&format!(
        "out(X, L) :- item(X, I), label_of(X, L), I >= {cutoff}.\n"
    ));
    src
}

fn resolver(n: usize) -> TableResolver {
    let mut r = TableResolver::new();
    for i in 0..n {
        r.insert(
            "label_of",
            vec![Const::Str(format!("x{i}")), Const::Str("good".into())],
        );
    }
    r
}

fn fetches(src: &str, n: usize) -> (usize, usize) {
    let engine = Engine::new(parse_program(src).expect("parses")).expect("validates");
    let mut res = resolver(n);
    let (db, stats) = engine.run(&mut res).expect("evaluates");
    (stats.fetches, db.len("out"))
}

/// Runs E11.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        format!("E11: crowd-Datalog fetches by body order ({N_ITEMS} items)"),
        &["selectivity", "filter-first fetches", "fetch-first fetches", "answers"],
    );
    for cutoff in [36usize, 30, 20, 0] {
        let selectivity = (N_ITEMS - cutoff) as f64 / N_ITEMS as f64;
        let (f1, out1) = fetches(&filtered_first(N_ITEMS, cutoff), N_ITEMS);
        let (f2, out2) = fetches(&fetch_first(N_ITEMS, cutoff), N_ITEMS);
        assert_eq!(out1, out2, "both orderings compute the same answer");
        if f2 > 0 {
            obs::quality("fetch_saving", (f2 - f1) as f64 / f2 as f64);
        }
        t.row(vec![
            format!("{selectivity:.2}"),
            f1.to_string(),
            f2.to_string(),
            out1.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_shape_filter_first_fetches_only_surviving_bindings() {
        let (filtered, out) = fetches(&filtered_first(N_ITEMS, 30), N_ITEMS);
        let (eager, out2) = fetches(&fetch_first(N_ITEMS, 30), N_ITEMS);
        assert_eq!(out, 10);
        assert_eq!(out2, 10);
        assert_eq!(filtered, 10, "filter-first fetches exactly the survivors");
        assert_eq!(eager, N_ITEMS, "fetch-first pays for every item");
    }

    #[test]
    fn e11_shape_zero_selectivity_converges() {
        let (f1, _) = fetches(&filtered_first(N_ITEMS, 0), N_ITEMS);
        let (f2, _) = fetches(&fetch_first(N_ITEMS, 0), N_ITEMS);
        assert_eq!(f1, f2, "with no filter both orders fetch everything");
    }
}
