// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E1 — Truth-inference accuracy vs redundancy across crowd mixes.
//!
//! Emulates the comparison tables of the truth-inference literature
//! (Dawid–Skene '79 evaluations, ZenCrowd '12, GLAD '09): label accuracy
//! of each algorithm as the per-task redundancy `k` grows, for three
//! worker-population mixes. Expected shape: the EM family matches MV on
//! reliable crowds and pulls ahead as spam grows; everyone improves with
//! `k`.

use crowdkit_core::metrics::accuracy;
use crowdkit_obs as obs;
use crowdkit_core::traits::TruthInferencer;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::population::{mixes, Population};
use crowdkit_sim::SimulatedCrowd;
use crowdkit_truth::{pipeline::label_tasks, DawidSkene, Glad, Kos, MajorityVote, OneCoinEm};

use crate::table::{pct, Table};

const N_TASKS: usize = 300;
const POP: usize = 50;
const SEEDS: [u64; 3] = [1, 2, 3];

fn algorithms() -> Vec<Box<dyn TruthInferencer>> {
    vec![
        Box::new(MajorityVote),
        Box::new(OneCoinEm::default()),
        Box::new(DawidSkene::default()),
        Box::new(Glad::default()),
        Box::new(Kos::default()),
    ]
}

fn mix_table(name: &str, make_pop: fn(usize, u64) -> Population) -> Table {
    let ks = [1usize, 3, 5, 7, 9];
    let mut t = Table::new(
        format!("E1: label accuracy, {name} crowd ({N_TASKS} binary tasks, mean of {} seeds)", SEEDS.len()),
        &["algorithm", "k=1", "k=3", "k=5", "k=7", "k=9"],
    );
    for algo in algorithms() {
        let mut cells = vec![algo.name().to_owned()];
        for &k in &ks {
            let mut acc = 0.0;
            for &seed in &SEEDS {
                let data = LabelingDataset::binary(N_TASKS, seed);
                let crowd = SimulatedCrowd::new(make_pop(POP, seed), seed);
                let out = label_tasks(&crowd, &data.tasks, k, algo.as_ref())
                    .expect("collection succeeds");
                let predicted: Vec<u32> = data
                    .tasks
                    .iter()
                    .map(|task| out.label_for(task).expect("labelled"))
                    .collect();
                acc += accuracy(&predicted, &data.truths);
            }
            obs::quality("accuracy", acc / SEEDS.len() as f64);
            cells.push(pct(acc / SEEDS.len() as f64));
        }
        t.row(cells);
    }
    t
}

/// Runs E1.
pub fn run() -> Vec<Table> {
    vec![
        mix_table("reliable", mixes::reliable),
        mix_table("mixed", mixes::mixed),
        mix_table("spam-heavy", mixes::spam_heavy),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_em_beats_mv_under_spam_at_k5() {
        // Smoke the experiment at reduced size via the real code path.
        let tables = run();
        assert_eq!(tables.len(), 3);
        let spam = &tables[2];
        // Row 0 = mv, row 2 = ds; column 3 = k=5.
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let mv_k5 = parse(&spam.rows[0][3]);
        let ds_k5 = parse(&spam.rows[2][3]);
        assert!(
            ds_k5 > mv_k5,
            "DS ({ds_k5}) must beat MV ({mv_k5}) on the spam-heavy mix"
        );
    }
}
