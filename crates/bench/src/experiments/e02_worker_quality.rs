// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E2 — Worker-quality estimation error vs answers per worker.
//!
//! Emulates the worker-model evaluation figures of the EM papers: how
//! accurately each algorithm recovers the true per-worker accuracy as
//! workers answer more tasks. Expected shape: estimation MAE falls
//! monotonically with the task count; the confusion-matrix model needs
//! more data than the one-coin model at small counts.

use crowdkit_core::metrics::mae;
use crowdkit_obs as obs;
use crowdkit_core::traits::TruthInferencer;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::SimulatedCrowd;
use crowdkit_truth::{pipeline::label_tasks, DawidSkene, OneCoinEm};

use crate::table::{f3, Table};

const POP: usize = 20;
const K: usize = 4;
const SEEDS: [u64; 3] = [11, 12, 13];

/// MAE between estimated and true worker qualities, given a task count.
fn estimation_error<I: TruthInferencer + ?Sized>(n_tasks: usize, seed: u64, algo: &I) -> f64 {
    let data = LabelingDataset::binary(n_tasks, seed);
    // A spread of one-coin workers so there is real signal to recover.
    let pop = PopulationBuilder::new().reliable(POP, 0.55, 0.98).build(seed);
    let truth_q = pop.true_qualities();
    let crowd = SimulatedCrowd::new(pop, seed);
    let out = label_tasks(&crowd, &data.tasks, K, algo).expect("collection succeeds");
    let est = out
        .inference
        .worker_quality
        .expect("EM algorithms estimate worker quality");
    // Align dense worker indices back to population order. The simulated
    // population hands out dense worker ids from zero, so the raw id IS
    // the population index — `dense_index` checks that assumption instead
    // of silently aliasing if a sparse-id platform ever feeds this path.
    let mut est_aligned = Vec::new();
    let mut true_aligned = Vec::new();
    for (w, &e) in est.iter().enumerate().take(out.matrix.num_workers()) {
        let wid = out.matrix.worker_id(w);
        est_aligned.push(e);
        true_aligned.push(truth_q[wid.dense_index(truth_q.len())]);
    }
    mae(&est_aligned, &true_aligned)
}

/// Runs E2.
pub fn run() -> Vec<Table> {
    let task_counts = [25usize, 50, 100, 200, 400];
    let mut t = Table::new(
        format!("E2: worker-quality estimation MAE vs task count ({POP} workers, k={K}, mean of {} seeds)", SEEDS.len()),
        &["algorithm", "25", "50", "100", "200", "400"],
    );
    let one_coin = OneCoinEm::default();
    let ds = DawidSkene::default();
    for (name, algo) in [
        ("zc", &one_coin as &dyn TruthInferencer),
        ("ds", &ds as &dyn TruthInferencer),
    ] {
        let mut cells = vec![name.to_owned()];
        for &n in &task_counts {
            let avg: f64 = SEEDS
                .iter()
                .map(|&s| estimation_error(n, s, algo))
                .sum::<f64>()
                / SEEDS.len() as f64;
            obs::quality("worker_mae", avg);
            cells.push(f3(avg));
        }
        t.row(cells);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_shape_error_falls_with_more_tasks() {
        let err_small = estimation_error(25, 11, &OneCoinEm::default());
        let err_large = estimation_error(400, 11, &OneCoinEm::default());
        assert!(
            err_large < err_small,
            "more answers per worker must reduce estimation error: {err_small:.3} → {err_large:.3}"
        );
        assert!(err_large < 0.08, "asymptotic error should be small: {err_large:.3}");
    }
}
