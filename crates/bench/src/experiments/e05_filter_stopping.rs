// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E5 — Crowd filter cost/accuracy under adaptive stopping.
//!
//! Emulates the CrowdScreen-style cost/accuracy figures: per-item cost and
//! decision accuracy of fixed-redundancy vs margin vs SPRT stopping, as
//! item selectivity varies. Expected shape: adaptive rules spend clearly
//! less than fixed-k at equal (or better) accuracy, with the saving
//! largest when answers are lopsided.

use crowdkit_core::metrics::accuracy;
use crowdkit_obs as obs;
use crowdkit_core::traits::StoppingRule;
use crowdkit_ops::filter::crowd_filter;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::population::mixes;
use crowdkit_sim::SimulatedCrowd;
use crowdkit_truth::sequential::{FixedK, MajorityMargin, Sprt};

use crate::table::{f3, pct, Table};

const N: usize = 300;
const MAX_ANSWERS: u32 = 9;
const SEEDS: [u64; 3] = [51, 52, 53];

fn run_rule(rule: &dyn StoppingRule, selectivity: f64) -> (f64, f64) {
    let mut cost = 0.0;
    let mut acc = 0.0;
    for &seed in &SEEDS {
        let data = LabelingDataset::generate(N, 2, 1.0 - selectivity, (0.3, 0.6), seed);
        let crowd = SimulatedCrowd::new(mixes::mixed(80, seed), seed);
        let out = crowd_filter(&crowd, &data.tasks, rule, MAX_ANSWERS)
            .expect("filter succeeds");
        let predicted: Vec<u32> = out
            .decisions
            .iter()
            .map(|d| d.map(|d| d.keep as u32).unwrap_or(0))
            .collect();
        acc += accuracy(&predicted, &data.truths);
        cost += out.questions_asked as f64 / N as f64;
    }
    (cost / SEEDS.len() as f64, acc / SEEDS.len() as f64)
}

/// Runs E5.
pub fn run() -> Vec<Table> {
    let rules: Vec<(&str, Box<dyn StoppingRule>)> = vec![
        ("fixed k=5", Box::new(FixedK { k: 5 })),
        ("fixed k=9", Box::new(FixedK { k: 9 })),
        ("margin 2", Box::new(MajorityMargin { margin: 2 })),
        ("margin 3", Box::new(MajorityMargin { margin: 3 })),
        ("sprt (p=.75)", Box::new(Sprt::default())),
    ];
    let mut tables = Vec::new();
    for selectivity in [0.1, 0.3, 0.5] {
        let mut t = Table::new(
            format!(
                "E5: filter stopping rules at selectivity {selectivity} ({N} items, cap {MAX_ANSWERS}, mean of {} seeds)",
                SEEDS.len()
            ),
            &["rule", "answers/item", "accuracy"],
        );
        for (name, rule) in &rules {
            let (cost, acc) = run_rule(rule.as_ref(), selectivity);
            obs::quality("filter_accuracy", acc);
            t.row(vec![name.to_string(), f3(cost), pct(acc)]);
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_shape_adaptive_cheaper_than_fixed_at_similar_accuracy() {
        let (fixed_cost, fixed_acc) = run_rule(&FixedK { k: 9 }, 0.3);
        let (margin_cost, margin_acc) = run_rule(&MajorityMargin { margin: 3 }, 0.3);
        assert!(
            margin_cost < fixed_cost * 0.8,
            "margin ({margin_cost:.2}) should cost well below fixed-9 ({fixed_cost:.2})"
        );
        assert!(
            margin_acc > fixed_acc - 0.05,
            "accuracy holds: margin {margin_acc:.3} vs fixed {fixed_acc:.3}"
        );
    }
}
