// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E12 — ER ablation: transitivity × ask order.
//!
//! The design choice DESIGN.md calls out for `ops::join`: transitive
//! deduction only pays when likely-match pairs are asked early enough to
//! form clusters. This ablation crosses deduction on/off with
//! similarity-descending vs random ask order. Expected shape: deduction
//! with similarity order asks the fewest pairs; deduction with random
//! order sits in between; without deduction the order is irrelevant.

use crowdkit_core::answer::AnswerValue;
use crowdkit_core::metrics::pairwise_cluster_f1;
use crowdkit_obs as obs;
use crowdkit_core::task::Task;
use crowdkit_ops::join::{candidate_pairs, crowd_join, AskOrder, JoinConfig};
use crowdkit_sim::dataset::EntityDataset;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::SimulatedCrowd;

use crate::table::{f3, Table};

const SEED: u64 = 121;

fn run_config(use_transitivity: bool, order: AskOrder) -> (usize, usize, f64) {
    run_config_seeded(use_transitivity, order, SEED)
}

fn run_config_seeded(use_transitivity: bool, order: AskOrder, seed: u64) -> (usize, usize, f64) {
    let data = EntityDataset::generate(70, 4, 1, seed);
    let texts: Vec<String> = data.records.iter().map(|r| r.text.clone()).collect();
    let cands = candidate_pairs(&texts, 0.35);
    let pop = PopulationBuilder::new().reliable(60, 0.92, 0.99).build(seed);
    let crowd = SimulatedCrowd::new(pop, seed);
    let out = crowd_join(
        &crowd,
        texts.len(),
        &cands,
        |id, a, b| {
            Task::binary(id, format!("{a} vs {b}"))
                .with_truth(AnswerValue::Choice(data.same_entity(a, b) as u32))
        },
        &JoinConfig {
            votes_per_pair: 3,
            use_transitivity,
            order,
        },
    )
    .expect("join succeeds");
    let f1 = pairwise_cluster_f1(&out.clusters, &data.truth_clusters()).f1();
    (
        out.pairs_asked,
        out.deduced_same + out.deduced_different,
        f1,
    )
}

/// Runs E12.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E12: ER ablation — transitive deduction × ask order (70 entities, 3 votes/pair)",
        &["configuration", "pairs asked", "pairs deduced", "cluster F1"],
    );
    for (name, trans, order) in [
        ("deduction + similarity order", true, AskOrder::SimilarityDesc),
        ("deduction + random order", true, AskOrder::Random(SEED)),
        ("no deduction + similarity order", false, AskOrder::SimilarityDesc),
        ("no deduction + random order", false, AskOrder::Random(SEED)),
    ] {
        let (asked, deduced, f1) = run_config(trans, order);
        obs::quality("cluster_f1", f1);
        t.row(vec![
            name.into(),
            asked.to_string(),
            deduced.to_string(),
            f3(f1),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_shape_deduction_saves_and_order_matters_only_with_deduction() {
        // Structural claims hold per seed; the similarity-vs-random ordering
        // advantage is a tendency of noisy runs, so it is asserted on the
        // mean over several seeds.
        let seeds = [121u64, 122, 123, 124, 125];
        let (mut sim_sum, mut rand_sum) = (0usize, 0usize);
        for &seed in &seeds {
            let (sim_ded, ded1, f1a) =
                run_config_seeded(true, AskOrder::SimilarityDesc, seed);
            let (rand_ded, _, _) =
                run_config_seeded(true, AskOrder::Random(seed), seed);
            let (no_ded_sim, z1, f1b) =
                run_config_seeded(false, AskOrder::SimilarityDesc, seed);
            let (no_ded_rand, z2, _) =
                run_config_seeded(false, AskOrder::Random(seed), seed);

            assert!(ded1 > 0, "deduction fires (seed {seed})");
            assert_eq!(z1, 0);
            assert_eq!(z2, 0);
            assert!(sim_ded < no_ded_sim, "deduction asks fewer pairs (seed {seed})");
            assert_eq!(
                no_ded_sim, no_ded_rand,
                "without deduction, order is cost-neutral (seed {seed})"
            );
            assert!(
                (f1a - f1b).abs() < 0.1,
                "quality unchanged (seed {seed}): {f1a:.3} vs {f1b:.3}"
            );
            sim_sum += sim_ded;
            rand_sum += rand_ded;
        }
        assert!(
            sim_sum <= rand_sum,
            "similarity order at least matches random on average: {sim_sum} vs {rand_sum}"
        );
    }
}
