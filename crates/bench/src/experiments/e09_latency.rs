//! E9 — Latency control: rounds and straggler mitigation.
//!
//! Emulates the latency-control figures (retainer pools, round
//! organization): wall-clock completion time of a task batch as round size
//! and straggler policy vary under heavy-tailed human latencies. Expected
//! shape: bigger rounds exploit pool parallelism; re-issue cuts the tail
//! at a small extra-answer cost; dropping stragglers is fastest but loses
//! answers.

use crowdkit_obs as obs;
use crowdkit_sim::latency::{LatencyModel, RoundSimulator, StragglerPolicy};

use crate::table::{f3, Table};

const TASKS: usize = 200;
const K: usize = 3;
const POOL: usize = 60;
const SEEDS: u64 = 10;

fn simulate(round_size: usize, policy: StragglerPolicy) -> (f64, f64, f64) {
    let sim = RoundSimulator {
        latency: LatencyModel::human_default(),
        pool: POOL,
        round_size,
        policy,
    };
    let mut time = 0.0;
    let mut bought = 0.0;
    let mut dropped = 0.0;
    for seed in 0..SEEDS {
        let out = sim.run(TASKS, K, seed);
        time += out.total_time;
        bought += out.answers_bought as f64;
        dropped += out.answers_dropped as f64;
    }
    let n = SEEDS as f64;
    (time / n, bought / n, dropped / n)
}

/// Runs E9.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        format!(
            "E9: completion time vs round size and straggler policy ({TASKS} tasks × {K} answers, pool {POOL}, lognormal latencies, mean of {SEEDS} seeds)"
        ),
        &["round size", "policy", "time (s)", "answers bought", "dropped"],
    );
    for &rs in &[20usize, 60, 200] {
        for (name, policy) in [
            ("wait", StragglerPolicy::Wait),
            ("reissue@0.8", StragglerPolicy::Reissue { quantile: 0.8 }),
            ("drop@0.9", StragglerPolicy::Drop { quantile: 0.9 }),
        ] {
            let (time, bought, dropped) = simulate(rs, policy);
            obs::quality("completion_time_s", time);
            obs::quality("dropped_share", dropped / bought.max(1.0));
            t.row(vec![
                rs.to_string(),
                name.into(),
                f3(time),
                f3(bought),
                f3(dropped),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_shape_reissue_beats_wait_and_drop_is_fastest() {
        let (wait, wait_bought, _) = simulate(60, StragglerPolicy::Wait);
        let (reissue, reissue_bought, _) = simulate(60, StragglerPolicy::Reissue { quantile: 0.8 });
        let (drop, _, dropped) = simulate(60, StragglerPolicy::Drop { quantile: 0.9 });
        assert!(reissue < wait, "re-issue {reissue:.0}s < wait {wait:.0}s");
        assert!(drop < wait, "drop {drop:.0}s < wait {wait:.0}s");
        assert!(
            reissue_bought > wait_bought,
            "re-issue buys extra answers: {reissue_bought} vs {wait_bought}"
        );
        assert!(dropped > 0.0, "drop policy loses answers");
    }

    #[test]
    fn e9_shape_bigger_rounds_are_faster_with_a_wide_pool() {
        let (small, _, _) = simulate(20, StragglerPolicy::Wait);
        let (big, _, _) = simulate(200, StragglerPolicy::Wait);
        assert!(big < small, "round 200 ({big:.0}s) < round 20 ({small:.0}s)");
    }
}
