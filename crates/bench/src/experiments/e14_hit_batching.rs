//! E14 — HIT batching for crowd joins (CrowdER cluster-based vs
//! pair-based).
//!
//! Emulates CrowdER's batching comparison: number of HITs needed to cover
//! all candidate pairs as the HIT size grows, for pair-based packing vs
//! greedy cluster-based grouping. Both schemes are compared at equal
//! display capacity (a HIT showing `h` records can display `h·(h−1)/2`
//! pairs). Expected shape: cluster-based needs fewer HITs, and the gap
//! widens with HIT size because candidate pairs cluster around duplicate
//! entities.

use crowdkit_obs as obs;
use crowdkit_ops::join::{
    candidate_pairs, cluster_based_hits, hits_cover_all, pair_based_hits,
};
use crowdkit_sim::dataset::EntityDataset;

use crate::table::Table;

const SEED: u64 = 141;

fn counts_for(h: usize) -> (usize, usize, usize) {
    let data = EntityDataset::generate(120, 5, 1, SEED);
    let texts: Vec<String> = data.records.iter().map(|r| r.text.clone()).collect();
    let cands = candidate_pairs(&texts, 0.35);
    let capacity = (h / 2).max(1);
    let pairwise = pair_based_hits(&cands, capacity);
    let cluster = cluster_based_hits(&cands, h);
    debug_assert!(hits_cover_all(&cands, &cluster));
    (cands.len(), pairwise.len(), cluster.len())
}

/// Runs E14.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E14: HITs to cover all candidate pairs (120 entities, ≤5 dups, equal records shown per HIT)",
        &["HIT size h", "candidate pairs", "pair-based HITs", "cluster-based HITs"],
    );
    for h in [2usize, 4, 6, 10] {
        let (pairs, pairwise, cluster) = counts_for(h);
        if pairwise > 0 {
            obs::quality(
                "hit_reduction",
                (pairwise as f64 - cluster as f64) / pairwise as f64,
            );
        }
        t.row(vec![
            h.to_string(),
            pairs.to_string(),
            pairwise.to_string(),
            cluster.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_shape_cluster_batching_wins_at_larger_hits() {
        let (_, pairwise2, cluster2) = counts_for(2);
        // At h = 2 both schemes are one pair per HIT.
        assert_eq!(pairwise2, cluster2);
        let (_, pairwise6, cluster6) = counts_for(6);
        assert!(
            cluster6 <= pairwise6,
            "cluster-based ({cluster6}) must not exceed pair-based ({pairwise6}) at h=6"
        );
        let (_, _, cluster10) = counts_for(10);
        assert!(cluster10 <= cluster6, "bigger HITs need no more groups");
    }

    #[test]
    fn e14_coverage_holds_at_every_size() {
        let data = EntityDataset::generate(40, 4, 1, 7);
        let texts: Vec<String> = data.records.iter().map(|r| r.text.clone()).collect();
        let cands = candidate_pairs(&texts, 0.3);
        for h in [2usize, 3, 5, 8] {
            let hits = cluster_based_hits(&cands, h);
            assert!(hits_cover_all(&cands, &hits), "coverage broken at h={h}");
        }
    }
}
