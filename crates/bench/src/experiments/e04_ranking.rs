// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! E4 — Ranking quality vs comparison budget.
//!
//! Emulates the crowdsourced-sort evaluation figures (Qurk's sort '12 and
//! the pairwise-ranking line): Kendall tau of each rank-aggregation method
//! as the number of purchased comparisons grows, plus the tournament-max
//! success rate. Expected shape: tau rises monotonically with budget for
//! every method; with repeated votes Bradley–Terry/Copeland lead Borda at
//! moderate budgets; tournament max succeeds with ~n matches.

use crowdkit_core::metrics::kendall_tau;
use crowdkit_obs as obs;
use crowdkit_ops::sort::active::{active_comparisons, ActiveConfig};
use crowdkit_ops::sort::rankers::{borda, bradley_terry, copeland, elo};
use crowdkit_ops::sort::tournament::crowd_max;
use crowdkit_ops::sort::{collect_comparisons, sample_pairs};
use crowdkit_sim::dataset::RankingDataset;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::SimulatedCrowd;

use crate::table::{f3, Table};

const N: usize = 40;
const SEEDS: [u64; 3] = [41, 42, 43];
/// E4c compares two sampling strategies at sparse budgets, where
/// seed-to-seed variance is largest; it averages over more seeds.
const ACTIVE_SEEDS: [u64; 6] = [41, 42, 43, 44, 45, 46];

fn taus_for_budget(budget: usize) -> [f64; 4] {
    let mut sums = [0.0f64; 4];
    for &seed in &SEEDS {
        let data = RankingDataset::generate(N, seed);
        let truth: Vec<f64> = data.true_positions().iter().map(|&p| -(p as f64)).collect();
        let pairs = sample_pairs(N, budget, seed);
        let pop = PopulationBuilder::new().reliable(60, 0.8, 0.95).build(seed);
        let crowd = SimulatedCrowd::new(pop, seed);
        let graph = collect_comparisons(&crowd, N, &pairs, 3, |id, a, b| {
            data.comparison_task(id, a, b)
        })
        .expect("collection succeeds");
        let scores = [
            borda(&graph),
            copeland(&graph),
            elo(&graph, 32.0, 3),
            bradley_terry(&graph, 200, 1e-9),
        ];
        for (i, s) in scores.iter().enumerate() {
            sums[i] += kendall_tau(s, &truth);
        }
    }
    sums.map(|s| s / SEEDS.len() as f64)
}

/// Runs E4.
pub fn run() -> Vec<Table> {
    let full = N * (N - 1) / 2;
    let budgets = [50usize, 150, 400, full];
    let mut t = Table::new(
        format!("E4: Kendall tau vs comparison budget ({N} items, 3 votes/pair, mean of {} seeds)", SEEDS.len()),
        &["budget", "borda", "copeland", "elo", "btl"],
    );
    for &b in &budgets {
        let taus = taus_for_budget(b);
        for tau in taus {
            obs::quality("kendall_tau", tau);
        }
        t.row(vec![
            b.to_string(),
            f3(taus[0]),
            f3(taus[1]),
            f3(taus[2]),
            f3(taus[3]),
        ]);
    }

    // Tournament max success rate.
    let mut t2 = Table::new(
        "E4b: tournament max vs full sort (cost to identify the best item)",
        &["method", "questions", "success rate"],
    );
    let mut successes = 0;
    let mut questions = 0;
    let runs = 10;
    for seed in 0..runs {
        let data = RankingDataset::generate(N, seed);
        let pop = PopulationBuilder::new().reliable(60, 0.85, 0.97).build(seed);
        let crowd = SimulatedCrowd::new(pop, seed);
        let out = crowd_max(&crowd, N, 3, |id, a, b| data.comparison_task(id, a, b))
            .expect("tournament succeeds");
        if out.winners[0] == data.true_max() {
            successes += 1;
        }
        questions += out.questions_asked;
    }
    obs::quality("max_success_rate", successes as f64 / runs as f64);
    t2.row(vec![
        "tournament max".into(),
        (questions / runs as usize).to_string(),
        format!("{successes}/{runs}"),
    ]);
    t2.row(vec![
        "full pairwise sort".into(),
        (full * 3).to_string(),
        "—".into(),
    ]);

    // Active (uncertainty-driven) vs uniform pair selection at equal
    // comparison budgets.
    let mut t3 = Table::new(
        format!("E4c: active vs uniform pair selection ({N} items, tau via Bradley–Terry, mean of {} seeds)", ACTIVE_SEEDS.len()),
        &["comparisons", "uniform", "active"],
    );
    for &budget in &[120usize, 240, 480] {
        let (mut uni, mut act) = (0.0, 0.0);
        for &seed in &ACTIVE_SEEDS {
            let data = RankingDataset::generate(N, seed);
            let truth: Vec<f64> = data.true_positions().iter().map(|&p| -(p as f64)).collect();
            // Uniform: distinct random pairs, 2 votes each.
            let pop = PopulationBuilder::new().reliable(80, 0.8, 0.95).build(seed);
            let crowd = SimulatedCrowd::new(pop, seed);
            let pairs = sample_pairs(N, budget / 2, seed);
            let g = collect_comparisons(&crowd, N, &pairs, 2, |id, a, b| {
                data.comparison_task(id, a, b)
            })
            .expect("collection succeeds");
            uni += kendall_tau(&bradley_terry(&g, 200, 1e-9), &truth);
            // Active: gap-driven selections, 2 votes each.
            let pop = PopulationBuilder::new().reliable(80, 0.8, 0.95).build(seed);
            let crowd = SimulatedCrowd::new(pop, seed);
            let g = active_comparisons(
                &crowd,
                N,
                budget / 2,
                ActiveConfig { votes: 2, round_size: 20 },
                |id, a, b| data.comparison_task(id, a, b),
            )
            .expect("collection succeeds");
            act += kendall_tau(&bradley_terry(&g, 200, 1e-9), &truth);
        }
        let n = ACTIVE_SEEDS.len() as f64;
        t3.row(vec![budget.to_string(), f3(uni / n), f3(act / n)]);
    }
    vec![t, t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_shape_active_sampling_competitive_with_uniform() {
        let tables = run();
        let t3 = &tables[2];
        for row in &t3.rows {
            let uniform: f64 = row[1].parse().unwrap();
            let active: f64 = row[2].parse().unwrap();
            assert!(
                active >= uniform - 0.05,
                "active ({active}) should not trail uniform ({uniform}) at budget {}",
                row[0]
            );
        }
    }

    #[test]
    fn e4_shape_tau_monotone_in_budget() {
        let low = taus_for_budget(60);
        let high = taus_for_budget(N * (N - 1) / 2);
        for i in 0..4 {
            assert!(
                high[i] > low[i],
                "ranker {i}: tau at full budget ({:.3}) must beat tau at 60 ({:.3})",
                high[i],
                low[i]
            );
        }
        assert!(high.iter().all(|&t| t > 0.7), "full budget taus {high:?}");
    }
}
