//! # crowdkit-bench
//!
//! The experiment harness: one module per experiment in DESIGN.md's
//! per-experiment index (E1–E12), each regenerating a table or figure
//! series from the crowdsourced-data-management literature on top of the
//! crowdkit stack.
//!
//! Run them through the `experiments` binary:
//!
//! ```sh
//! cargo run --release -p crowdkit-bench --bin experiments -- all
//! cargo run --release -p crowdkit-bench --bin experiments -- e3
//! ```
//!
//! Every experiment prints an aligned table to stdout *and* returns its
//! rows as structured data so the criterion benches and EXPERIMENTS.md
//! tooling reuse the same code path.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;

pub use experiments::{run_all, run_all_with_report, run_by_name, run_with_report, SuiteRun, EXPERIMENTS};
