// crowdkit-lint: allow-file(PANIC001) — bench harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! `bench_scale` — the million-scale truth-inference macrobench.
//!
//! Synthesizes a large sparse labeling workload directly into a
//! [`ResponseMatrix`] (no `SimulatedCrowd` machinery — at 10M observations
//! the generator itself must be a few hundred ms) and times full
//! `infer` runs of the EM-family algorithms, each in two variants:
//!
//! * `ds` / `zc` / `glad` — freezing enabled ([`FreezeConfig::sparse`]),
//!   the sparse incremental E-step this bench exists to measure;
//! * `ds_dense` / `zc_dense` / `glad_dense` — freezing disabled, the
//!   pre-freezing dense kernels, kept as the in-run baseline so every
//!   history line carries its own speedup evidence;
//! * `kos` — message passing has no posterior-freezing analogue, so it
//!   runs once, as the non-EM reference point.
//!
//! The workload is a pure function of `--seed` (splitmix64 throughout):
//! binary labels so KOS participates, external task/worker ids
//! deliberately sparse (large odd-stride multiples) so the run exercises
//! the `IdInterner` dense-mapping path rather than identity ids.
//!
//! Results go to `BENCH_scale.json` and one `bench:"scale"` line is
//! appended to `BENCH_HISTORY.jsonl` with per-algorithm `ns_per_iter` and
//! `peak_rss` (the process `VmHWM` high-water mark after that algorithm
//! ran — monotone across the run by construction). `crowdtrace regress`
//! baselines scale lines only against other scale lines.
//!
//! ```sh
//! cargo run --release -p crowdkit-bench --bin bench_scale -- smoke
//! cargo run --release -p crowdkit-bench --bin bench_scale -- full
//! cargo run --release -p crowdkit-bench --bin bench_scale -- smoke \
//!     --tasks 20000 --workers 2000 --responses 200000 --seed 7
//! ```

use crowdkit_core::ids::{TaskId, WorkerId};
use crowdkit_core::par::default_threads;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::TruthInferencer;
use crowdkit_trace::history::{append_history, git_short_rev, AlgoTiming, BenchEntry};
use crowdkit_truth::em::EmConfig;
use crowdkit_truth::glad::GladConfig;
use crowdkit_truth::{DawidSkene, FreezeConfig, Glad, Kos, OneCoinEm};
use std::time::Instant;

/// Freeze tolerance for the sparse variants: loose enough that settled
/// tasks leave the worklist (and settled GLAD abilities pin) within a
/// few sweeps. 1e-3 is the documented speed/fidelity knob setting —
/// label preservation at this tolerance is pinned by the truth crate's
/// freezing unit tests; tighten via `--eps` to trade speed back for
/// posterior fidelity.
const FREEZE_EPS: f64 = 1e-3;

/// One timing sample per algorithm on the full workload, three on smoke.
struct Workload {
    tasks: u64,
    workers: u64,
    responses: u64,
    seed: u64,
    warmup: usize,
    samples: usize,
}

const SMOKE: Workload = Workload {
    tasks: 10_000,
    workers: 1_000,
    responses: 100_000,
    seed: 0xC0FFEE,
    warmup: 1,
    samples: 3,
};

const FULL: Workload = Workload {
    tasks: 1_000_000,
    workers: 100_000,
    responses: 10_000_000,
    seed: 0xC0FFEE,
    warmup: 0,
    samples: 1,
};

/// The standard splitmix64 stepper: the whole workload derives from it.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One stateless draw: hash of `(seed, stream, index)`.
fn draw(seed: u64, stream: u64, index: u64) -> u64 {
    let mut s = seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F) ^ index;
    splitmix64(&mut s)
}

/// Uniform f64 in [0, 1) from the top 53 bits of a draw.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Builds the seeded workload. Tasks are dealt round-robin so every task
/// gets `responses / tasks` votes; workers are drawn uniformly. External
/// ids stride by large odd constants so the dense interner does real work.
fn workload(w: &Workload) -> ResponseMatrix {
    let mut m = ResponseMatrix::new(2);
    for i in 0..w.responses {
        let t = i % w.tasks;
        let wk = draw(w.seed, 1, i) % w.workers;
        let truth = (draw(w.seed, 2, t) & 1) as u32;
        // Worker accuracy in [0.55, 0.95): everyone better than chance,
        // nobody perfect, so EM has real inference to do.
        let acc = 0.55 + 0.4 * unit(draw(w.seed, 3, wk));
        let correct = unit(draw(w.seed, 4, i)) < acc;
        let label = if correct { truth } else { 1 - truth };
        m.push(
            TaskId::new(t.wrapping_mul(2_654_435_761).wrapping_add(17)),
            WorkerId::new(wk.wrapping_mul(40_503).wrapping_add(101)),
            label,
        )
        .expect("binary label in range");
    }
    m
}

/// Median ns per full `infer` call, plus the post-run RSS high-water mark.
fn time_algo(algo: &dyn TruthInferencer, m: &ResponseMatrix, w: &Workload) -> AlgoTiming {
    for _ in 0..w.warmup {
        std::hint::black_box(algo.infer(std::hint::black_box(m)).unwrap());
    }
    let mut samples: Vec<u64> = (0..w.samples)
        .map(|_| {
            let start = Instant::now(); // crowdkit-lint: allow(DET002) — benchmark harness: measuring wall time is the point
            std::hint::black_box(algo.infer(std::hint::black_box(m)).unwrap());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    AlgoTiming {
        ns_per_iter: samples[samples.len() / 2],
        peak_rss: peak_rss_bytes(),
    }
}

/// Extracts the `VmHWM` high-water mark (in bytes) from the text of
/// `/proc/self/status`. Returns `None` for any shape the platform might
/// hand us short of the Linux format — missing line, missing value,
/// non-numeric kB count — so the bench degrades to "not measured" instead
/// of erroring on non-Linux or restricted environments.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Process peak RSS in bytes from `/proc/self/status` `VmHWM`, when the
/// platform provides it.
fn peak_rss_bytes() -> Option<u64> {
    parse_vm_hwm(&std::fs::read_to_string("/proc/self/status").ok()?)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("flag {name} needs a value"))
            .as_str()
    })
}

fn parse_u64_flag(args: &[String], name: &str, default: u64) -> u64 {
    flag_value(args, name)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("flag {name} wants an integer")))
        .unwrap_or(default)
}

fn parse_f64_flag(args: &[String], name: &str, default: f64) -> f64 {
    flag_value(args, name)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("flag {name} wants a number")))
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.first() {
        Some(a) if !a.starts_with("--") => a.as_str(),
        _ => "smoke",
    };
    let base = match mode {
        "smoke" => SMOKE,
        "full" => FULL,
        other => panic!("unknown mode `{other}` (expected `smoke` or `full`)"),
    };
    let w = Workload {
        tasks: parse_u64_flag(&args, "--tasks", base.tasks),
        workers: parse_u64_flag(&args, "--workers", base.workers),
        responses: parse_u64_flag(&args, "--responses", base.responses),
        seed: parse_u64_flag(&args, "--seed", base.seed),
        ..base
    };

    let gen_start = Instant::now(); // crowdkit-lint: allow(DET002) — benchmark harness: measuring wall time is the point
    let m = workload(&w);
    println!(
        "workload[{mode}]: {} tasks, {} workers, {} observations (seed {:#x}) in {:.1} ms",
        m.num_tasks(),
        m.num_workers(),
        m.num_observations(),
        w.seed,
        gen_start.elapsed().as_secs_f64() * 1e3
    );

    let eps = parse_f64_flag(&args, "--eps", FREEZE_EPS);
    let sparse = FreezeConfig::sparse(eps);
    let em_sparse = EmConfig::default().with_freeze(sparse);
    let glad_sparse = GladConfig::default().with_freeze(sparse);
    let algos: Vec<(&str, Box<dyn TruthInferencer>)> = vec![
        ("ds_dense", Box::new(DawidSkene::default())),
        ("ds", Box::new(DawidSkene::with_config(em_sparse))),
        ("zc_dense", Box::new(OneCoinEm::default())),
        ("zc", Box::new(OneCoinEm::with_config(em_sparse))),
        ("glad_dense", Box::new(Glad::default())),
        ("glad", Box::new(Glad::with_config(glad_sparse))),
        ("kos", Box::new(Kos::default())),
    ];
    let timings: Vec<(&str, AlgoTiming)> = algos
        .iter()
        .map(|(name, algo)| {
            let t = time_algo(algo.as_ref(), &m, &w);
            println!(
                "{name:<10} {:>14} ns/iter   peak_rss {:>10}",
                t.ns_per_iter,
                t.peak_rss.map_or("n/a".to_string(), |b| format!("{b}")),
            );
            (*name, t)
        })
        .collect();

    let ns_of = |name: &str| {
        timings
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, t)| t.ns_per_iter)
            .expect("algorithm was timed")
    };
    for algo in ["ds", "zc", "glad"] {
        let dense = ns_of(&format!("{algo}_dense"));
        let sparse_ns = ns_of(algo);
        println!(
            "{algo:<5} sparse speedup: {:.2}x (dense {dense} ns → sparse {sparse_ns} ns)",
            dense as f64 / sparse_ns.max(1) as f64
        );
    }

    let out_path = "BENCH_scale.json";
    let history_path = "BENCH_HISTORY.jsonl";
    // Hand-rolled JSON, as in bench_truth: flat structure with a fixed key
    // set, so a serde dependency would be pure weight.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"mode\": \"{mode}\", \"tasks\": {}, \"workers\": {}, \"observations\": {}, \"seed\": {}}},\n",
        m.num_tasks(),
        m.num_workers(),
        m.num_observations(),
        w.seed
    ));
    json.push_str("  \"bench\": \"scale\",\n");
    json.push_str(&format!("  \"threads\": {},\n", default_threads()));
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", git_short_rev()));
    json.push_str("  \"algorithms\": {\n");
    for (i, (name, t)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        // An explicit null keeps the snapshot schema fixed when VmHWM is
        // unavailable; readers treat it as "not measured". History lines
        // (below) omit the field instead — their compact form is the bare
        // ns integer.
        let rss = t
            .peak_rss
            .map_or("null".to_string(), |rss| rss.to_string());
        json.push_str(&format!(
            "    \"{name}\": {{\"ns_per_iter\": {}, \"peak_rss\": {rss}}}{comma}\n",
            t.ns_per_iter
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(out_path, json).expect("write bench results");
    println!("wrote {out_path}");

    let entry = BenchEntry {
        git_rev: git_short_rev(),
        threads: default_threads() as u64,
        bench: "scale".to_string(),
        algorithms: timings
            .iter()
            .map(|(name, t)| ((*name).to_string(), *t))
            .collect(),
    };
    append_history(history_path, &entry).expect("append bench history");
    println!("appended {} to {history_path}", entry.git_rev);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_hwm_parses_the_linux_status_format() {
        let status = "Name:\tbench_scale\nVmPeak:\t  201000 kB\nVmHWM:\t  102400 kB\nThreads:\t8\n";
        assert_eq!(parse_vm_hwm(status), Some(102400 * 1024));
    }

    #[test]
    fn vm_hwm_degrades_to_none_off_linux() {
        // No VmHWM line (macOS, restricted /proc, empty read).
        assert_eq!(parse_vm_hwm(""), None);
        assert_eq!(parse_vm_hwm("Name:\tbench\nThreads:\t8\n"), None);
        // Malformed lines: missing value, non-numeric value.
        assert_eq!(parse_vm_hwm("VmHWM:\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tlots kB\n"), None);
    }
}
