// crowdkit-lint: allow-file(PANIC001) — experiment harness: inputs are self-generated and fail-fast on violated invariants is the correct idiom
//! Machine-readable truth-inference timings.
//!
//! Times every truth-inference algorithm on the standard E1 workload
//! (1000 binary tasks, 5-vote redundancy) and writes per-algorithm
//! `ns_per_iter` to `BENCH_truth.json` in the current directory, so CI
//! can diff runs without scraping criterion's human-oriented output.
//!
//! Each run also appends one line to `BENCH_HISTORY.jsonl` (git rev,
//! thread count, per-algorithm ns/iter) so `crowdtrace regress` can
//! compare the current numbers against a rolling baseline.
//!
//! ```sh
//! cargo run --release -p crowdkit-bench --bin bench_truth
//! cargo run --release -p crowdkit-bench --bin bench_truth -- out.json history.jsonl
//! ```

use crowdkit_core::par::default_threads;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::TruthInferencer;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::population::mixes;
use crowdkit_sim::SimulatedCrowd;
use crowdkit_trace::history::{append_history, git_short_rev, AlgoTiming, BenchEntry};
use crowdkit_truth::{pipeline::label_tasks, DawidSkene, Glad, Kos, MajorityVote, OneCoinEm};
use std::time::Instant;

const N_TASKS: usize = 1000;
const REDUNDANCY: usize = 5;
const WARMUP_ITERS: usize = 2;
const TIMED_ITERS: usize = 10;

fn workload() -> ResponseMatrix {
    let data = LabelingDataset::binary(N_TASKS, 7);
    let crowd = SimulatedCrowd::new(mixes::mixed(60, 7), 7);
    label_tasks(&crowd, &data.tasks, REDUNDANCY, &MajorityVote)
        .expect("collection succeeds")
        .matrix
}

/// Median ns per call of `algo.infer` over [`TIMED_ITERS`] samples.
fn time_algo(algo: &dyn TruthInferencer, m: &ResponseMatrix) -> u64 {
    for _ in 0..WARMUP_ITERS {
        std::hint::black_box(algo.infer(std::hint::black_box(m)).unwrap());
    }
    let mut samples: Vec<u64> = (0..TIMED_ITERS)
        .map(|_| {
            let start = Instant::now(); // crowdkit-lint: allow(DET002) — benchmark harness: measuring wall time is the point
            std::hint::black_box(algo.infer(std::hint::black_box(m)).unwrap());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_truth.json".to_string());
    let history_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_HISTORY.jsonl".to_string());
    let m = workload();
    let algos: Vec<(&str, Box<dyn TruthInferencer>)> = vec![
        ("mv", Box::new(MajorityVote)),
        ("zc", Box::new(OneCoinEm::default())),
        ("ds", Box::new(DawidSkene::default())),
        ("glad", Box::new(Glad::default())),
        ("kos", Box::new(Kos::default())),
    ];

    // Hand-rolled JSON: flat structure, no string escaping needed for the
    // fixed key set, so a serde dependency would be pure weight.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"n_tasks\": {N_TASKS}, \"redundancy\": {REDUNDANCY}, \"observations\": {}}},\n",
        m.num_observations()
    ));
    json.push_str("  \"bench\": \"truth\",\n");
    json.push_str(&format!("  \"threads\": {},\n", default_threads()));
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", git_short_rev()));
    json.push_str("  \"algorithms\": {\n");
    let timings: Vec<(&str, u64)> = algos
        .iter()
        .map(|(name, algo)| (*name, time_algo(algo.as_ref(), &m)))
        .collect();
    for (i, (name, ns)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {{\"ns_per_iter\": {ns}}}{comma}\n"));
        println!("{name:<5} {:>12} ns/iter", ns);
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, json).expect("write bench results");
    println!("wrote {out_path}");

    let entry = BenchEntry {
        git_rev: git_short_rev(),
        threads: default_threads() as u64,
        bench: "truth".to_string(),
        algorithms: timings
            .iter()
            .map(|(name, ns)| ((*name).to_string(), AlgoTiming::ns(*ns)))
            .collect(),
    };
    append_history(&history_path, &entry).expect("append bench history");
    println!("appended {} to {history_path}", entry.git_rev);
}
