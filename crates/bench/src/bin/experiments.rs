//! The experiment runner.
//!
//! ```sh
//! experiments all          # every experiment, in order
//! experiments e1 e3 e10    # selected experiments
//! experiments list         # id + description
//! ```

use std::process::ExitCode;

use crowdkit_bench::{run_by_name, EXPERIMENTS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: experiments <all | list | e1 [e2 …]>");
        return ExitCode::from(2);
    }
    if args[0] == "list" {
        for e in EXPERIMENTS {
            println!("{:<4} {}", e.id, e.description);
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if args[0] == "all" {
        EXPERIMENTS.iter().map(|e| e.id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match run_by_name(id) {
            Some(output) => print!("{output}"),
            None => {
                eprintln!("unknown experiment '{id}' (try `experiments list`)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
