//! The experiment runner.
//!
//! ```sh
//! experiments all                           # every experiment, in order
//! experiments all --report                  # also writes RUNREPORT.json
//! experiments all --report --log run.jsonl  # plus the merged event log
//! experiments e10 --report                  # subset, with telemetry
//! experiments e1 e3 e10                     # selected experiments
//! experiments list                          # id + description
//! ```
//!
//! `--report` runs the selection instrumented: every experiment executes
//! under its own in-memory recorder and the distilled cost/latency/quality
//! triangle lands in `RUNREPORT.json`. `--log <path>` additionally captures
//! the full deterministic event stream (wall-clock data omitted) as JSONL.

use std::process::ExitCode;

use crowdkit_bench::{run_by_name, run_with_report, EXPERIMENTS};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: experiments <all | e1 [e2 …]> [--report] [--log <path>] | list");
        return ExitCode::from(2);
    }
    if args[0] == "list" {
        for e in EXPERIMENTS {
            println!("{:<4} {}", e.id, e.description);
        }
        return ExitCode::SUCCESS;
    }

    let mut report = false;
    let mut log_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--report" => {
                report = true;
                args.remove(i);
            }
            "--log" => {
                if i + 1 >= args.len() {
                    eprintln!("--log requires a path");
                    return ExitCode::from(2);
                }
                log_path = Some(args.remove(i + 1));
                args.remove(i);
            }
            _ => i += 1,
        }
    }
    if args.is_empty() {
        eprintln!("no experiments selected (try `experiments list`)");
        return ExitCode::from(2);
    }
    let ids: Vec<&str> = if args[0] == "all" {
        EXPERIMENTS.iter().map(|e| e.id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let log_requested = log_path.is_some();
    if report || log_requested {
        // crowdkit-lint: allow(DET002) — experiment driver: per-run wall timings are reported on purpose
        let Some(suite) = run_with_report(&ids, log_requested) else {
            eprintln!("unknown experiment id in {ids:?} (try `experiments list`)");
            return ExitCode::FAILURE;
        };
        print!("{}", suite.rendered);
        if let Err(e) = std::fs::write("RUNREPORT.json", suite.report.to_json()) {
            eprintln!("failed to write RUNREPORT.json: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "RUNREPORT.json: {} experiments, {} crowd questions, {:.2} spent",
            suite.report.experiments.len(),
            suite.report.total_questions(),
            suite.report.total_spend(),
        );
        if let Some(path) = log_path {
            if let Err(e) = std::fs::write(&path, &suite.events) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            let lines = suite.events.iter().filter(|&&b| b == b'\n').count();
            eprintln!("{path}: {} events (+ stream header)", lines.saturating_sub(1));
        }
        return ExitCode::SUCCESS;
    }

    for id in ids {
        match run_by_name(id) {
            Some(output) => print!("{output}"),
            None => {
                eprintln!("unknown experiment '{id}' (try `experiments list`)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
