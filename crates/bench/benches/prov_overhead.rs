//! Provenance overhead gate: lineage capture on vs off.
//!
//! The decision-provenance layer mirrors the obs/metrics cost contract:
//! with no provenance scope active every instrumentation site reduces to
//! one relaxed atomic load and a branch, and with a scope active the
//! lineage bookkeeping is `O(tasks × labels)` per EM iteration — a couple
//! of compares next to the transcendentals the E-step just spent. `main`
//! enforces both ends before the benches run: inference under an active
//! provenance scope (summary-only MemoryRecorder, the suite default) must
//! stay within 5 % of inference with obs alone.
//!
//! Samples are interleaved (off, on, off, …) so clock drift and thermal
//! effects hit both arms equally, and the gate compares minima, the
//! statistic least sensitive to scheduler noise.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::TruthInferencer;
use crowdkit_obs as obs;
use crowdkit_provenance as prov;
use crowdkit_sim::population::mixes;
use crowdkit_sim::{dataset::LabelingDataset, SimulatedCrowd};
use crowdkit_truth::{pipeline::label_tasks, DawidSkene, MajorityVote};

const SEED: u64 = 7;
const GATE_SAMPLES: usize = 60;
const MAX_OVERHEAD: f64 = 0.05;

fn inference_matrix() -> ResponseMatrix {
    let data = LabelingDataset::binary(500, SEED);
    let crowd = SimulatedCrowd::new(mixes::mixed(60, SEED), SEED);
    label_tasks(&crowd, &data.tasks, 5, &MajorityVote)
        .expect("collection succeeds")
        .matrix
}

/// Interleaved min-of-N comparison: runs `f` alternately under an obs
/// recorder alone and under the same recorder plus a provenance scope,
/// returning `(off_min_ns, on_min_ns)`.
fn gate_pair(mut f: impl FnMut()) -> (u64, u64) {
    let scope = Arc::new(prov::Provenance::default());
    let rec: Arc<dyn obs::Recorder> = Arc::new(obs::MemoryRecorder::new());
    // Warm both arms.
    obs::with_recorder(rec.clone(), &mut f);
    prov::with_provenance(scope.clone(), || obs::with_recorder(rec.clone(), &mut f));
    let mut off_min = u64::MAX;
    let mut on_min = u64::MAX;
    for _ in 0..GATE_SAMPLES {
        let t0 = Instant::now(); // crowdkit-lint: allow(DET002) — benchmark harness: measuring wall time is the point
        obs::with_recorder(rec.clone(), &mut f);
        off_min = off_min.min(t0.elapsed().as_nanos() as u64);
        let t0 = Instant::now(); // crowdkit-lint: allow(DET002) — benchmark harness: measuring wall time is the point
        prov::with_provenance(scope.clone(), || obs::with_recorder(rec.clone(), &mut f));
        on_min = on_min.min(t0.elapsed().as_nanos() as u64);
    }
    (off_min, on_min)
}

fn check_overhead(name: &str, f: impl FnMut()) {
    let (off_min, on_min) = gate_pair(f);
    let overhead = on_min as f64 / off_min as f64 - 1.0;
    println!(
        "{name}: provenance off {off_min} ns, on {on_min} ns ({:+.2}%)",
        overhead * 100.0
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "{name}: provenance overhead {:.2}% exceeds the {:.0}% budget",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
}

fn bench_dawid_skene(c: &mut Criterion) {
    let m = inference_matrix();
    let ds = DawidSkene::default();
    let mut group = c.benchmark_group("prov_dawid_skene_500x5");
    let rec: Arc<dyn obs::Recorder> = Arc::new(obs::MemoryRecorder::new());
    group.bench_function("scope_off", |b| {
        b.iter(|| {
            obs::with_recorder(rec.clone(), || {
                ds.infer(std::hint::black_box(&m)).unwrap()
            })
        });
    });
    group.bench_function("scope_on", |b| {
        let scope = Arc::new(prov::Provenance::default());
        b.iter(|| {
            prov::with_provenance(scope.clone(), || {
                obs::with_recorder(rec.clone(), || {
                    ds.infer(std::hint::black_box(&m)).unwrap()
                })
            })
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dawid_skene);

fn main() {
    let m = inference_matrix();
    let ds = DawidSkene::default();
    check_overhead("dawid_skene", || {
        std::hint::black_box(ds.infer(&m).unwrap());
    });
    benches();
}
