//! Sequential vs batched crowd execution on an E1-style workload.
//!
//! The workload is redundancy-k labeling (200 binary tasks, 3 votes each)
//! against a simulated crowd with the default human lognormal latency
//! model. The sequential arm asks one request at a time on a single-thread
//! platform, so the simulated clock advances by the *sum* of assignment
//! latencies; the batched arm submits the whole workload as one
//! `ask_batch`, where independent assignments overlap and the clock
//! advances by the batch *makespan*. The bench reports host-side
//! throughput of both paths, and `main` first checks the headline claim:
//! batching must cut simulated crowd wall-clock by at least 2×.

use criterion::{criterion_group, Criterion};
use crowdkit_core::ask::AskRequest;
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::latency::LatencyModel;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::{PlatformBuilder, SimulatedCrowd};

const N_TASKS: usize = 200;
const VOTES: usize = 3;
const SEED: u64 = 7;

fn workload() -> Vec<Task> {
    LabelingDataset::binary(N_TASKS, SEED).tasks
}

fn crowd(threads: usize) -> SimulatedCrowd {
    let pop = PopulationBuilder::new().reliable(80, 0.8, 0.95).build(SEED);
    PlatformBuilder::new(pop)
        .latency(LatencyModel::human_default())
        .seed(SEED)
        .threads(threads)
        .build()
}

/// Simulated crowd wall-clock after buying the whole workload one request
/// at a time (latencies accumulate).
fn sequential_sim_clock(tasks: &[Task]) -> f64 {
    let crowd = crowd(1);
    for task in tasks {
        let out = crowd
            .ask(&AskRequest::new(task).with_redundancy(VOTES))
            .expect("unlimited budget");
        assert_eq!(out.delivered(), VOTES);
    }
    crowd.now()
}

/// Simulated crowd wall-clock after buying the whole workload as a single
/// batch (latencies overlap; the clock advances by the makespan).
fn batched_sim_clock(tasks: &[Task], threads: usize) -> f64 {
    let crowd = crowd(threads);
    let reqs: Vec<AskRequest<'_>> = tasks
        .iter()
        .map(|t| AskRequest::new(t).with_redundancy(VOTES))
        .collect();
    let outs = crowd.ask_batch(&reqs).expect("unlimited budget");
    assert!(outs.iter().all(|o| o.delivered() == VOTES));
    crowd.now()
}

fn check_simulated_speedup() {
    let tasks = workload();
    let seq = sequential_sim_clock(&tasks);
    let bat = batched_sim_clock(&tasks, 4);
    let speedup = seq / bat;
    println!(
        "simulated wall-clock: sequential {seq:.0} s, batched {bat:.0} s ({speedup:.0}x)"
    );
    assert!(
        speedup >= 2.0,
        "batched execution must cut simulated wall-clock at least 2x (got {speedup:.2}x)"
    );
}

fn bench_sequential(c: &mut Criterion) {
    let tasks = workload();
    c.bench_function("exec_sequential_200x3", |b| {
        b.iter(|| sequential_sim_clock(std::hint::black_box(&tasks)));
    });
}

fn bench_batched(c: &mut Criterion) {
    let tasks = workload();
    let mut group = c.benchmark_group("exec_batched_200x3");
    for threads in [1usize, 4, 8] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| batched_sim_clock(std::hint::black_box(&tasks), threads));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential, bench_batched);

fn main() {
    check_simulated_speedup();
    benches();
}
