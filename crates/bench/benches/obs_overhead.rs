//! Telemetry overhead gate: instrumented vs null-recorder hot paths.
//!
//! The observability layer's contract is "near zero cost": with the
//! default [`crowdkit_obs::NullRecorder`] every instrumentation site
//! reduces to one thread-local read and a branch, and even with the
//! aggregating [`crowdkit_obs::MemoryRecorder`] active the events are
//! per-wave/per-iteration summaries, never per-observation work inside the
//! kernels. `main` enforces that contract before the benches run: the
//! instrumented arm of each workload must stay within 5 % of the
//! uninstrumented arm. The two workloads cover both instrumented layers
//! that matter for throughput — batched platform execution (`ask_batch`)
//! and EM truth inference (Dawid–Skene).
//!
//! Samples are interleaved (null, instrumented, null, …) so clock drift
//! and thermal effects hit both arms equally, and the gate compares
//! minima, the statistic least sensitive to scheduler noise.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use crowdkit_core::ask::AskRequest;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::task::Task;
use crowdkit_core::traits::{CrowdOracle, TruthInferencer};
use crowdkit_obs as obs;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::latency::LatencyModel;
use crowdkit_sim::population::{mixes, PopulationBuilder};
use crowdkit_sim::{PlatformBuilder, SimulatedCrowd};
use crowdkit_truth::{pipeline::label_tasks, DawidSkene, MajorityVote};

const N_TASKS: usize = 200;
const VOTES: usize = 3;
const SEED: u64 = 7;
const GATE_SAMPLES: usize = 60;
const MAX_OVERHEAD: f64 = 0.05;

fn workload() -> Vec<Task> {
    LabelingDataset::binary(N_TASKS, SEED).tasks
}

fn crowd() -> SimulatedCrowd {
    let pop = PopulationBuilder::new().reliable(80, 0.8, 0.95).build(SEED);
    PlatformBuilder::new(pop)
        .latency(LatencyModel::human_default())
        .seed(SEED)
        .threads(4)
        .build()
}

fn run_batch(tasks: &[Task]) {
    let crowd = crowd();
    let reqs: Vec<AskRequest<'_>> = tasks
        .iter()
        .map(|t| AskRequest::new(t).with_redundancy(VOTES))
        .collect();
    let outs = crowd.ask_batch(&reqs).expect("unlimited budget");
    assert!(outs.iter().all(|o| o.delivered() == VOTES));
}

fn inference_matrix() -> ResponseMatrix {
    let data = LabelingDataset::binary(500, SEED);
    let crowd = SimulatedCrowd::new(mixes::mixed(60, SEED), SEED);
    label_tasks(&crowd, &data.tasks, 5, &MajorityVote)
        .expect("collection succeeds")
        .matrix
}

/// Interleaved min-of-N comparison: runs `f` alternately without a
/// recorder and under a fresh [`obs::MemoryRecorder`], returning
/// `(null_min_ns, instrumented_min_ns)`.
fn gate_pair(mut f: impl FnMut()) -> (u64, u64) {
    // Warm both arms.
    f();
    obs::with_recorder(Arc::new(obs::MemoryRecorder::new()), &mut f);
    let mut null_min = u64::MAX;
    let mut instr_min = u64::MAX;
    for _ in 0..GATE_SAMPLES {
        let t0 = Instant::now(); // crowdkit-lint: allow(DET002) — benchmark harness: measuring wall time is the point
        f();
        null_min = null_min.min(t0.elapsed().as_nanos() as u64);
        let rec: Arc<dyn obs::Recorder> = Arc::new(obs::MemoryRecorder::new());
        let t0 = Instant::now(); // crowdkit-lint: allow(DET002) — benchmark harness: measuring wall time is the point
        obs::with_recorder(rec, &mut f);
        instr_min = instr_min.min(t0.elapsed().as_nanos() as u64);
    }
    (null_min, instr_min)
}

fn check_overhead(name: &str, f: impl FnMut()) {
    let (null_min, instr_min) = gate_pair(f);
    let overhead = instr_min as f64 / null_min as f64 - 1.0;
    println!(
        "{name}: null {null_min} ns, instrumented {instr_min} ns ({:+.2}%)",
        overhead * 100.0
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "{name}: instrumentation overhead {:.2}% exceeds the {:.0}% budget",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
}

fn bench_ask_batch(c: &mut Criterion) {
    let tasks = workload();
    let mut group = c.benchmark_group("obs_ask_batch_200x3");
    group.bench_function("null", |b| {
        b.iter(|| run_batch(std::hint::black_box(&tasks)));
    });
    group.bench_function("memory_recorder", |b| {
        let rec: Arc<dyn obs::Recorder> = Arc::new(obs::MemoryRecorder::new());
        b.iter(|| obs::with_recorder(rec.clone(), || run_batch(std::hint::black_box(&tasks))));
    });
    group.finish();
}

fn bench_dawid_skene(c: &mut Criterion) {
    let m = inference_matrix();
    let ds = DawidSkene::default();
    let mut group = c.benchmark_group("obs_dawid_skene_500x5");
    group.bench_function("null", |b| {
        b.iter(|| ds.infer(std::hint::black_box(&m)).unwrap());
    });
    group.bench_function("memory_recorder", |b| {
        let rec: Arc<dyn obs::Recorder> = Arc::new(obs::MemoryRecorder::new());
        b.iter(|| {
            obs::with_recorder(rec.clone(), || ds.infer(std::hint::black_box(&m)).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ask_batch, bench_dawid_skene);

fn main() {
    let tasks = workload();
    check_overhead("ask_batch", || run_batch(&tasks));
    let m = inference_matrix();
    let ds = DawidSkene::default();
    check_overhead("dawid_skene", || {
        std::hint::black_box(ds.infer(&m).unwrap());
    });
    benches();
}
