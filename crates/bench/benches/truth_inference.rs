//! Criterion micro-benchmarks for the truth-inference kernels behind
//! experiments E1/E2: algorithm runtime over a fixed response matrix as
//! task count and redundancy scale.
//!
//! `main` first runs a regression gate: the flat-CSR Dawid–Skene kernel
//! must beat a frozen copy of the original pointer-chasing sequential
//! implementation (see [`seed_ds`]) by at least 2× on the E2 workload
//! (1000 tasks, 9-vote redundancy) before any benchmark is reported.

use criterion::{criterion_group, BenchmarkId, Criterion};
use crowdkit_core::par::default_threads;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::TruthInferencer;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::population::mixes;
use crowdkit_sim::SimulatedCrowd;
use crowdkit_truth::em::EmConfig;
use crowdkit_truth::{pipeline::label_tasks, DawidSkene, Glad, Kos, MajorityVote, OneCoinEm};
use std::time::Instant;

/// Frozen copy of the seed Dawid–Skene kernel: nested `Vec<Vec<f64>>`
/// state, per-iteration allocations, and `ln` calls in the E-step inner
/// loop. Kept verbatim (modulo visibility) as the baseline the flat
/// kernel is gated against — do not "optimize" this module.
mod seed_ds {
    use crowdkit_core::response::ResponseMatrix;

    fn normalize(row: &mut [f64]) {
        let sum: f64 = row.iter().sum();
        if sum > 0.0 {
            for x in row.iter_mut() {
                *x /= sum;
            }
        } else {
            let u = 1.0 / row.len() as f64;
            row.fill(u);
        }
    }

    fn log_normalize(row: &mut [f64]) {
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for x in row.iter_mut() {
            *x = (*x - max).exp();
        }
        normalize(row);
    }

    /// Seed-layout Dawid–Skene EM; returns the argmax labels.
    pub fn infer(matrix: &ResponseMatrix, max_iters: usize, tol: f64, smoothing: f64) -> Vec<u32> {
        let k = matrix.num_labels();
        let n_workers = matrix.num_workers();

        let mut posteriors = vec![vec![0.0f64; k]; matrix.num_tasks()];
        for o in matrix.observations() {
            posteriors[o.task][o.label as usize] += 1.0;
        }
        for row in &mut posteriors {
            normalize(row);
        }
        let mut priors = vec![1.0 / k as f64; k];
        let mut confusion = vec![vec![vec![0.0f64; k]; k]; n_workers];

        let mut iterations = 0;
        while iterations < max_iters {
            iterations += 1;

            priors.fill(0.0);
            for row in &posteriors {
                for (p, &x) in priors.iter_mut().zip(row) {
                    *p += x;
                }
            }
            normalize(&mut priors);
            for cm in &mut confusion {
                for row in cm.iter_mut() {
                    row.fill(smoothing);
                }
            }
            for o in matrix.observations() {
                let post = &posteriors[o.task];
                let cm = &mut confusion[o.worker];
                for (t, &p) in post.iter().enumerate() {
                    cm[t][o.label as usize] += p;
                }
            }
            for cm in &mut confusion {
                for row in cm.iter_mut() {
                    normalize(row);
                }
            }

            let mut next = vec![vec![0.0f64; k]; matrix.num_tasks()];
            for (t, row) in next.iter_mut().enumerate() {
                for (l, x) in row.iter_mut().enumerate() {
                    *x = priors[l].max(1e-300).ln();
                }
                for o in matrix.observations_for_task(t) {
                    let cm = &confusion[o.worker];
                    for (l, x) in row.iter_mut().enumerate() {
                        *x += cm[l][o.label as usize].max(1e-300).ln();
                    }
                }
                log_normalize(row);
            }

            let delta = posteriors
                .iter()
                .zip(&next)
                .flat_map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()))
                .fold(0.0f64, f64::max);
            posteriors = next;
            if delta < tol {
                break;
            }
        }

        posteriors
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(l, _)| l as u32)
                    .unwrap()
            })
            .collect()
    }
}

/// Builds a realistic response matrix by running the collection pipeline
/// once (outside the timed region).
fn matrix(n_tasks: usize, k: usize) -> ResponseMatrix {
    let data = LabelingDataset::binary(n_tasks, 7);
    let crowd = SimulatedCrowd::new(mixes::mixed(60, 7), 7);
    label_tasks(&crowd, &data.tasks, k, &MajorityVote)
        .expect("collection succeeds")
        .matrix
}

/// Median wall-clock seconds of `f` over `runs` invocations.
fn median_secs<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now(); // crowdkit-lint: allow(DET002) — benchmark harness: measuring wall time is the point
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Regression gate: the flat kernel must hold a ≥2× lead over the seed
/// sequential implementation on the E2 workload.
fn check_flat_kernel_speedup() {
    let m = matrix(1000, 9);
    let cfg = EmConfig::default();
    let ds = DawidSkene::with_config(cfg);
    // Warm the CSR cache outside the timed region for both arms.
    let flat_labels = ds.infer(&m).expect("inference succeeds").labels;
    let seed_labels = seed_ds::infer(&m, cfg.max_iters, cfg.tol, cfg.smoothing);
    assert_eq!(
        flat_labels, seed_labels,
        "flat kernel must agree with the seed kernel before being timed"
    );
    // crowdkit-lint: allow(DET002) — bench harness: the timing chain is wall-clock by design
    let seed = median_secs(5, || {
        std::hint::black_box(seed_ds::infer(&m, cfg.max_iters, cfg.tol, cfg.smoothing));
    });
    let flat = median_secs(5, || {
        std::hint::black_box(ds.infer(&m).unwrap());
    });
    let speedup = seed / flat;
    println!(
        "ds 1000x9: seed {:.2} ms, flat {:.2} ms ({speedup:.1}x)",
        seed * 1e3,
        flat * 1e3
    );
    assert!(
        speedup >= 2.0,
        "flat DS kernel must beat the seed kernel at least 2x (got {speedup:.2}x)"
    );
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("truth_inference");
    for &n in &[200usize, 1000] {
        let m = matrix(n, 5);
        let algos: Vec<(&str, Box<dyn TruthInferencer>)> = vec![
            ("mv", Box::new(MajorityVote)),
            ("zc", Box::new(OneCoinEm::default())),
            ("ds", Box::new(DawidSkene::default())),
            ("glad", Box::new(Glad::default())),
            ("kos", Box::new(Kos::default())),
        ];
        for (name, algo) in algos {
            group.bench_with_input(BenchmarkId::new(name, n), &m, |b, m| {
                b.iter(|| algo.infer(std::hint::black_box(m)).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_redundancy_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ds_redundancy");
    for &k in &[3usize, 9, 15] {
        let m = matrix(300, k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &m, |b, m| {
            let ds = DawidSkene::default();
            b.iter(|| ds.infer(std::hint::black_box(m)).unwrap());
        });
    }
    group.finish();
}

/// One thread vs the machine's default pool width on the E2 workload,
/// plus the frozen seed kernel for reference. Results are byte-identical
/// across the thread settings; only the wall-clock moves.
fn bench_ds_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("ds_parallel");
    let m = matrix(1000, 9);
    group.bench_function("seed", |b| {
        let cfg = EmConfig::default();
        b.iter(|| {
            std::hint::black_box(seed_ds::infer(
                std::hint::black_box(&m),
                cfg.max_iters,
                cfg.tol,
                cfg.smoothing,
            ))
        });
    });
    let mut widths = vec![1usize];
    if default_threads() > 1 {
        widths.push(default_threads());
    }
    for threads in widths {
        let ds = DawidSkene::with_config(EmConfig::default().with_threads(threads));
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| ds.infer(std::hint::black_box(&m)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inference,
    bench_redundancy_scaling,
    bench_ds_parallel
);

fn main() {
    check_flat_kernel_speedup();
    benches();
}
