//! Criterion micro-benchmarks for the truth-inference kernels behind
//! experiments E1/E2: algorithm runtime over a fixed response matrix as
//! task count and redundancy scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::TruthInferencer;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::population::mixes;
use crowdkit_sim::SimulatedCrowd;
use crowdkit_truth::{pipeline::label_tasks, DawidSkene, Glad, Kos, MajorityVote, OneCoinEm};

/// Builds a realistic response matrix by running the collection pipeline
/// once (outside the timed region).
fn matrix(n_tasks: usize, k: usize) -> ResponseMatrix {
    let data = LabelingDataset::binary(n_tasks, 7);
    let crowd = SimulatedCrowd::new(mixes::mixed(60, 7), 7);
    label_tasks(&crowd, &data.tasks, k, &MajorityVote)
        .expect("collection succeeds")
        .matrix
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("truth_inference");
    for &n in &[200usize, 1000] {
        let m = matrix(n, 5);
        let algos: Vec<(&str, Box<dyn TruthInferencer>)> = vec![
            ("mv", Box::new(MajorityVote)),
            ("zc", Box::new(OneCoinEm::default())),
            ("ds", Box::new(DawidSkene::default())),
            ("glad", Box::new(Glad::default())),
            ("kos", Box::new(Kos::default())),
        ];
        for (name, algo) in algos {
            group.bench_with_input(BenchmarkId::new(name, n), &m, |b, m| {
                b.iter(|| algo.infer(std::hint::black_box(m)).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_redundancy_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ds_redundancy");
    for &k in &[3usize, 9, 15] {
        let m = matrix(300, k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &m, |b, m| {
            let ds = DawidSkene::default();
            b.iter(|| ds.infer(std::hint::black_box(m)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference, bench_redundancy_scaling);
criterion_main!(benches);
