//! Criterion micro-benchmarks for the declarative-layer kernels behind
//! E10/E11: Datalog parsing and fixpoint evaluation, CrowdSQL parsing,
//! planning, and machine-side execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdkit_datalog::{parse_program, Engine, EngineConfig, NullResolver};
use crowdkit_sql::Session;

fn chain_program(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("edge({i}, {}).\n", i + 1));
    }
    src.push_str("path(X, Y) :- edge(X, Y).\n");
    src.push_str("path(X, Z) :- edge(X, Y), path(Y, Z).\n");
    src
}

fn bench_datalog(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog");
    group.sample_size(10);
    for &n in &[50usize, 150] {
        let src = chain_program(n);
        group.bench_with_input(BenchmarkId::new("parse", n), &src, |b, src| {
            b.iter(|| parse_program(std::hint::black_box(src)).unwrap());
        });
        let program = parse_program(&src).unwrap();
        // Ablation: semi-naive (delta-restricted) vs naive fixpoint. The
        // naive strategy is quartic on a chain, so it is only measured at
        // the small size — that asymmetry *is* the result.
        let mut configs = vec![("tc_semi_naive", true)];
        if n <= 50 {
            configs.push(("tc_naive", false));
        }
        for (label, semi_naive) in configs {
            let engine = Engine::new(program.clone()).unwrap().with_config(EngineConfig {
                semi_naive,
                ..EngineConfig::default()
            });
            group.bench_with_input(BenchmarkId::new(label, n), &engine, |b, engine| {
                b.iter(|| engine.run(&mut NullResolver).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_sql(c: &mut Criterion) {
    let mut group = c.benchmark_group("crowdsql");
    let session = Session::new();
    session
        .execute_ddl("CREATE TABLE items (id INT, name TEXT, category CROWD TEXT)")
        .unwrap();
    for i in 0..2000 {
        session
            .execute_ddl(&format!("INSERT INTO items VALUES ({i}, 'item{i}', NULL)"))
            .unwrap();
    }
    let sql = "SELECT name FROM items WHERE id >= 100 AND id < 1000 ORDER BY id DESC LIMIT 50";

    group.bench_function("parse_plan_explain", |b| {
        b.iter(|| session.explain(std::hint::black_box(sql), true).unwrap());
    });
    group.bench_function("machine_exec_2k_rows", |b| {
        b.iter(|| session.query_machine(std::hint::black_box(sql)).unwrap());
    });

    // Equi-join: optimizer's hash join vs the naive cross product. Built
    // small enough that the quadratic plan still terminates quickly.
    let join_session = Session::new();
    join_session.execute_ddl("CREATE TABLE a (k INT)").unwrap();
    join_session.execute_ddl("CREATE TABLE b (k INT)").unwrap();
    for i in 0..300 {
        join_session
            .execute_ddl(&format!("INSERT INTO a VALUES ({})", i % 50))
            .unwrap();
        join_session
            .execute_ddl(&format!("INSERT INTO b VALUES ({})", i % 50))
            .unwrap();
    }
    let join_sql = "SELECT COUNT(*) FROM a, b WHERE a.k = b.k";
    group.bench_function("equi_join_hash_300x300", |b| {
        b.iter(|| join_session.query_machine(std::hint::black_box(join_sql)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_datalog, bench_sql);
criterion_main!(benches);
