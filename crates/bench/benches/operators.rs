//! Criterion micro-benchmarks for the operator kernels behind E3/E4/E7:
//! blocking, constraint clustering, rank aggregation, and species
//! estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdkit_ops::collect::{chao92, ItemCounts};
use crowdkit_ops::join::{candidate_pairs, ConstraintClustering};
use crowdkit_ops::sort::rankers::{borda, bradley_terry, copeland, elo};
use crowdkit_ops::sort::ComparisonGraph;
use crowdkit_sim::dataset::EntityDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocking");
    for &entities in &[100usize, 400] {
        let data = EntityDataset::generate(entities, 4, 2, 3);
        let texts: Vec<String> = data.records.iter().map(|r| r.text.clone()).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(texts.len()),
            &texts,
            |b, texts| {
                b.iter(|| candidate_pairs(std::hint::black_box(texts), 0.4));
            },
        );
    }
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraint_clustering");
    for &n in &[1000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            let ops: Vec<(usize, usize, bool)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0..n),
                        rng.gen_range(0..n),
                        rng.gen_bool(0.5),
                    )
                })
                .filter(|(a, b, _)| a != b)
                .collect();
            b.iter(|| {
                let mut cc = ConstraintClustering::new(n);
                for &(a, b, same) in &ops {
                    if same {
                        cc.record_same(a, b);
                    } else {
                        cc.record_different(a, b);
                    }
                }
                cc.labels()
            });
        });
    }
    group.finish();
}

fn comparison_graph(n: usize) -> ComparisonGraph {
    let mut g = ComparisonGraph::new(n);
    let mut rng = StdRng::seed_from_u64(2);
    for a in 0..n {
        for b in (a + 1)..n {
            // Latent order = index order with 15 % noise, 3 votes.
            for _ in 0..3 {
                if rng.gen_bool(0.85) {
                    g.record(b, a);
                } else {
                    g.record(a, b);
                }
            }
        }
    }
    g
}

fn bench_rankers(c: &mut Criterion) {
    let mut group = c.benchmark_group("rankers");
    let g = comparison_graph(80);
    group.bench_function("borda", |b| b.iter(|| borda(std::hint::black_box(&g))));
    group.bench_function("copeland", |b| b.iter(|| copeland(std::hint::black_box(&g))));
    group.bench_function("elo", |b| b.iter(|| elo(std::hint::black_box(&g), 32.0, 3)));
    group.bench_function("btl", |b| {
        b.iter(|| bradley_terry(std::hint::black_box(&g), 100, 1e-8))
    });
    group.finish();
}

fn bench_species_estimation(c: &mut Criterion) {
    let mut counts = ItemCounts::new();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..5000 {
        let i: usize = rng.gen_range(1..=500);
        counts.record(&format!("item{}", i * i % 997));
    }
    c.bench_function("chao92", |b| {
        b.iter(|| chao92(std::hint::black_box(&counts)))
    });
}

criterion_group!(
    benches,
    bench_blocking,
    bench_clustering,
    bench_rankers,
    bench_species_estimation
);
criterion_main!(benches);
