//! Criterion micro-benchmarks for the platform-simulator kernels behind
//! E9: answer generation throughput and the round/straggler simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdkit_core::traits::CrowdOracle;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::latency::{LatencyModel, RoundSimulator, StragglerPolicy};
use crowdkit_sim::population::mixes;
use crowdkit_sim::SimulatedCrowd;

fn bench_platform_throughput(c: &mut Criterion) {
    let data = LabelingDataset::binary(500, 1);
    c.bench_function("platform_ask_500x3", |b| {
        b.iter(|| {
            let crowd = SimulatedCrowd::new(mixes::mixed(100, 1), 1);
            for task in &data.tasks {
                let _ = crowd.ask_many(std::hint::black_box(task), 3).unwrap();
            }
            crowd.answers_delivered()
        });
    });
}

fn bench_round_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_simulator");
    for (name, policy) in [
        ("wait", StragglerPolicy::Wait),
        ("reissue", StragglerPolicy::Reissue { quantile: 0.8 }),
        ("drop", StragglerPolicy::Drop { quantile: 0.9 }),
    ] {
        let sim = RoundSimulator {
            latency: LatencyModel::human_default(),
            pool: 60,
            round_size: 60,
            policy,
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &sim, |b, sim| {
            b.iter(|| sim.run(200, 3, std::hint::black_box(5)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_platform_throughput, bench_round_simulation);
criterion_main!(benches);
