//! Metrics overhead gate: enabled vs disabled metric writes on hot paths.
//!
//! `crowdkit-metrics` is *always on* — there is no "no registry" state,
//! only the process-global enabled flag, whose off position reduces every
//! primitive write to one relaxed load and a branch. `main` enforces the
//! always-on budget before the criterion groups run: with metrics enabled
//! (writes landing in sharded atomics) each workload must stay within 3 %
//! of the disabled arm. The workloads are the same two hot paths the obs
//! gate covers — batched platform execution (`ask_batch`) and Dawid–Skene
//! EM — because those are where per-batch and per-iteration metric
//! updates concentrate.
//!
//! Samples are interleaved (disabled, enabled, disabled, …) so clock
//! drift and thermal effects hit both arms equally, and the gate compares
//! minima, the statistic least sensitive to scheduler noise.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use crowdkit_core::ask::AskRequest;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::task::Task;
use crowdkit_core::traits::{CrowdOracle, TruthInferencer};
use crowdkit_metrics as metrics;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::latency::LatencyModel;
use crowdkit_sim::population::{mixes, PopulationBuilder};
use crowdkit_sim::{PlatformBuilder, SimulatedCrowd};
use crowdkit_truth::{pipeline::label_tasks, DawidSkene, MajorityVote};

const N_TASKS: usize = 200;
const VOTES: usize = 3;
const SEED: u64 = 7;
const GATE_SAMPLES: usize = 60;
const MAX_OVERHEAD: f64 = 0.03;

fn workload() -> Vec<Task> {
    LabelingDataset::binary(N_TASKS, SEED).tasks
}

fn crowd() -> SimulatedCrowd {
    let pop = PopulationBuilder::new().reliable(80, 0.8, 0.95).build(SEED);
    PlatformBuilder::new(pop)
        .latency(LatencyModel::human_default())
        .seed(SEED)
        .threads(4)
        .build()
}

fn run_batch(tasks: &[Task]) {
    let crowd = crowd();
    let reqs: Vec<AskRequest<'_>> = tasks
        .iter()
        .map(|t| AskRequest::new(t).with_redundancy(VOTES))
        .collect();
    let outs = crowd.ask_batch(&reqs).expect("unlimited budget");
    assert!(outs.iter().all(|o| o.delivered() == VOTES));
}

fn inference_matrix() -> ResponseMatrix {
    let data = LabelingDataset::binary(500, SEED);
    let crowd = SimulatedCrowd::new(mixes::mixed(60, SEED), SEED);
    label_tasks(&crowd, &data.tasks, 5, &MajorityVote)
        .expect("collection succeeds")
        .matrix
}

/// Interleaved min-of-N comparison: runs `f` alternately with metric
/// writes disabled and enabled (each enabled sample under a fresh scoped
/// registry, so shard state never saturates into a fast path), returning
/// `(disabled_min_ns, enabled_min_ns)`.
fn gate_pair(mut f: impl FnMut()) -> (u64, u64) {
    // Warm both arms.
    metrics::set_enabled(false);
    f();
    metrics::set_enabled(true);
    metrics::with_registry(Arc::new(metrics::Registry::new()), &mut f);
    let mut off_min = u64::MAX;
    let mut on_min = u64::MAX;
    for _ in 0..GATE_SAMPLES {
        metrics::set_enabled(false);
        let t0 = Instant::now(); // crowdkit-lint: allow(DET002) — benchmark harness: measuring wall time is the point
        f();
        off_min = off_min.min(t0.elapsed().as_nanos() as u64);
        metrics::set_enabled(true);
        let reg = Arc::new(metrics::Registry::new());
        let t0 = Instant::now(); // crowdkit-lint: allow(DET002) — benchmark harness: measuring wall time is the point
        metrics::with_registry(reg, &mut f);
        on_min = on_min.min(t0.elapsed().as_nanos() as u64);
    }
    metrics::set_enabled(true);
    (off_min, on_min)
}

fn check_overhead(name: &str, f: impl FnMut()) {
    let (off_min, on_min) = gate_pair(f);
    let overhead = on_min as f64 / off_min as f64 - 1.0;
    println!(
        "{name}: disabled {off_min} ns, enabled {on_min} ns ({:+.2}%)",
        overhead * 100.0
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "{name}: metrics overhead {:.2}% exceeds the {:.0}% budget",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
}

fn bench_ask_batch(c: &mut Criterion) {
    let tasks = workload();
    let mut group = c.benchmark_group("metrics_ask_batch_200x3");
    group.bench_function("disabled", |b| {
        metrics::set_enabled(false);
        b.iter(|| run_batch(std::hint::black_box(&tasks)));
        metrics::set_enabled(true);
    });
    group.bench_function("enabled", |b| {
        let reg = Arc::new(metrics::Registry::new());
        b.iter(|| {
            metrics::with_registry(reg.clone(), || run_batch(std::hint::black_box(&tasks)))
        });
    });
    group.finish();
}

fn bench_dawid_skene(c: &mut Criterion) {
    let m = inference_matrix();
    let ds = DawidSkene::default();
    let mut group = c.benchmark_group("metrics_dawid_skene_500x5");
    group.bench_function("disabled", |b| {
        metrics::set_enabled(false);
        b.iter(|| ds.infer(std::hint::black_box(&m)).unwrap());
        metrics::set_enabled(true);
    });
    group.bench_function("enabled", |b| {
        let reg = Arc::new(metrics::Registry::new());
        b.iter(|| {
            metrics::with_registry(reg.clone(), || {
                ds.infer(std::hint::black_box(&m)).unwrap()
            })
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ask_batch, bench_dawid_skene);

fn main() {
    let tasks = workload();
    check_overhead("ask_batch", || run_batch(&tasks));
    let m = inference_matrix();
    let ds = DawidSkene::default();
    check_overhead("dawid_skene", || {
        std::hint::black_box(ds.infer(&m).unwrap());
    });
    benches();
}
