//! The observability determinism contract, property-tested.
//!
//! Layers emit telemetry only from sequential, fixed-order code paths, so
//! the deterministic JSONL stream (`with_wall(false)`, which drops
//! host-timing data) must be byte-identical no matter how many worker
//! threads the kernels use. These properties drive the two heaviest
//! instrumented paths — batched platform execution and Dawid–Skene
//! inference — at 1, 2 and 8 threads across randomized workload shapes and
//! seeds, and require identical streams.

use std::sync::Arc;

use crowdkit_core::ask::AskRequest;
use crowdkit_core::traits::CrowdOracle;
use crowdkit_metrics as metrics;
use crowdkit_obs as obs;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::latency::LatencyModel;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::PlatformBuilder;
use crowdkit_truth::em::EmConfig;
use crowdkit_truth::{pipeline::label_tasks, DawidSkene, MajorityVote};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The deterministic JSONL bytes produced by running `f` under a fresh
/// in-memory recorder with wall-clock data omitted.
fn capture(f: impl FnOnce()) -> Vec<u8> {
    let rec = Arc::new(obs::JsonlRecorder::in_memory().with_wall(false));
    obs::with_recorder(rec.clone(), f);
    rec.take_bytes()
}

/// One batched simulated-crowd run: `n_tasks` × `votes` bought through
/// `ask_batch` on a platform configured with `threads` workers.
fn batch_stream(n_tasks: usize, votes: usize, seed: u64, threads: usize) -> Vec<u8> {
    capture(|| {
        let pop = PopulationBuilder::new().reliable(40, 0.7, 0.95).build(seed);
        let crowd = PlatformBuilder::new(pop)
            .latency(LatencyModel::human_default())
            .seed(seed)
            .threads(threads)
            .build();
        let tasks = LabelingDataset::binary(n_tasks, seed).tasks;
        let reqs: Vec<AskRequest<'_>> = tasks
            .iter()
            .map(|t| AskRequest::new(t).with_redundancy(votes))
            .collect();
        crowd.ask_batch(&reqs).expect("unlimited budget");
    })
}

/// One Dawid–Skene inference run over a collected matrix, with the EM
/// kernels sharded over `threads` workers.
fn ds_stream(n_tasks: usize, seed: u64, threads: usize) -> Vec<u8> {
    // Collect outside the recorder scope: only the inference events are
    // under test here, and collection happens once per thread count anyway.
    let crowd = crowdkit_sim::SimulatedCrowd::new(
        PopulationBuilder::new().reliable(30, 0.6, 0.95).build(seed),
        seed,
    );
    let tasks = LabelingDataset::binary(n_tasks, seed).tasks;
    let matrix = label_tasks(&crowd, &tasks, 3, &MajorityVote)
        .expect("collection succeeds")
        .matrix;
    capture(|| {
        use crowdkit_core::traits::TruthInferencer;
        let ds = DawidSkene::with_config(EmConfig {
            threads,
            ..EmConfig::default()
        });
        ds.infer(&matrix).expect("non-empty matrix");
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn batched_run_stream_is_thread_count_invariant(
        n_tasks in 20usize..120,
        votes in 1usize..4,
        seed in 0u64..1000,
    ) {
        let reference = batch_stream(n_tasks, votes, seed, THREAD_COUNTS[0]);
        prop_assert!(!reference.is_empty(), "instrumentation must emit events");
        for &threads in &THREAD_COUNTS[1..] {
            let stream = batch_stream(n_tasks, votes, seed, threads);
            prop_assert_eq!(
                &reference, &stream,
                "ask_batch stream diverged at {} threads", threads
            );
        }
    }

    #[test]
    fn dawid_skene_stream_is_thread_count_invariant(
        n_tasks in 20usize..100,
        seed in 0u64..1000,
    ) {
        let reference = ds_stream(n_tasks, seed, THREAD_COUNTS[0]);
        prop_assert!(!reference.is_empty(), "instrumentation must emit events");
        for &threads in &THREAD_COUNTS[1..] {
            let stream = ds_stream(n_tasks, seed, threads);
            prop_assert_eq!(
                &reference, &stream,
                "dawid-skene stream diverged at {} threads", threads
            );
        }
    }
}

/// The `metrics.snapshot` bytes for one batched run: the workload executes
/// under a fresh scoped registry, then one exporter flush turns the
/// registry into snapshot delta events. With wall data omitted, those
/// bytes must be a pure function of the workload too — metric updates
/// happen only on sequential orchestrating paths, and the wall-histogram
/// encoding keeps timing out of the deterministic fields.
fn batch_snapshot_stream(n_tasks: usize, votes: usize, seed: u64, threads: usize) -> Vec<u8> {
    capture(|| {
        let reg = Arc::new(metrics::Registry::new());
        metrics::with_registry(reg.clone(), || {
            let pop = PopulationBuilder::new().reliable(40, 0.7, 0.95).build(seed);
            let crowd = PlatformBuilder::new(pop)
                .latency(LatencyModel::human_default())
                .seed(seed)
                .threads(threads)
                .build();
            let tasks = LabelingDataset::binary(n_tasks, seed).tasks;
            let reqs: Vec<AskRequest<'_>> = tasks
                .iter()
                .map(|t| AskRequest::new(t).with_redundancy(votes))
                .collect();
            crowd.ask_batch(&reqs).expect("unlimited budget");
            metrics::SnapshotExporter::new().emit(&reg, None);
        });
    })
}

/// The `metrics.snapshot` bytes for one Dawid–Skene inference run.
fn ds_snapshot_stream(n_tasks: usize, seed: u64, threads: usize) -> Vec<u8> {
    let crowd = crowdkit_sim::SimulatedCrowd::new(
        PopulationBuilder::new().reliable(30, 0.6, 0.95).build(seed),
        seed,
    );
    let tasks = LabelingDataset::binary(n_tasks, seed).tasks;
    let matrix = label_tasks(&crowd, &tasks, 3, &MajorityVote)
        .expect("collection succeeds")
        .matrix;
    capture(|| {
        use crowdkit_core::traits::TruthInferencer;
        let reg = Arc::new(metrics::Registry::new());
        metrics::with_registry(reg.clone(), || {
            let ds = DawidSkene::with_config(EmConfig {
                threads,
                ..EmConfig::default()
            });
            ds.infer(&matrix).expect("non-empty matrix");
            metrics::SnapshotExporter::new().emit(&reg, None);
        });
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn metrics_snapshot_stream_is_thread_count_invariant(
        n_tasks in 20usize..120,
        votes in 1usize..4,
        seed in 0u64..1000,
    ) {
        let reference = batch_snapshot_stream(n_tasks, votes, seed, THREAD_COUNTS[0]);
        prop_assert!(
            std::str::from_utf8(&reference).unwrap().contains("metrics.snapshot"),
            "the exporter must emit snapshot events"
        );
        for &threads in &THREAD_COUNTS[1..] {
            let stream = batch_snapshot_stream(n_tasks, votes, seed, threads);
            prop_assert_eq!(
                &reference, &stream,
                "metrics.snapshot stream diverged at {} threads", threads
            );
        }
    }

    #[test]
    fn dawid_skene_snapshot_stream_is_thread_count_invariant(
        n_tasks in 20usize..100,
        seed in 0u64..1000,
    ) {
        let reference = ds_snapshot_stream(n_tasks, seed, THREAD_COUNTS[0]);
        prop_assert!(
            std::str::from_utf8(&reference).unwrap().contains("metrics.snapshot"),
            "the exporter must emit snapshot events"
        );
        for &threads in &THREAD_COUNTS[1..] {
            let stream = ds_snapshot_stream(n_tasks, seed, threads);
            prop_assert_eq!(
                &reference, &stream,
                "dawid-skene metrics.snapshot stream diverged at {} threads", threads
            );
        }
    }
}

/// Repeat runs at a fixed thread count must also be byte-identical — the
/// stream is a pure function of the workload, not of process state.
#[test]
fn repeat_runs_are_byte_identical() {
    let a = batch_stream(60, 3, 42, 4);
    let b = batch_stream(60, 3, 42, 4);
    assert_eq!(a, b);
    let c = ds_stream(60, 42, 4);
    let d = ds_stream(60, 42, 4);
    assert_eq!(c, d);
    let e = batch_snapshot_stream(60, 3, 42, 4);
    let f = batch_snapshot_stream(60, 3, 42, 4);
    assert_eq!(e, f);
}
