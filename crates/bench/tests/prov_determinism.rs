//! The decision-provenance determinism contract, property-tested.
//!
//! Lineage events (`prov.task`, `prov.worker`, `prov.run`) are emitted
//! from the sequential tail of each inference run, reading the committed
//! posterior tables — so with wall data omitted the provenance stream
//! must be byte-identical no matter how many worker threads the EM
//! kernels use, and a frozen (sparse active-set) run's lineage must equal
//! the dense-reference path's bit for bit: the freeze layer pins exactly
//! the bits the lineage reads.

use std::sync::Arc;

use crowdkit_core::traits::TruthInferencer;
use crowdkit_obs as obs;
use crowdkit_provenance as prov;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::SimulatedCrowd;
use crowdkit_truth::em::EmConfig;
use crowdkit_truth::glad::GladConfig;
use crowdkit_truth::{pipeline::label_tasks, DawidSkene, FreezeConfig, Glad, MajorityVote};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The deterministic JSONL bytes produced by running `f` under a fresh
/// provenance scope and an in-memory recorder with wall data omitted.
/// The JSONL recorder reports detail, so full per-task lineage lands.
fn capture(f: impl FnOnce()) -> Vec<u8> {
    let rec = Arc::new(obs::JsonlRecorder::in_memory().with_wall(false));
    prov::with_provenance(Arc::new(prov::Provenance::default()), || {
        obs::with_recorder(rec.clone(), f);
    });
    rec.take_bytes()
}

/// Only the `prov.*` lines of a captured stream. The sparse-vs-dense
/// comparison filters to these: the freeze layer's own telemetry
/// (`truth.freeze` active-set counts) legitimately differs between the
/// worklist and dense-reference paths, but the decision lineage may not.
fn prov_lines(stream: &[u8]) -> String {
    std::str::from_utf8(stream)
        .expect("stream is utf8")
        .lines()
        .filter(|l| l.contains("\"key\":\"prov."))
        .collect::<Vec<_>>()
        .join("\n")
}

fn matrix(n_tasks: usize, seed: u64) -> crowdkit_core::response::ResponseMatrix {
    let crowd = SimulatedCrowd::new(
        PopulationBuilder::new().reliable(30, 0.6, 0.95).build(seed),
        seed,
    );
    let tasks = LabelingDataset::binary(n_tasks, seed).tasks;
    label_tasks(&crowd, &tasks, 3, &MajorityVote)
        .expect("collection succeeds")
        .matrix
}

fn ds_prov_stream(
    m: &crowdkit_core::response::ResponseMatrix,
    threads: usize,
    freeze: FreezeConfig,
) -> Vec<u8> {
    capture(|| {
        let ds = DawidSkene::with_config(EmConfig {
            threads,
            freeze,
            ..EmConfig::default()
        });
        ds.infer(m).expect("non-empty matrix");
    })
}

fn glad_prov_stream(m: &crowdkit_core::response::ResponseMatrix, threads: usize) -> Vec<u8> {
    capture(|| {
        let glad = Glad::with_config(GladConfig::default().with_threads(threads));
        glad.infer(m).expect("non-empty matrix");
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn provenance_stream_is_thread_count_invariant(
        n_tasks in 20usize..100,
        seed in 0u64..1000,
    ) {
        let m = matrix(n_tasks, seed);
        let reference = ds_prov_stream(&m, THREAD_COUNTS[0], FreezeConfig::disabled());
        prop_assert!(
            prov_lines(&reference).contains("\"key\":\"prov.task\""),
            "lineage detail must land under a detail recorder"
        );
        prop_assert!(prov_lines(&reference).contains("\"key\":\"prov.run\""));
        for &threads in &THREAD_COUNTS[1..] {
            let stream = ds_prov_stream(&m, threads, FreezeConfig::disabled());
            prop_assert_eq!(
                &reference, &stream,
                "dawid-skene provenance stream diverged at {} threads", threads
            );
        }
        let glad_ref = glad_prov_stream(&m, THREAD_COUNTS[0]);
        for &threads in &THREAD_COUNTS[1..] {
            let stream = glad_prov_stream(&m, threads);
            prop_assert_eq!(
                &glad_ref, &stream,
                "glad provenance stream diverged at {} threads", threads
            );
        }
    }

    #[test]
    fn sparse_freeze_lineage_equals_dense_reference(
        n_tasks in 20usize..100,
        seed in 0u64..1000,
        eps in 1e-6f64..1e-3,
        threads in 1usize..5,
    ) {
        let m = matrix(n_tasks, seed);
        let sparse = ds_prov_stream(&m, threads, FreezeConfig::sparse(eps));
        let dense = ds_prov_stream(
            &m,
            threads,
            FreezeConfig::sparse(eps).with_dense_reference(true),
        );
        prop_assert!(prov_lines(&sparse).contains("\"key\":\"prov.task\""));
        prop_assert_eq!(
            prov_lines(&sparse), prov_lines(&dense),
            "a frozen task's lineage must equal the dense-reference path's"
        );
    }
}

/// Without a provenance scope no `prov.*` events land, even with a
/// detail recorder active — the scope is the opt-in.
#[test]
fn no_scope_means_no_provenance_events() {
    let m = matrix(30, 7);
    let rec = Arc::new(obs::JsonlRecorder::in_memory().with_wall(false));
    obs::with_recorder(rec.clone(), || {
        DawidSkene::default().infer(&m).expect("non-empty matrix");
    });
    let text = String::from_utf8(rec.take_bytes()).expect("utf8");
    assert!(!text.contains("\"key\":\"prov."));
    assert!(text.contains("\"key\":\"truth.run\""), "obs itself still on");
}
