//! Log-scale histograms for latency-style measurements.
//!
//! Buckets are powers of two over a fixed-point representation (values are
//! scaled by [`SCALE`] before bucketing), so the histogram covers ~nine
//! decades — sub-millisecond to weeks of simulated seconds — in 64 buckets
//! with bounded relative error. Buckets are atomics: recording is lock-free
//! and safe from any thread, and *where* a sample lands never depends on
//! which thread recorded it, so histogram contents obey the same
//! determinism contract as the event stream.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-point scale applied before bucketing: 1 unit = 1 microsecond when
/// samples are seconds.
pub const SCALE: f64 = 1e6;

const BUCKETS: usize = 64;

/// A lock-free power-of-two histogram.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Index of the bucket holding `value`: `floor(log2(value * SCALE)) + 1`,
/// with zero/negative values in bucket 0.
fn bucket_of(value: f64) -> usize {
    let scaled = value * SCALE;
    // NaN, zero, negative and sub-unit values all land in bucket 0.
    if scaled.is_nan() || scaled < 1.0 {
        return 0;
    }
    let scaled = scaled.min(u64::MAX as f64) as u64;
    (64 - scaled.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Lower edge of bucket `i`, in sample units.
fn bucket_floor(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        (1u64 << (i - 1)) as f64 / SCALE
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, value: f64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`): the lower edge of the bucket
    /// containing the `q`-th sample. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(BUCKETS - 1)
    }

    /// Merges another histogram's counts into this one.
    pub fn merge(&self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter().zip(&other.buckets) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// `(bucket_floor, count)` for every non-empty bucket, in value order.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_floor(i), n))
            })
            .collect()
    }
}

impl Clone for LogHistogram {
    fn clone(&self) -> Self {
        let h = LogHistogram::new();
        h.merge(self);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_data() {
        let h = LogHistogram::new();
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // p50 must sit in the ~1 s bucket, p99 in the ~1000 s bucket.
        assert!((0.25..=1.0).contains(&p50), "p50 = {p50}");
        assert!((250.0..=1000.0).contains(&p99), "p99 = {p99}");
        assert!(p99 > p50);
    }

    #[test]
    fn degenerate_inputs_land_in_the_zero_bucket() {
        let h = LogHistogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.nonzero_buckets().is_empty());
        // Every quantile of an empty histogram is the 0 sentinel, including
        // the extremes.
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 0.0);
        }
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = LogHistogram::new();
        h.record(3.0);
        assert_eq!(h.count(), 1);
        let floor = h.quantile(0.5);
        // One sample: p0 through p100 all land in its bucket.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), floor, "q = {q}");
        }
        // The bucket floor brackets the sample with bounded relative error.
        assert!(floor > 0.0 && floor <= 3.0, "floor = {floor}");
        assert!(3.0 <= floor * 2.0, "sample above its bucket ceiling");
    }

    #[test]
    fn p0_and_p100_bracket_a_spread_distribution() {
        let h = LogHistogram::new();
        h.record(0.001);
        h.record(1.0);
        h.record(4000.0);
        // p0 clamps to the first sample's bucket, p100 to the last's; out of
        // range q values clamp rather than panic.
        let p0 = h.quantile(0.0);
        let p100 = h.quantile(1.0);
        assert!(p0 <= 0.001, "p0 = {p0}");
        assert!((2000.0..=4000.0).contains(&p100), "p100 = {p100}");
        assert_eq!(h.quantile(-1.0), p0);
        assert_eq!(h.quantile(2.0), p100);
    }

    #[test]
    fn merge_of_disjoint_ranges_preserves_both_tails() {
        let lo = LogHistogram::new();
        let hi = LogHistogram::new();
        for _ in 0..10 {
            lo.record(0.01);
        }
        for _ in 0..10 {
            hi.record(10_000.0);
        }
        // Ranges are disjoint: no bucket overlap between the two.
        let lo_buckets: Vec<f64> = lo.nonzero_buckets().iter().map(|(f, _)| *f).collect();
        let hi_buckets: Vec<f64> = hi.nonzero_buckets().iter().map(|(f, _)| *f).collect();
        assert!(lo_buckets.iter().all(|f| !hi_buckets.contains(f)));
        lo.merge(&hi);
        assert_eq!(lo.count(), 20);
        assert_eq!(lo.nonzero_buckets().len(), 2);
        // The merged histogram keeps both tails: median from the low range,
        // p95 from the high range.
        assert!(lo.quantile(0.5) <= 0.01);
        assert!(lo.quantile(0.95) >= 2500.0);
        // The donor histogram is unchanged by merge.
        assert_eq!(hi.count(), 10);
    }

    #[test]
    fn merge_adds_counts() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(1.0);
        b.record(1.0);
        b.record(64.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.nonzero_buckets().len(), 2);
    }

    #[test]
    fn huge_values_saturate_the_top_bucket() {
        let h = LogHistogram::new();
        h.record(f64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) > 0.0);
    }
}
