//! # crowdkit-obs — deterministic tracing and run telemetry
//!
//! Structured, near-zero-overhead observability for the crowdkit stack.
//! Every layer (platform simulation, assignment, truth inference, SQL and
//! Datalog execution) emits [`Event`]s describing what it did — wave sizes,
//! budget debits, makespans, per-iteration convergence deltas, per-plan-node
//! crowd fetches — into whichever [`Recorder`] is active.
//!
//! ## Determinism contract
//!
//! The event stream (keys, simulated timestamps and deterministic fields)
//! is a pure function of the run's seed and inputs: layers emit only from
//! sequential, fixed-order code paths, never from inside parallel workers,
//! so the stream is byte-identical at any thread count — the same rule the
//! compute kernels follow. Host-side timings ride along in separate
//! wall-clock fields that deterministic sinks omit (see
//! [`JsonlRecorder::with_wall`]).
//!
//! ## Activating a recorder
//!
//! The active recorder is scoped and thread-local, like a tracing
//! subscriber; the default is [`NullRecorder`], which reduces every
//! instrumentation site to one branch:
//!
//! ```
//! use std::sync::Arc;
//! use crowdkit_obs as obs;
//!
//! let rec = Arc::new(obs::MemoryRecorder::new());
//! obs::with_recorder(rec.clone(), || {
//!     // Any crowdkit work in here is recorded.
//!     obs::quality("accuracy", 0.93);
//! });
//! assert_eq!(rec.count("exp.quality"), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod event;
pub mod header;
pub mod histogram;
pub mod recorder;
pub mod report;

pub use event::{wall_ns, Event, FieldValue, WallTimer};
pub use header::{StreamHeader, STREAM_MAGIC, STREAM_SCHEMA_VERSION};
pub use histogram::LogHistogram;
pub use recorder::{
    FieldStats, JsonlRecorder, MemoryRecorder, NullRecorder, Recorder, ShardBuffers,
    ShardRecorder, Tee,
};
pub use report::{CostReport, ExperimentReport, InferenceReport, LatencyReport, RunReport};

use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    static CURRENT: RefCell<Arc<dyn Recorder>> = RefCell::new(Arc::new(NullRecorder));
}

/// The recorder active on this thread. Defaults to [`NullRecorder`].
///
/// Hot paths should call this once per operation and reuse the handle
/// rather than re-resolving per item.
pub fn current() -> Arc<dyn Recorder> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the active recorder wants events — the cheap pre-check for
/// instrumentation sites that would otherwise build an [`Event`].
pub fn enabled() -> bool {
    CURRENT.with(|c| c.borrow().enabled())
}

/// Restores the previous recorder when dropped, so a panic inside
/// [`with_recorder`] cannot leak the scoped recorder into later work.
struct RestoreGuard {
    previous: Option<Arc<dyn Recorder>>,
}

impl Drop for RestoreGuard {
    fn drop(&mut self) {
        if let Some(previous) = self.previous.take() {
            CURRENT.with(|c| *c.borrow_mut() = previous);
        }
    }
}

/// Runs `f` with `rec` as this thread's active recorder, restoring the
/// previous recorder afterwards (including on panic). Scopes nest.
///
/// The scope is per-thread: work `f` hands to other threads sees those
/// threads' own recorders (normally the null default). Instrumented layers
/// honour this by emitting only from the calling thread's sequential code.
pub fn with_recorder<R>(rec: Arc<dyn Recorder>, f: impl FnOnce() -> R) -> R {
    let previous = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), rec));
    let _guard = RestoreGuard {
        previous: Some(previous),
    };
    f()
}

/// Records `event` into the active recorder, if one is enabled.
pub fn record(event: Event) {
    CURRENT.with(|c| {
        let rec = c.borrow();
        if rec.enabled() {
            rec.record(event);
        }
    });
}

/// Records a scalar sample into the active recorder, if one is enabled.
pub fn sample(key: &'static str, value: f64) {
    CURRENT.with(|c| {
        let rec = c.borrow();
        if rec.enabled() {
            rec.sample(key, value);
        }
    });
}

/// Reports a quality metric (accuracy, F1, rank correlation, …) for the
/// current run as an `exp.quality` event. The per-metric means surface in
/// the run's [`ExperimentReport`].
pub fn quality(metric: &'static str, value: f64) {
    record(Event::new("exp.quality").str("metric", metric).f64("value", value));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_recorder_is_null() {
        assert!(!enabled());
        // Recording into the default is a no-op, not a panic.
        record(Event::new("x"));
        sample("y", 1.0);
    }

    #[test]
    fn with_recorder_scopes_and_restores() {
        let rec = Arc::new(MemoryRecorder::new());
        assert!(!enabled());
        with_recorder(rec.clone(), || {
            assert!(enabled());
            record(Event::new("k").u64("n", 1));
            quality("acc", 0.5);
        });
        assert!(!enabled());
        assert_eq!(rec.count("k"), 1);
        assert_eq!(rec.count("exp.quality"), 1);
    }

    #[test]
    fn with_recorder_nests() {
        let outer = Arc::new(MemoryRecorder::new());
        let inner = Arc::new(MemoryRecorder::new());
        with_recorder(outer.clone(), || {
            record(Event::new("a"));
            with_recorder(inner.clone(), || record(Event::new("b")));
            record(Event::new("c"));
        });
        assert_eq!(outer.count("a"), 1);
        assert_eq!(outer.count("c"), 1);
        assert_eq!(outer.count("b"), 0);
        assert_eq!(inner.count("b"), 1);
    }

    #[test]
    fn with_recorder_restores_after_panic() {
        let rec = Arc::new(MemoryRecorder::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_recorder(rec.clone(), || panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(!enabled(), "panic must not leak the scoped recorder");
    }

    #[test]
    fn scope_is_thread_local() {
        let rec = Arc::new(MemoryRecorder::new());
        with_recorder(rec.clone(), || {
            let handle = std::thread::spawn(enabled);
            assert!(!handle.join().unwrap(), "other threads see the default");
            assert!(enabled());
        });
    }
}
