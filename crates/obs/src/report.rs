//! Run reports: the cost / latency / quality triangle per run.
//!
//! An [`ExperimentReport`] is distilled from a [`MemoryRecorder`] after an
//! instrumented run: crowd cost (questions asked, currency spent), latency
//! (simulated makespan, answer-latency quantiles, waves), inference effort
//! (EM iterations, convergence), and whatever quality metrics the
//! experiment reported via [`crate::quality`]. A [`RunReport`] bundles one
//! report per experiment plus suite-level totals and renders as JSON —
//! the `RUNREPORT.json` the experiment harness writes.

use std::fmt::Write as _;

use crate::event::FieldValue;
use crate::recorder::MemoryRecorder;

/// Appends `"name":` to a JSON object body under construction.
fn json_key(out: &mut String, name: &str) {
    FieldValue::Str(name.to_owned()).write_json(out);
    out.push(':');
}

/// Appends a finite-guarded float literal.
fn json_f64(out: &mut String, value: f64) {
    FieldValue::F64(value).write_json(out);
}

/// Crowd-cost figures for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[must_use = "a distilled report is pure data; dropping it discards the run's telemetry"]
pub struct CostReport {
    /// Crowd answers delivered across all platform batches.
    pub questions: u64,
    /// Currency spent on those answers.
    pub spend: f64,
    /// Batches stopped early by budget exhaustion.
    pub budget_stops: u64,
}

/// Latency figures for one run, in simulated seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[must_use = "a distilled report is pure data; dropping it discards the run's telemetry"]
pub struct LatencyReport {
    /// Total simulated clock advance across batches (sum of makespans).
    pub sim_makespan: f64,
    /// Sum of individual answer latencies — the sequential counterfactual;
    /// `sim_makespan / latency_sum` is the batching speedup.
    pub latency_sum: f64,
    /// Median individual answer latency.
    pub p50: f64,
    /// 95th-percentile individual answer latency.
    pub p95: f64,
    /// Assignment-driver waves executed.
    pub waves: u64,
}

/// Truth-inference effort figures for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[must_use = "a distilled report is pure data; dropping it discards the run's telemetry"]
pub struct InferenceReport {
    /// Inference runs executed.
    pub runs: u64,
    /// EM iterations summed over those runs.
    pub iterations: u64,
    /// Runs that reached their convergence tolerance.
    pub converged: u64,
}

/// Decision-provenance figures for one run, distilled from the always-on
/// `prov.run` summaries (see the `crowdkit-provenance` crate).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[must_use = "a distilled report is pure data; dropping it discards the run's telemetry"]
pub struct ProvenanceReport {
    /// Inference runs that emitted a lineage summary.
    pub runs: u64,
    /// Tasks whose posterior margin fell below the contested threshold,
    /// summed over runs.
    pub contested: u64,
    /// Label flips across EM iterations, summed over runs.
    pub flips: u64,
    /// Mean of the per-run mean posterior margins (0.0 with no runs).
    pub margin_mean: f64,
}

/// The distilled telemetry of one experiment run.
#[derive(Debug, Clone, Default, PartialEq)]
#[must_use = "a distilled report is pure data; dropping it discards the run's telemetry"]
pub struct ExperimentReport {
    /// Experiment id (e.g. `"e01_truth_accuracy"`).
    pub id: String,
    /// One-line description of the experiment.
    pub description: String,
    /// Wall-clock duration of the run, milliseconds.
    pub wall_ms: u64,
    /// Crowd cost.
    pub cost: CostReport,
    /// Crowd latency.
    pub latency: LatencyReport,
    /// Truth-inference effort.
    pub inference: InferenceReport,
    /// Decision-provenance summary (contested tasks, label flips).
    pub provenance: ProvenanceReport,
    /// `(metric, mean value)` pairs reported via [`crate::quality`], in
    /// metric order.
    pub quality: Vec<(String, f64)>,
    /// `(event key, count)` for every event key seen, in key order.
    pub event_counts: Vec<(String, u64)>,
}

impl ExperimentReport {
    /// Distils a report from the aggregates a [`MemoryRecorder`]
    /// accumulated during the run. `wall_ms` is supplied by the harness.
    pub fn from_recorder(
        id: impl Into<String>,
        description: impl Into<String>,
        wall_ms: u64,
        rec: &MemoryRecorder,
    ) -> Self {
        let cost = CostReport {
            questions: (rec.field_sum("platform.batch", "delivered")
                + rec.field_sum("platform.ask", "delivered")) as u64,
            spend: rec.field_sum("platform.batch", "spend")
                + rec.field_sum("platform.ask", "spend"),
            budget_stops: rec.field_sum("platform.batch", "budget_stopped") as u64,
        };
        let (p50, p95) = rec
            .histogram("platform.latency")
            .map_or((0.0, 0.0), |h| (h.quantile(0.5), h.quantile(0.95)));
        let latency = LatencyReport {
            sim_makespan: rec.field_sum("platform.batch", "makespan"),
            latency_sum: rec.field_sum("platform.batch", "latency_sum"),
            p50,
            p95,
            waves: rec.count("assign.wave"),
        };
        let inference = InferenceReport {
            runs: rec.count("truth.run"),
            iterations: rec.field_sum("truth.run", "iters") as u64,
            converged: rec.field_sum("truth.run", "converged") as u64,
        };
        let prov_runs = rec.count("prov.run");
        let provenance = ProvenanceReport {
            runs: prov_runs,
            contested: rec.field_sum("prov.run", "contested") as u64,
            flips: rec.field_sum("prov.run", "flips") as u64,
            margin_mean: if prov_runs > 0 {
                rec.field_sum("prov.run", "margin_mean") / prov_runs as f64
            } else {
                0.0
            },
        };
        let quality = rec
            .groups("exp.quality")
            .into_iter()
            .filter_map(|metric| {
                rec.grouped_field_stats("exp.quality", &metric, "value")
                    .map(|s| (metric, s.mean()))
            })
            .collect();
        let event_counts = rec
            .event_counts()
            .into_iter()
            .map(|(k, n)| (k.to_owned(), n))
            .collect();
        Self {
            id: id.into(),
            description: description.into(),
            wall_ms,
            cost,
            latency,
            inference,
            provenance,
            quality,
            event_counts,
        }
    }

    /// Renders the report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        json_key(&mut out, "id");
        FieldValue::Str(self.id.clone()).write_json(&mut out);
        out.push(',');
        json_key(&mut out, "description");
        FieldValue::Str(self.description.clone()).write_json(&mut out);
        let _ = write!(out, ",\"wall_ms\":{}", self.wall_ms);
        let _ = write!(
            out,
            ",\"cost\":{{\"questions\":{},\"spend\":",
            self.cost.questions
        );
        json_f64(&mut out, self.cost.spend);
        let _ = write!(out, ",\"budget_stops\":{}}}", self.cost.budget_stops);
        out.push_str(",\"latency\":{\"sim_makespan\":");
        json_f64(&mut out, self.latency.sim_makespan);
        out.push_str(",\"latency_sum\":");
        json_f64(&mut out, self.latency.latency_sum);
        out.push_str(",\"p50\":");
        json_f64(&mut out, self.latency.p50);
        out.push_str(",\"p95\":");
        json_f64(&mut out, self.latency.p95);
        let _ = write!(out, ",\"waves\":{}}}", self.latency.waves);
        let _ = write!(
            out,
            ",\"inference\":{{\"runs\":{},\"iterations\":{},\"converged\":{}}}",
            self.inference.runs, self.inference.iterations, self.inference.converged
        );
        let _ = write!(
            out,
            ",\"provenance\":{{\"runs\":{},\"contested\":{},\"flips\":{},\"margin_mean\":",
            self.provenance.runs, self.provenance.contested, self.provenance.flips
        );
        json_f64(&mut out, self.provenance.margin_mean);
        out.push('}');
        out.push_str(",\"quality\":{");
        for (i, (metric, value)) in self.quality.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_key(&mut out, metric);
            json_f64(&mut out, *value);
        }
        out.push_str("},\"events\":{");
        for (i, (key, count)) in self.event_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_key(&mut out, key);
            let _ = write!(out, "{count}");
        }
        out.push_str("}}");
        out
    }
}

/// A suite-level report: one [`ExperimentReport`] per experiment plus
/// totals.
#[derive(Debug, Clone, Default, PartialEq)]
#[must_use = "a distilled report is pure data; dropping it discards the run's telemetry"]
pub struct RunReport {
    /// Per-experiment reports, in registry order.
    pub experiments: Vec<ExperimentReport>,
}

impl RunReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total crowd questions across all experiments.
    #[must_use]
    pub fn total_questions(&self) -> u64 {
        self.experiments.iter().map(|e| e.cost.questions).sum()
    }

    /// Total crowd spend across all experiments.
    #[must_use]
    pub fn total_spend(&self) -> f64 {
        self.experiments.iter().map(|e| e.cost.spend).sum()
    }

    /// Total wall-clock milliseconds across all experiments.
    #[must_use]
    pub fn total_wall_ms(&self) -> u64 {
        self.experiments.iter().map(|e| e.wall_ms).sum()
    }

    /// Renders the full report as pretty-enough JSON (one experiment per
    /// line) — the `RUNREPORT.json` format.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\n  \"experiments\": {},\n  \"total_questions\": {},\n  \"total_spend\": ",
            self.experiments.len(),
            self.total_questions()
        );
        json_f64(&mut out, self.total_spend());
        let _ = write!(out, ",\n  \"total_wall_ms\": {},", self.total_wall_ms());
        out.push_str("\n  \"runs\": [");
        for (i, exp) in self.experiments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&exp.to_json());
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::recorder::Recorder;

    fn sample_recorder() -> MemoryRecorder {
        let rec = MemoryRecorder::new();
        rec.record(
            Event::new("platform.batch")
                .u64("delivered", 10)
                .f64("spend", 1.5)
                .f64("makespan", 30.0)
                .f64("latency_sum", 120.0)
                .u64("budget_stopped", 1),
        );
        rec.record(Event::new("assign.wave").u64("wave", 0));
        rec.record(
            Event::new("truth.run")
                .str("algo", "ds")
                .u64("iters", 12)
                .u64("converged", 1),
        );
        rec.record(Event::new("exp.quality").str("metric", "accuracy").f64("value", 0.9));
        rec.record(
            Event::new("prov.run")
                .str("algo", "ds")
                .u64("tasks", 20)
                .u64("contested", 3)
                .u64("flips", 5)
                .f64("margin_mean", 0.8),
        );
        rec.sample("platform.latency", 12.0);
        rec
    }

    #[test]
    fn report_distils_cost_latency_quality() {
        let rec = sample_recorder();
        let rep = ExperimentReport::from_recorder("e99", "demo", 42, &rec);
        assert_eq!(rep.cost.questions, 10);
        assert_eq!(rep.cost.spend, 1.5);
        assert_eq!(rep.cost.budget_stops, 1);
        assert_eq!(rep.latency.sim_makespan, 30.0);
        assert_eq!(rep.latency.latency_sum, 120.0);
        assert_eq!(rep.latency.waves, 1);
        assert!(rep.latency.p50 > 0.0);
        assert_eq!(rep.inference.runs, 1);
        assert_eq!(rep.inference.iterations, 12);
        assert_eq!(rep.inference.converged, 1);
        assert_eq!(rep.provenance.runs, 1);
        assert_eq!(rep.provenance.contested, 3);
        assert_eq!(rep.provenance.flips, 5);
        assert_eq!(rep.provenance.margin_mean, 0.8);
        assert_eq!(rep.quality, vec![("accuracy".to_owned(), 0.9)]);
        assert!(rep.event_counts.iter().any(|(k, n)| k == "truth.run" && *n == 1));
    }

    #[test]
    fn run_report_json_is_wellformed_enough() {
        let rec = sample_recorder();
        let mut run = RunReport::new();
        run.experiments
            .push(ExperimentReport::from_recorder("e99", "demo", 42, &rec));
        let json = run.to_json();
        assert!(json.contains("\"experiments\": 1"));
        assert!(json.contains("\"total_questions\": 10"));
        assert!(json.contains("\"id\":\"e99\""));
        assert!(json.contains("\"accuracy\":0.9"));
        assert!(json.contains("\"provenance\":{\"runs\":1,\"contested\":3"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_report_renders() {
        let json = RunReport::new().to_json();
        assert!(json.contains("\"experiments\": 0"));
        assert!(json.contains("\"runs\": ["));
    }
}
