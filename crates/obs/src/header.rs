//! The versioned stream header.
//!
//! A JSONL run log opens with one header line describing what produced the
//! stream: schema version, git revision, seed, worker-thread count and a
//! workload id. The header is metadata, not an event — consumers
//! ([`crowdkit-trace`]'s loader) validate it on load and use it to decide
//! whether two streams are even comparable (same schema, same workload)
//! before diffing their events.
//!
//! The header line is distinguishable from event lines by its first key:
//! events open with `"key"`, headers with `"stream"`.
//!
//! Determinism note: `git_rev` and `workload` are pure functions of the
//! checkout and the run configuration; `threads` is configuration, not a
//! measurement. Two runs of the same workload at different thread counts
//! differ *only* in the header's `threads` value — their event bodies stay
//! byte-identical, which is exactly the invariant `crowdtrace diff`
//! checks.
//!
//! [`crowdkit-trace`]: https://docs.rs/crowdkit-trace

use std::fmt::Write as _;

use crate::event::FieldValue;

/// The stream schema version this crate writes. Bump when the event JSON
/// layout or the header key set changes incompatibly.
pub const STREAM_SCHEMA_VERSION: u32 = 1;

/// The value of the header's `stream` discriminant key.
pub const STREAM_MAGIC: &str = "crowdkit-obs";

/// Metadata describing one captured run log; serialized as the stream's
/// first line.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct StreamHeader {
    /// Stream schema version ([`STREAM_SCHEMA_VERSION`] when written by
    /// this crate).
    pub schema: u32,
    /// Short git revision of the producing checkout (`"unknown"` outside
    /// a checkout).
    pub git_rev: String,
    /// The run's top-level seed (0 for fixed-seed workload suites).
    pub seed: u64,
    /// Worker-thread count the run was configured with.
    pub threads: u32,
    /// Workload identifier (e.g. `"experiments:all"`).
    pub workload: String,
}

impl StreamHeader {
    /// A header for the current schema version.
    pub fn new(
        git_rev: impl Into<String>,
        seed: u64,
        threads: u32,
        workload: impl Into<String>,
    ) -> Self {
        Self {
            schema: STREAM_SCHEMA_VERSION,
            git_rev: git_rev.into(),
            seed,
            threads,
            workload: workload.into(),
        }
    }

    /// Renders the header as one JSON object (no trailing newline), with
    /// a fixed key order so identical metadata yields identical bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, "{{\"stream\":\"{STREAM_MAGIC}\",\"schema\":{}", self.schema);
        out.push_str(",\"git_rev\":");
        FieldValue::Str(self.git_rev.clone()).write_json(&mut out);
        let _ = write!(out, ",\"seed\":{},\"threads\":{}", self.seed, self.threads);
        out.push_str(",\"workload\":");
        FieldValue::Str(self.workload.clone()).write_json(&mut out);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_renders_with_fixed_key_order() {
        let h = StreamHeader::new("abc1234", 7, 8, "experiments:all");
        assert_eq!(
            h.to_json(),
            "{\"stream\":\"crowdkit-obs\",\"schema\":1,\"git_rev\":\"abc1234\",\
             \"seed\":7,\"threads\":8,\"workload\":\"experiments:all\"}"
        );
    }

    #[test]
    fn header_escapes_string_fields() {
        let h = StreamHeader::new("a\"b", 0, 1, "w\\x");
        let j = h.to_json();
        assert!(j.contains("\"git_rev\":\"a\\\"b\""));
        assert!(j.contains("\"workload\":\"w\\\\x\""));
    }
}
