//! Recorder hierarchy: where events go.
//!
//! Everything implements [`Recorder`]. The instrumented layers call
//! [`crate::current`] to get the active recorder and emit into it; which
//! concrete recorder that is decides the cost:
//!
//! * [`NullRecorder`] — the default. `enabled()` is `false`, so
//!   instrumentation sites skip event construction entirely; the residual
//!   cost is one thread-local read and a branch.
//! * [`MemoryRecorder`] — aggregates in memory: per-key event counts,
//!   per-`(key, field)` sum/min/max, and log-scale histograms for
//!   [`sample`](Recorder::sample) calls. `detail()` is `false`, so
//!   per-assignment events are skipped and only wave/run summaries land.
//! * [`JsonlRecorder`] — writes one JSON object per event to a buffer or
//!   file, the replayable run log. `detail()` is `true`.
//! * [`Tee`] — fans out to two recorders (e.g. aggregate + JSONL).
//! * [`ShardBuffers`] — N ordered shards, each buffering events from one
//!   logical stream (e.g. one experiment); flushing replays shards in index
//!   order so a parallel harness still yields one fixed-order stream.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::Event;
use crate::histogram::LogHistogram;

/// A destination for telemetry events and latency samples.
///
/// Implementations must be thread-safe: instrumented layers run under the
/// worker pool and may record from any thread. Determinism is the *caller's*
/// contract — layers emit events only from sequential, fixed-order code
/// paths — so recorders never need to sort.
pub trait Recorder: Send + Sync {
    /// Whether this recorder wants events at all. Instrumentation sites
    /// check this before building an [`Event`], so a disabled recorder
    /// costs one branch.
    fn enabled(&self) -> bool;

    /// Whether this recorder wants high-volume detail events (e.g. one
    /// event per crowd assignment). Defaults to [`enabled`](Self::enabled);
    /// aggregating recorders override it to `false`.
    fn detail(&self) -> bool {
        self.enabled()
    }

    /// Records one structured event.
    fn record(&self, event: Event);

    /// Records one scalar latency-style sample under `key`.
    fn sample(&self, key: &'static str, value: f64);
}

impl<R: Recorder + ?Sized> Recorder for Arc<R> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn detail(&self) -> bool {
        (**self).detail()
    }

    fn record(&self, event: Event) {
        (**self).record(event);
    }

    fn sample(&self, key: &'static str, value: f64) {
        (**self).sample(key, value);
    }
}

/// The do-nothing recorder; the process-wide default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}

    fn sample(&self, _key: &'static str, _value: f64) {}
}

/// Sum/min/max/count aggregate of one numeric field across events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldStats {
    /// Number of events carrying the field.
    pub count: u64,
    /// Sum of the field across those events.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl FieldStats {
    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for FieldStats {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

#[derive(Default)]
struct MemoryState {
    event_counts: BTreeMap<&'static str, u64>,
    field_stats: BTreeMap<(&'static str, &'static str), FieldStats>,
    grouped: BTreeMap<(&'static str, String, &'static str), FieldStats>,
}

/// In-memory aggregating recorder: counts events by key, aggregates every
/// numeric field, and buckets [`sample`](Recorder::sample) calls into
/// log-scale histograms. Cheap enough to leave on for whole experiment
/// suites; skips per-assignment detail events.
#[derive(Default)]
pub struct MemoryRecorder {
    state: Mutex<MemoryState>,
    histograms: Mutex<BTreeMap<&'static str, Arc<LogHistogram>>>,
}

impl MemoryRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded under `key`.
    pub fn count(&self, key: &str) -> u64 {
        *self.state.lock().event_counts.get(key).unwrap_or(&0)
    }

    /// Aggregate of field `field` across all `key` events, if any such
    /// event carried it.
    pub fn field_stats(&self, key: &str, field: &str) -> Option<FieldStats> {
        self.state
            .lock()
            .field_stats
            .get(&(key, field))
            .map(|s| FieldStats {
                count: s.count,
                sum: s.sum,
                min: s.min,
                max: s.max,
            })
            .filter(|s| s.count > 0)
    }

    /// Sum of field `field` across all `key` events (0 when absent).
    pub fn field_sum(&self, key: &str, field: &str) -> f64 {
        self.field_stats(key, field).map_or(0.0, |s| s.sum)
    }

    /// The histogram accumulated for sample key `key`, if any samples
    /// arrived.
    pub fn histogram(&self, key: &str) -> Option<Arc<LogHistogram>> {
        self.histograms.lock().get(key).cloned()
    }

    /// All event keys seen, in lexicographic order, with counts.
    pub fn event_counts(&self) -> Vec<(&'static str, u64)> {
        self.state
            .lock()
            .event_counts
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// All `(key, field)` aggregates, in lexicographic order.
    pub fn all_field_stats(&self) -> Vec<((&'static str, &'static str), FieldStats)> {
        self.state
            .lock()
            .field_stats
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// All sample histograms, in lexicographic key order.
    pub fn all_histograms(&self) -> Vec<(&'static str, Arc<LogHistogram>)> {
        self.histograms
            .lock()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// The distinct group labels seen for `key` events, in lexicographic
    /// order. An event's group is the `:`-joined values of its string
    /// fields (e.g. a `sql.node` event with `node = "CrowdFilter"` lands in
    /// group `"CrowdFilter"`); events with no string field are ungrouped.
    pub fn groups(&self, key: &str) -> Vec<String> {
        let state = self.state.lock();
        let mut out: Vec<String> = state
            .grouped
            .keys()
            .filter(|(k, _, _)| *k == key)
            .map(|(_, g, _)| g.clone())
            .collect();
        out.dedup();
        out
    }

    /// Aggregate of numeric field `field` across `key` events in `group`.
    pub fn grouped_field_stats(&self, key: &str, group: &str, field: &str) -> Option<FieldStats> {
        self.state
            .lock()
            .grouped
            .iter()
            .find(|((k, g, f), _)| *k == key && g == group && *f == field)
            .map(|(_, s)| *s)
            .filter(|s| s.count > 0)
    }
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn detail(&self) -> bool {
        false
    }

    fn record(&self, event: Event) {
        let mut state = self.state.lock();
        *state.event_counts.entry(event.key).or_insert(0) += 1;
        let mut group: Option<String> = None;
        for (name, value) in &event.fields {
            if let crate::event::FieldValue::Str(s) = value {
                match &mut group {
                    None => group = Some(s.clone()),
                    Some(g) => {
                        g.push(':');
                        g.push_str(s);
                    }
                }
                continue;
            }
            state
                .field_stats
                .entry((event.key, name))
                .or_default()
                .observe(value.as_f64());
        }
        if let Some(group) = group {
            for (name, value) in &event.fields {
                if matches!(value, crate::event::FieldValue::Str(_)) {
                    continue;
                }
                state
                    .grouped
                    .entry((event.key, group.clone(), name))
                    .or_default()
                    .observe(value.as_f64());
            }
        }
        for (name, ns) in &event.wall_fields {
            state
                .field_stats
                .entry((event.key, name))
                .or_default()
                .observe(*ns as f64);
        }
    }

    fn sample(&self, key: &'static str, value: f64) {
        let hist = {
            let mut map = self.histograms.lock();
            map.entry(key).or_insert_with(|| Arc::new(LogHistogram::new())).clone()
        };
        hist.record(value);
    }
}

enum Sink {
    Memory(Mutex<Vec<u8>>),
    File(Mutex<BufWriter<File>>),
}

/// Line-per-event JSON recorder: the replayable run log.
///
/// With [`with_wall(false)`](JsonlRecorder::with_wall) the stream contains
/// only deterministic fields, so two runs of the same workload diff clean
/// byte for byte — at any thread count.
pub struct JsonlRecorder {
    sink: Sink,
    include_wall: bool,
}

impl JsonlRecorder {
    /// A recorder buffering lines in memory; read back with
    /// [`take_bytes`](JsonlRecorder::take_bytes).
    pub fn in_memory() -> Self {
        Self {
            sink: Sink::Memory(Mutex::new(Vec::new())),
            include_wall: true,
        }
    }

    /// A recorder streaming lines to `path` (truncating any existing file).
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            sink: Sink::File(Mutex::new(BufWriter::new(file))),
            include_wall: true,
        })
    }

    /// Sets whether wall-clock data (`wall_ns` and wall fields) is written.
    /// Turn it off for determinism-diffable streams.
    pub fn with_wall(mut self, include_wall: bool) -> Self {
        self.include_wall = include_wall;
        self
    }

    /// Writes the versioned stream header as one line. Call before any
    /// event lands so the header stays the first line of the stream —
    /// loaders ([`crowdkit-trace`]) validate it there.
    ///
    /// [`crowdkit-trace`]: https://docs.rs/crowdkit-trace
    pub fn write_header(&self, header: &crate::header::StreamHeader) {
        let mut line = header.to_json();
        line.push('\n');
        match &self.sink {
            Sink::Memory(buf) => buf.lock().extend_from_slice(line.as_bytes()),
            Sink::File(w) => {
                let _ = w.lock().write_all(line.as_bytes());
            }
        }
    }

    /// Drains and returns the buffered bytes (in-memory sink only; empty
    /// for file sinks). Flushes file sinks as a side effect.
    pub fn take_bytes(&self) -> Vec<u8> {
        match &self.sink {
            Sink::Memory(buf) => std::mem::take(&mut *buf.lock()),
            Sink::File(w) => {
                let _ = w.lock().flush();
                Vec::new()
            }
        }
    }

    /// Flushes a file sink; no-op for memory sinks.
    pub fn flush(&self) {
        if let Sink::File(w) = &self.sink {
            let _ = w.lock().flush();
        }
    }
}

impl Recorder for JsonlRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let mut line = event.to_json(self.include_wall);
        line.push('\n');
        match &self.sink {
            Sink::Memory(buf) => buf.lock().extend_from_slice(line.as_bytes()),
            Sink::File(w) => {
                let _ = w.lock().write_all(line.as_bytes());
            }
        }
    }

    fn sample(&self, _key: &'static str, _value: f64) {
        // Samples are aggregate-only; the JSONL stream carries events.
    }
}

/// Fans every event and sample out to two recorders.
pub struct Tee<A, B>(pub A, pub B);

impl<A: Recorder, B: Recorder> Recorder for Tee<A, B> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn detail(&self) -> bool {
        self.0.detail() || self.1.detail()
    }

    fn record(&self, event: Event) {
        if self.0.enabled() {
            self.1.record(event.clone());
            self.0.record(event);
        } else {
            self.1.record(event);
        }
    }

    fn sample(&self, key: &'static str, value: f64) {
        self.0.sample(key, value);
        self.1.sample(key, value);
    }
}

/// N ordered event buffers. Hand shard `i` to the worker producing stream
/// `i` (via [`shard`](ShardBuffers::shard)); after the workers join,
/// [`flush_to`](ShardBuffers::flush_to) replays the shards in index order,
/// turning parallel production into one fixed-order stream.
pub struct ShardBuffers {
    shards: Arc<Vec<Mutex<Vec<Event>>>>,
    detail: bool,
}

/// A [`Recorder`] handle bound to one shard of a [`ShardBuffers`].
pub struct ShardRecorder {
    shards: Arc<Vec<Mutex<Vec<Event>>>>,
    index: usize,
    detail: bool,
}

impl ShardBuffers {
    /// `n` empty shards. `detail` sets what the shard handles report from
    /// [`Recorder::detail`].
    pub fn new(n: usize, detail: bool) -> Self {
        Self {
            shards: Arc::new((0..n).map(|_| Mutex::new(Vec::new())).collect()),
            detail,
        }
    }

    /// The recorder handle for shard `index`.
    ///
    /// # Panics
    /// If `index` is out of range.
    pub fn shard(&self, index: usize) -> ShardRecorder {
        assert!(index < self.shards.len(), "shard index out of range");
        ShardRecorder {
            shards: self.shards.clone(),
            index,
            detail: self.detail,
        }
    }

    /// Drains every shard into `target`, in shard index order.
    pub fn flush_to(&self, target: &dyn Recorder) {
        for shard in self.shards.iter() {
            for event in shard.lock().drain(..) {
                target.record(event);
            }
        }
    }
}

impl Recorder for ShardRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn detail(&self) -> bool {
        self.detail
    }

    fn record(&self, event: Event) {
        self.shards[self.index].lock().push(event);
    }

    fn sample(&self, _key: &'static str, _value: f64) {
        // Shard buffers carry events only; attach a Tee'd MemoryRecorder
        // when sample aggregation is needed.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        let r = NullRecorder;
        assert!(!r.enabled());
        assert!(!r.detail());
        r.record(Event::new("x"));
        r.sample("y", 1.0);
    }

    #[test]
    fn memory_recorder_aggregates_counts_and_fields() {
        let r = MemoryRecorder::new();
        r.record(Event::new("a.b").u64("n", 3).f64("x", 1.5));
        r.record(Event::new("a.b").u64("n", 5).f64("x", 0.5));
        r.record(Event::new("c.d"));
        assert_eq!(r.count("a.b"), 2);
        assert_eq!(r.count("c.d"), 1);
        assert_eq!(r.count("missing"), 0);
        let n = r.field_stats("a.b", "n").unwrap();
        assert_eq!(n.count, 2);
        assert_eq!(n.sum, 8.0);
        assert_eq!(n.min, 3.0);
        assert_eq!(n.max, 5.0);
        assert_eq!(n.mean(), 4.0);
        assert_eq!(r.field_sum("a.b", "x"), 2.0);
        assert!(r.field_stats("a.b", "missing").is_none());
    }

    #[test]
    fn memory_recorder_groups_by_string_fields() {
        let r = MemoryRecorder::new();
        r.record(Event::new("exp.quality").str("metric", "accuracy").f64("value", 0.8));
        r.record(Event::new("exp.quality").str("metric", "accuracy").f64("value", 0.9));
        r.record(Event::new("exp.quality").str("metric", "f1").f64("value", 0.5));
        assert_eq!(r.groups("exp.quality"), vec!["accuracy", "f1"]);
        let acc = r.grouped_field_stats("exp.quality", "accuracy", "value").unwrap();
        assert_eq!(acc.count, 2);
        assert!((acc.mean() - 0.85).abs() < 1e-12);
        assert!(r.grouped_field_stats("exp.quality", "missing", "value").is_none());
        // Ungrouped aggregate still sees every event.
        assert_eq!(r.field_stats("exp.quality", "value").unwrap().count, 3);
    }

    #[test]
    fn memory_recorder_histograms_samples() {
        let r = MemoryRecorder::new();
        r.sample("lat", 1.0);
        r.sample("lat", 2.0);
        assert_eq!(r.histogram("lat").unwrap().count(), 2);
        assert!(r.histogram("other").is_none());
    }

    #[test]
    fn jsonl_memory_sink_roundtrip() {
        let r = JsonlRecorder::in_memory().with_wall(false);
        r.record(Event::new("k").at(1.0).u64("n", 2));
        r.record(Event::new("k2"));
        let text = String::from_utf8(r.take_bytes()).unwrap();
        assert_eq!(text, "{\"key\":\"k\",\"sim\":1,\"n\":2}\n{\"key\":\"k2\"}\n");
        assert!(r.take_bytes().is_empty());
    }

    #[test]
    fn jsonl_header_is_the_first_line() {
        let r = JsonlRecorder::in_memory().with_wall(false);
        r.write_header(&crate::header::StreamHeader::new("deadbee", 42, 4, "unit"));
        r.record(Event::new("k"));
        let text = String::from_utf8(r.take_bytes()).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("{\"stream\":\"crowdkit-obs\",\"schema\":1,"));
        assert!(header.contains("\"seed\":42"));
        assert_eq!(lines.next(), Some("{\"key\":\"k\"}"));
    }

    #[test]
    fn tee_duplicates_events() {
        let tee = Tee(MemoryRecorder::new(), MemoryRecorder::new());
        tee.record(Event::new("k").u64("n", 1));
        tee.sample("s", 3.0);
        assert_eq!(tee.0.count("k"), 1);
        assert_eq!(tee.1.count("k"), 1);
        assert_eq!(tee.0.histogram("s").unwrap().count(), 1);
        assert!(!tee.detail(), "two aggregators should not request detail");
    }

    #[test]
    fn shard_buffers_flush_in_index_order() {
        let shards = ShardBuffers::new(3, true);
        // Fill out of order, as parallel workers would.
        shards.shard(2).record(Event::new("c"));
        shards.shard(0).record(Event::new("a"));
        shards.shard(1).record(Event::new("b"));
        shards.shard(0).record(Event::new("a2"));
        let out = JsonlRecorder::in_memory().with_wall(false);
        shards.flush_to(&out);
        let text = String::from_utf8(out.take_bytes()).unwrap();
        let keys: Vec<&str> = text.lines().collect();
        assert_eq!(
            keys,
            vec![
                "{\"key\":\"a\"}",
                "{\"key\":\"a2\"}",
                "{\"key\":\"b\"}",
                "{\"key\":\"c\"}"
            ]
        );
    }
}
