//! The structured event model.
//!
//! An [`Event`] is one record in a run's telemetry stream: a static key
//! naming what happened, an optional *simulated*-clock timestamp, a
//! wall-clock timestamp, and two field lists. The split between
//! [`fields`](Event::fields) and [`wall_fields`](Event::wall_fields) is the
//! determinism boundary of the whole subsystem:
//!
//! * `fields` carry only values that are pure functions of the run's seed
//!   and inputs (counts, simulated times, spend, convergence deltas). Two
//!   runs of the same workload — at *any* thread count — produce identical
//!   `key`/`sim_time`/`fields` sequences.
//! * `wall_fields` carry host-side measurements (phase timings in
//!   nanoseconds) that vary run to run. Sinks that care about replayable,
//!   diffable streams drop them (see
//!   [`JsonlRecorder::with_wall`](crate::recorder::JsonlRecorder::with_wall)).

use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

/// A field value: the closed set of types events may carry.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned counter or id.
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// A real-valued measurement (simulated seconds, currency units, …).
    F64(f64),
    /// A short label (task kind, algorithm name, predicate).
    Str(String),
}

impl FieldValue {
    /// The value as `f64`, for aggregation (strings aggregate as 0).
    pub fn as_f64(&self) -> f64 {
        match self {
            FieldValue::U64(v) => *v as f64,
            FieldValue::I64(v) => *v as f64,
            FieldValue::F64(v) => *v,
            FieldValue::Str(_) => 0.0,
        }
    }

    /// Appends the value to `out` as a JSON literal. Non-finite floats
    /// become `null` so the line stays valid JSON.
    pub fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            FieldValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
        }
    }
}

/// Nanoseconds since the first telemetry event of the process. Wall-clock
/// only — never feed this into anything determinism-sensitive.
pub fn wall_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A wall-clock stopwatch whose readings are only good for
/// [`Event::wall`] fields.
///
/// This is the sanctioned way for instrumented code to time a phase:
/// `Instant::now()` outside the obs event layer trips the workspace lint
/// (DET002), because ad-hoc wall-clock reads are exactly how
/// nondeterministic values leak into serialized streams. A `WallTimer`
/// keeps the measurement inside the wall-clock-segregated side of the
/// event model by construction.
///
/// ```
/// use crowdkit_obs::{Event, WallTimer};
/// let t = WallTimer::start();
/// let e = Event::new("phase.done").wall("t_ns", t.elapsed_ns());
/// assert_eq!(e.wall_fields.len(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WallTimer(u64);

impl WallTimer {
    /// Starts the stopwatch.
    pub fn start() -> Self {
        Self(wall_ns())
    }

    /// Nanoseconds elapsed since [`start`](Self::start).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        wall_ns().saturating_sub(self.0)
    }
}

/// One structured telemetry record. Build with the fluent methods:
///
/// ```
/// use crowdkit_obs::Event;
/// let e = Event::new("platform.batch")
///     .at(12.5)
///     .u64("requests", 40)
///     .f64("spend", 120.0);
/// assert_eq!(e.key, "platform.batch");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dotted event name, `layer.what` (`"platform.batch"`, `"truth.iter"`).
    pub key: &'static str,
    /// Simulated-clock timestamp in seconds, when the emitting layer has a
    /// simulated clock.
    pub sim_time: Option<f64>,
    /// Wall-clock timestamp (nanoseconds since process telemetry epoch).
    pub wall_ns: u64,
    /// Deterministic payload: identical across runs and thread counts.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Host-timing payload (phase durations in ns); excluded from
    /// determinism-sensitive output.
    pub wall_fields: Vec<(&'static str, u64)>,
}

impl Event {
    /// Starts an event with the given key, stamped with the current wall
    /// clock.
    pub fn new(key: &'static str) -> Self {
        Self {
            key,
            sim_time: None,
            wall_ns: wall_ns(),
            fields: Vec::new(),
            wall_fields: Vec::new(),
        }
    }

    /// Sets the simulated-clock timestamp.
    pub fn at(mut self, sim_time: f64) -> Self {
        self.sim_time = Some(sim_time);
        self
    }

    /// Adds an unsigned field.
    pub fn u64(mut self, name: &'static str, value: u64) -> Self {
        self.fields.push((name, FieldValue::U64(value)));
        self
    }

    /// Adds a signed field.
    pub fn i64(mut self, name: &'static str, value: i64) -> Self {
        self.fields.push((name, FieldValue::I64(value)));
        self
    }

    /// Adds a real-valued field.
    pub fn f64(mut self, name: &'static str, value: f64) -> Self {
        self.fields.push((name, FieldValue::F64(value)));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.fields.push((name, FieldValue::Str(value.into())));
        self
    }

    /// Adds a wall-clock timing field (nanoseconds).
    pub fn wall(mut self, name: &'static str, ns: u64) -> Self {
        self.wall_fields.push((name, ns));
        self
    }

    /// Looks up a deterministic field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// Renders the event as one JSON object (no trailing newline).
    /// `include_wall` controls whether `wall_ns` and the wall fields are
    /// written; with it off, the output is a pure function of the run's
    /// seed and inputs.
    pub fn to_json(&self, include_wall: bool) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        out.push_str("{\"key\":");
        FieldValue::Str(self.key.to_owned()).write_json(&mut out);
        if let Some(t) = self.sim_time {
            out.push_str(",\"sim\":");
            FieldValue::F64(t).write_json(&mut out);
        }
        if include_wall {
            let _ = write!(out, ",\"wall_ns\":{}", self.wall_ns);
        }
        for (name, value) in &self.fields {
            out.push_str(",\"");
            out.push_str(name);
            out.push_str("\":");
            value.write_json(&mut out);
        }
        if include_wall {
            for (name, ns) in &self.wall_fields {
                let _ = write!(out, ",\"{name}\":{ns}");
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_fields_in_order() {
        let e = Event::new("x.y")
            .at(1.5)
            .u64("a", 7)
            .f64("b", 0.25)
            .str("c", "hi")
            .wall("t_ns", 99);
        assert_eq!(e.key, "x.y");
        assert_eq!(e.sim_time, Some(1.5));
        assert_eq!(e.field("a"), Some(&FieldValue::U64(7)));
        assert_eq!(e.fields.len(), 3);
        assert_eq!(e.wall_fields, vec![("t_ns", 99)]);
    }

    #[test]
    fn json_excludes_wall_fields_when_asked() {
        let e = Event::new("k").at(2.0).u64("n", 3).wall("t_ns", 42);
        let with = e.to_json(true);
        let without = e.to_json(false);
        assert!(with.contains("\"wall_ns\":"));
        assert!(with.contains("\"t_ns\":42"));
        assert!(!without.contains("wall"));
        assert!(!without.contains("t_ns"));
        assert_eq!(without, "{\"key\":\"k\",\"sim\":2,\"n\":3}");
    }

    #[test]
    fn json_escapes_strings_and_guards_nonfinite() {
        let e = Event::new("k")
            .str("s", "a\"b\\c\nd")
            .f64("nan", f64::NAN)
            .f64("inf", f64::INFINITY);
        let j = e.to_json(false);
        assert!(j.contains("\"s\":\"a\\\"b\\\\c\\nd\""));
        assert!(j.contains("\"nan\":null"));
        assert!(j.contains("\"inf\":null"));
    }

    #[test]
    fn wall_clock_is_monotone() {
        let a = wall_ns();
        let b = wall_ns();
        assert!(b >= a);
    }
}
