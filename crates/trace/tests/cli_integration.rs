//! End-to-end checks of the `crowdtrace` binary against streams produced
//! by the real instrumented kernels.
//!
//! Fixtures are generated at runtime into a per-test temp directory (the
//! workspace gitignores `*.jsonl`, so nothing here relies on committed
//! stream files): a simulated-crowd batch run plus a Dawid–Skene
//! inference run, recorded under a versioned stream header exactly the
//! way `experiments -- all --log` records them.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crowdkit_obs as obs;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::latency::LatencyModel;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::PlatformBuilder;
use crowdkit_trace::diff::first_divergence;
use crowdkit_trace::replay::replay;
use crowdkit_trace::stream::parse_stream;
use crowdkit_truth::em::EmConfig;
use crowdkit_truth::{pipeline::label_tasks, DawidSkene};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// A unique, freshly created scratch directory for one test.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "crowdtrace-it-{}-{}-{}",
        std::process::id(),
        tag,
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Records one instrumented run — a batched crowd purchase followed by
/// Dawid–Skene inference — as a headered JSONL stream.
fn record_run(seed: u64, threads: usize, include_wall: bool) -> Vec<u8> {
    let rec = Arc::new(obs::JsonlRecorder::in_memory().with_wall(include_wall));
    rec.write_header(&obs::StreamHeader::new(
        "test-rev",
        seed,
        threads as u32,
        "it:batch+ds",
    ));
    obs::with_recorder(rec.clone(), || {
        obs::record(obs::Event::new("exp.begin").str("id", "it"));
        let pop = PopulationBuilder::new().reliable(30, 0.7, 0.95).build(seed);
        let crowd = PlatformBuilder::new(pop)
            .latency(LatencyModel::human_default())
            .seed(seed)
            .threads(threads)
            .build();
        let tasks = LabelingDataset::binary(40, seed).tasks;
        let ds = DawidSkene::with_config(EmConfig {
            threads,
            ..EmConfig::default()
        });
        label_tasks(&crowd, &tasks, 3, &ds).expect("pipeline succeeds");
        obs::record(obs::Event::new("exp.end").str("id", "it"));
    });
    rec.take_bytes()
}

fn write_stream(dir: &std::path::Path, name: &str, bytes: &[u8]) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, bytes).expect("write stream fixture");
    path
}

fn crowdtrace(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_crowdtrace"))
        .args(args)
        .output()
        .expect("spawn crowdtrace")
}

#[test]
fn diff_localizes_the_first_divergent_event_between_seeds() {
    let dir = scratch_dir("seed-diff");
    let a = write_stream(&dir, "a.jsonl", &record_run(1, 2, false));
    let b = write_stream(&dir, "b.jsonl", &record_run(2, 2, false));

    // Library-level: the divergence names a line and a key in each stream.
    let sa = parse_stream(&std::fs::read_to_string(&a).unwrap()).unwrap();
    let sb = parse_stream(&std::fs::read_to_string(&b).unwrap()).unwrap();
    let d = first_divergence(&sa, &sb).expect("different seeds must diverge");
    assert!(d.line_a >= 2, "events start after the header line");
    assert!(!d.key_a.is_empty());
    assert!(!d.detail.is_empty());

    // CLI-level: exit 1, report mentions the same line and key.
    let out = crowdtrace(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "divergent streams exit 1");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("first divergent event"), "got:\n{text}");
    assert!(
        text.contains(&format!("line {}", d.line_a)),
        "report must carry the line number, got:\n{text}"
    );
    assert!(text.contains(&d.key_a), "report must carry the key");
}

#[test]
fn same_seed_streams_are_byte_identical_across_thread_counts() {
    let dir = scratch_dir("thread-inv");
    let one = record_run(7, 1, false);
    for threads in [2usize, 8] {
        let other = record_run(7, threads, false);
        // Bodies are byte-identical; only the header's threads field may
        // differ. Compare everything after the first newline.
        let body = |b: &[u8]| {
            let split = b.iter().position(|&c| c == b'\n').unwrap() + 1;
            b[split..].to_vec()
        };
        assert_eq!(
            body(&one),
            body(&other),
            "event bytes diverged at {threads} threads"
        );
    }
    let a = write_stream(&dir, "t1.jsonl", &one);
    let b = write_stream(&dir, "t8.jsonl", &record_run(7, 8, false));
    let out = crowdtrace(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(
        out.status.code(),
        Some(0),
        "same-seed different-thread-count streams must compare identical, got:\n{text}"
    );
    assert!(text.contains("identical"), "got:\n{text}");
}

#[test]
fn wall_data_never_affects_the_diff_verdict() {
    let dir = scratch_dir("wall-inv");
    let a = write_stream(&dir, "wall.jsonl", &record_run(7, 2, true));
    let b = write_stream(&dir, "nowall.jsonl", &record_run(7, 2, false));
    let out = crowdtrace(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "wall fields are excluded from divergence comparison"
    );
}

#[test]
fn diff_exit_two_on_metric_threshold_breach() {
    let dir = scratch_dir("breach");
    // Different seeds move spend/quality; a zero tolerance on spend must
    // escalate any divergence with a spend delta to exit 2.
    let a = write_stream(&dir, "a.jsonl", &record_run(1, 2, false));
    let b = write_stream(&dir, "b.jsonl", &record_run(2, 2, false));
    let out = crowdtrace(&[
        "diff",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--spend-tol",
        "0.0000001",
        "--quality-tol",
        "0.0000001",
    ]);
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    if text.contains("BREACH") {
        assert_eq!(out.status.code(), Some(2), "breach must exit 2, got:\n{text}");
    } else {
        // Seeds happened to land on identical aggregates — still divergent.
        assert_eq!(out.status.code(), Some(1), "got:\n{text}");
    }
}

#[test]
fn replay_emits_a_valid_collapsed_stack_profile_for_truth_inference() {
    let dir = scratch_dir("folded");
    let stream = write_stream(&dir, "run.jsonl", &record_run(3, 2, true));
    let folded_path = dir.join("run.folded");
    let out = crowdtrace(&[
        "replay",
        stream.to_str().unwrap(),
        "--folded",
        folded_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let report = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(report.contains("truth:ds"), "got:\n{report}");

    let folded = std::fs::read_to_string(&folded_path).expect("folded file written");
    assert!(!folded.is_empty());
    let mut saw_truth_frame = false;
    for line in folded.lines() {
        // Collapsed-stack grammar: `frame(;frame)* <positive integer>`.
        let (stack, weight) = line.rsplit_once(' ').expect("stack and weight");
        assert!(!stack.is_empty() && !stack.starts_with(';') && !stack.ends_with(';'));
        assert!(!stack.contains(";;"), "empty frame in {line:?}");
        let w: u64 = weight.parse().expect("integer weight");
        assert!(w > 0, "zero-weight stacks must be omitted: {line:?}");
        if stack.contains("truth:ds") {
            saw_truth_frame = true;
        }
    }
    assert!(saw_truth_frame, "profile must attribute truth inference");
}

#[test]
fn replay_attributes_questions_and_spend_per_experiment() {
    let stream = record_run(5, 2, false);
    let parsed = parse_stream(std::str::from_utf8(&stream).unwrap()).unwrap();
    let rep = replay(&parsed);
    assert_eq!(rep.experiments.len(), 1);
    let e = &rep.experiments[0];
    assert_eq!(e.id, "it");
    assert_eq!(e.questions, 40 * 3, "3 votes on each of 40 tasks");
    assert!(e.spend > 0.0);
}

#[test]
fn regress_gate_fails_synthetic_regression_and_passes_steady_state() {
    let dir = scratch_dir("regress");
    let history = dir.join("BENCH_HISTORY.jsonl");
    let mut lines = String::new();
    for i in 0..5 {
        lines.push_str(&format!(
            "{{\"git_rev\":\"r{i}\",\"threads\":4,\"algorithms\":{{\"mv\":100,\"ds\":{}}}}}\n",
            1000 + i
        ));
    }
    std::fs::write(&history, lines).unwrap();
    let snapshot = |ds_ns: u64| {
        format!(
            "{{\n  \"workload\": {{\"n_tasks\": 1000, \"redundancy\": 5, \"observations\": 5000}},\n  \
\"threads\": 4,\n  \"git_rev\": \"cur\",\n  \"algorithms\": {{\n    \
\"mv\": {{\"ns_per_iter\": 100}},\n    \"ds\": {{\"ns_per_iter\": {ds_ns}}}\n  }}\n}}\n"
        )
    };

    // ds jumps from a ~1002 median to 1300 — a 29.7% regression.
    let bad = dir.join("bad.json");
    std::fs::write(&bad, snapshot(1300)).unwrap();
    let out = crowdtrace(&[
        "regress",
        "--history",
        history.to_str().unwrap(),
        "--current",
        bad.to_str().unwrap(),
    ]);
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(out.status.code(), Some(1), "regression must fail, got:\n{text}");
    assert!(text.contains("REGRESSION"), "got:\n{text}");

    // Within threshold: passes.
    let good = dir.join("good.json");
    std::fs::write(&good, snapshot(1100)).unwrap();
    let out = crowdtrace(&[
        "regress",
        "--history",
        history.to_str().unwrap(),
        "--current",
        good.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));

    // No history file yet: nothing to regress from, passes.
    let out = crowdtrace(&[
        "regress",
        "--history",
        dir.join("absent.jsonl").to_str().unwrap(),
        "--current",
        good.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn history_subcommand_appends_snapshot_entries() {
    let dir = scratch_dir("history");
    let snapshot = dir.join("BENCH_truth.json");
    std::fs::write(
        &snapshot,
        "{\"threads\": 2, \"git_rev\": \"abc\", \"algorithms\": {\"mv\": {\"ns_per_iter\": 42}}}",
    )
    .unwrap();
    let history = dir.join("hist.jsonl");
    for _ in 0..2 {
        let out = crowdtrace(&[
            "history",
            snapshot.to_str().unwrap(),
            "--history",
            history.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(0));
    }
    let text = std::fs::read_to_string(&history).unwrap();
    let entries = crowdkit_trace::history::parse_history(&text).unwrap();
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].git_rev, "abc");
    assert_eq!(entries[0].ns("mv"), Some(42));
}

#[test]
fn malformed_streams_fail_with_line_numbers() {
    let dir = scratch_dir("malformed");
    let good = record_run(1, 1, false);
    let mut text = String::from_utf8(good).unwrap();
    text.push_str("{\"key\":\"truth.run\",\"algo\":\"ds\",\"iters\":}\n");
    let broken_line = text.lines().count();
    let path = write_stream(&dir, "broken.jsonl", text.as_bytes());
    let out = crowdtrace(&["replay", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(65), "malformed input is a data error");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        err.contains(&format!("line {broken_line}")),
        "error must carry the line number, got: {err}"
    );
}
