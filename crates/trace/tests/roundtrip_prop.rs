//! The serialize → parse → serialize round-trip contract.
//!
//! A loaded stream must reproduce its input byte-for-byte — header line
//! included — or `crowdtrace diff` verdicts could hinge on parser
//! artifacts instead of run behaviour. Streams come from the real
//! instrumented kernels at 1, 2 and 8 worker threads, with and without
//! wall-clock data, across randomized workload shapes and seeds.

use std::sync::Arc;

use crowdkit_obs as obs;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::latency::LatencyModel;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::PlatformBuilder;
use crowdkit_trace::stream::parse_stream;
use crowdkit_truth::em::EmConfig;
use crowdkit_truth::{pipeline::label_tasks, DawidSkene};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// One instrumented pipeline run rendered as a headered JSONL stream.
fn record(n_tasks: usize, seed: u64, threads: usize, include_wall: bool) -> String {
    let rec = Arc::new(obs::JsonlRecorder::in_memory().with_wall(include_wall));
    rec.write_header(&obs::StreamHeader::new(
        "prop-rev",
        seed,
        threads as u32,
        "prop:label+ds",
    ));
    obs::with_recorder(rec.clone(), || {
        let pop = PopulationBuilder::new().reliable(25, 0.7, 0.95).build(seed);
        let crowd = PlatformBuilder::new(pop)
            .latency(LatencyModel::human_default())
            .seed(seed)
            .threads(threads)
            .build();
        let tasks = LabelingDataset::binary(n_tasks, seed).tasks;
        let ds = DawidSkene::with_config(EmConfig {
            threads,
            ..EmConfig::default()
        });
        label_tasks(&crowd, &tasks, 3, &ds).expect("pipeline succeeds");
    });
    String::from_utf8(rec.take_bytes()).expect("streams are UTF-8")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parse_then_serialize_is_byte_exact_at_every_thread_count(
        n_tasks in 10usize..60,
        seed in 0u64..1000,
        include_wall in prop::bool::ANY,
    ) {
        for &threads in &THREAD_COUNTS {
            let text = record(n_tasks, seed, threads, include_wall);
            let parsed = parse_stream(&text)
                .map_err(|e| TestCaseError::fail(format!("parse failed: {e}")))?;
            let header = parsed.header.as_ref()
                .ok_or_else(|| TestCaseError::fail("stream must carry a header"))?;
            prop_assert_eq!(header.threads, threads as u32);
            prop_assert_eq!(header.seed, seed);
            prop_assert_eq!(parsed.has_wall_data(), include_wall);
            prop_assert_eq!(
                parsed.to_jsonl(),
                text,
                "round-trip must be byte-exact at {} threads (wall: {})",
                threads,
                include_wall
            );
        }
    }
}
