//! `crowdkit-trace` — replay, diff, and perf-regression tooling over
//! the `crowdkit-obs` event stream.
//!
//! The obs layer records what a run *did* as a JSONL stream whose
//! deterministic fields are a pure function of `(seed, inputs)`. This
//! crate is the read side of that contract:
//!
//! - [`stream`] loads a stream, validates its versioned header, and
//!   reports malformed lines with line numbers;
//! - [`mod@replay`] rebuilds per-experiment span trees attributing simulated
//!   cost and wall time, and emits collapsed-stack (`folded`) profiles;
//! - [`diff`] localizes the first divergent event between two runs and
//!   gates metric deltas against configurable thresholds;
//! - [`history`] appends bench results to `BENCH_HISTORY.jsonl` and
//!   compares the current run against a rolling median baseline;
//! - [`top`] folds `metrics.snapshot` telemetry deltas back into totals
//!   and renders them as a per-subsystem table;
//! - [`prov`] folds `prov.*` decision-lineage events into per-run records
//!   and renders the `why <task>` and `audit` reports.
//!
//! The `crowdtrace` binary fronts all of these as subcommands.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod diff;
pub mod history;
pub mod json;
pub mod prov;
pub mod replay;
pub mod stream;
pub mod top;

pub use diff::{first_divergence, metric_deltas, render_deltas, DeltaThresholds, Divergence};
pub use history::{
    append_history, git_short_rev, parse_bench_snapshot, parse_history, regress,
    render_history_listing, AlgoTiming, BenchEntry, RegressReport,
};
pub use prov::{render_audit, render_why, ProvView};
pub use replay::{replay, Replay};
pub use stream::{complete_lines, parse_stream, LoadedStream, OwnedEvent, StreamError};
pub use top::{collect, series, series_names, MetricsView, SeriesState};
