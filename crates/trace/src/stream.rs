//! Loading and re-serializing JSONL event streams.
//!
//! A stream is what [`crowdkit_obs::JsonlRecorder`] writes: an optional
//! [`StreamHeader`] line (first key `"stream"`) followed by one event per
//! line (first key `"key"`). The loader is strict — any malformed line is
//! a [`StreamError`] carrying its 1-based line number — and lossless:
//! [`LoadedStream::to_jsonl`] reproduces the input byte for byte
//! (numbers keep their lexemes, fields keep their order).
//!
//! ## Wall-clock segregation on the read side
//!
//! The obs event model splits deterministic fields from wall-clock fields;
//! in the serialized form that split survives only as a naming convention:
//! the reserved `wall_ns` stamp plus any field whose name ends in `_ns` is
//! wall-clock data (`plan_ns`, `exec_ns`, `m_ns`, `e_ns`, `run_ns`).
//! [`OwnedEvent::det_fields`] filters them out, which is what `crowdtrace
//! diff` compares — so this crate *reads* wall fields (for replay
//! attribution) but never reads the wall clock itself.

use std::fmt;

use crowdkit_obs::{StreamHeader, STREAM_MAGIC, STREAM_SCHEMA_VERSION};

use crate::json::{self, write_json_string, Json};

/// A load failure at a specific line of the stream file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamError {
    /// 1-based line number within the stream.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for StreamError {}

/// True when `name` is wall-clock data under the stream's naming
/// convention (the reserved `wall_ns` stamp or a `*_ns` duration field).
pub fn is_wall_field(name: &str) -> bool {
    name == "wall_ns" || name.ends_with("_ns")
}

/// The prefix of `text` up to and including its last newline — what a
/// reader can safely parse while a writer may still be appending. A
/// torn (newline-less) final line is dropped; text with no newline at
/// all yields `""`.
pub fn complete_lines(text: &str) -> &str {
    match text.rfind('\n') {
        Some(end) => &text[..=end],
        None => "",
    }
}

/// One parsed event line.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedEvent {
    /// 1-based line number in the source stream (headers count).
    pub line: u32,
    /// The event key (`"platform.batch"`, `"truth.iter"`, …).
    pub key: String,
    /// Simulated-clock timestamp lexeme, if the event carried one.
    pub sim: Option<String>,
    /// Wall-clock stamp lexeme, if the stream was captured with wall data.
    pub wall_ns: Option<String>,
    /// Every remaining field, in stream order (deterministic and wall
    /// duration fields interleaved exactly as written).
    pub fields: Vec<(String, Json)>,
}

impl OwnedEvent {
    /// The deterministic fields only — what two comparable runs must agree
    /// on byte for byte.
    pub fn det_fields(&self) -> impl Iterator<Item = &(String, Json)> {
        self.fields.iter().filter(|(n, _)| !is_wall_field(n))
    }

    /// A named deterministic field as `f64`.
    pub fn field_f64(&self, name: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_f64())
    }

    /// A named deterministic field as `u64`.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_u64())
    }

    /// A named string field.
    pub fn field_str(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_str())
    }

    /// A named wall duration field (`*_ns`) in nanoseconds.
    pub fn wall_field(&self, name: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(n, _)| n == name && is_wall_field(n))
            .and_then(|(_, v)| v.as_u64())
    }

    /// Sum of every wall duration field on this event.
    pub fn wall_total(&self) -> u64 {
        self.fields
            .iter()
            .filter(|(n, _)| is_wall_field(n))
            .filter_map(|(_, v)| v.as_u64())
            .sum()
    }

    /// The simulated timestamp as `f64`.
    pub fn sim_f64(&self) -> Option<f64> {
        self.sim.as_deref().and_then(|s| s.parse().ok())
    }

    /// Re-renders the event exactly as it appeared in the stream (no
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"key\":");
        write_json_string(&self.key, &mut out);
        if let Some(sim) = &self.sim {
            out.push_str(",\"sim\":");
            out.push_str(sim);
        }
        if let Some(wall) = &self.wall_ns {
            out.push_str(",\"wall_ns\":");
            out.push_str(wall);
        }
        for (name, value) in &self.fields {
            out.push(',');
            write_json_string(name, &mut out);
            out.push(':');
            value.write(&mut out);
        }
        out.push('}');
        out
    }

    /// Renders only the deterministic projection of the event — key,
    /// simulated timestamp and deterministic fields. Two streams of the
    /// same workload must agree on this rendering event for event; it is
    /// what divergence localization compares.
    pub fn det_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"key\":");
        write_json_string(&self.key, &mut out);
        if let Some(sim) = &self.sim {
            out.push_str(",\"sim\":");
            out.push_str(sim);
        }
        for (name, value) in self.det_fields() {
            out.push(',');
            write_json_string(name, &mut out);
            out.push(':');
            value.write(&mut out);
        }
        out.push('}');
        out
    }
}

/// A fully loaded stream: optional validated header plus every event, in
/// stream order.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedStream {
    /// The stream header, when the first line carried one.
    pub header: Option<StreamHeader>,
    /// All event lines, in order.
    pub events: Vec<OwnedEvent>,
}

impl LoadedStream {
    /// True when any event carries wall-clock data (captured with
    /// `with_wall(true)`).
    pub fn has_wall_data(&self) -> bool {
        self.events
            .iter()
            .any(|e| e.wall_ns.is_some() || e.fields.iter().any(|(n, _)| is_wall_field(n)))
    }

    /// Serializes the stream back to JSONL, reproducing the loaded bytes
    /// exactly (header first, one event per line, trailing newline per
    /// line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        if let Some(h) = &self.header {
            out.push_str(&h.to_json());
            out.push('\n');
        }
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

/// Parses a header object (`{"stream":…}`) already known to carry the
/// `stream` discriminant.
fn parse_header(value: &Json, line: u32) -> Result<StreamHeader, StreamError> {
    let err = |message: String| StreamError { line, message };
    let magic = value
        .get("stream")
        .and_then(Json::as_str)
        .ok_or_else(|| err("header `stream` must be a string".into()))?;
    if magic != STREAM_MAGIC {
        return Err(err(format!(
            "unknown stream magic {magic:?} (expected {STREAM_MAGIC:?})"
        )));
    }
    let schema = value
        .get("schema")
        .and_then(Json::as_u64)
        .ok_or_else(|| err("header missing numeric `schema`".into()))?;
    if schema == 0 || schema > u64::from(STREAM_SCHEMA_VERSION) {
        return Err(err(format!(
            "unsupported stream schema {schema} (this build reads ≤ {STREAM_SCHEMA_VERSION})"
        )));
    }
    let git_rev = value
        .get("git_rev")
        .and_then(Json::as_str)
        .ok_or_else(|| err("header missing string `git_rev`".into()))?;
    let seed = value
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or_else(|| err("header missing numeric `seed`".into()))?;
    let threads = value
        .get("threads")
        .and_then(Json::as_u64)
        .ok_or_else(|| err("header missing numeric `threads`".into()))?;
    let workload = value
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| err("header missing string `workload`".into()))?;
    Ok(StreamHeader {
        schema: schema as u32,
        git_rev: git_rev.to_owned(),
        seed,
        threads: threads as u32,
        workload: workload.to_owned(),
    })
}

/// Converts one parsed line object into an [`OwnedEvent`].
fn parse_event(value: Json, line: u32) -> Result<OwnedEvent, StreamError> {
    let err = |message: String| StreamError { line, message };
    let members = match value {
        Json::Object(members) => members,
        _ => return Err(err("event line is not a JSON object".into())),
    };
    let mut key = None;
    let mut sim = None;
    let mut wall_ns = None;
    let mut fields = Vec::with_capacity(members.len().saturating_sub(1));
    for (idx, (name, value)) in members.into_iter().enumerate() {
        match name.as_str() {
            "key" => {
                if idx != 0 {
                    return Err(err("`key` must be the first member of an event".into()));
                }
                match value {
                    Json::Str(s) => key = Some(s),
                    _ => return Err(err("event `key` must be a string".into())),
                }
            }
            "sim" => match value {
                Json::Num(lexeme) => {
                    if !fields.is_empty() {
                        return Err(err("`sim` must precede payload fields".into()));
                    }
                    sim = Some(lexeme);
                }
                _ => return Err(err("event `sim` must be a number".into())),
            },
            "wall_ns" => match value {
                Json::Num(lexeme) => {
                    if !fields.is_empty() {
                        return Err(err("`wall_ns` must precede payload fields".into()));
                    }
                    wall_ns = Some(lexeme);
                }
                _ => return Err(err("event `wall_ns` must be a number".into())),
            },
            _ => fields.push((name, value)),
        }
    }
    let key = key.ok_or_else(|| err("event line missing `key`".into()))?;
    Ok(OwnedEvent {
        line,
        key,
        sim,
        wall_ns,
        fields,
    })
}

/// Parses a JSONL stream. The header, when present, must be the first
/// line; every other line must be an event. Errors carry the offending
/// 1-based line number.
pub fn parse_stream(text: &str) -> Result<LoadedStream, StreamError> {
    let mut header = None;
    let mut events = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = (i + 1) as u32;
        if raw.trim().is_empty() {
            continue;
        }
        let value = json::parse(raw).map_err(|e| StreamError {
            line,
            message: format!("invalid JSON ({e})"),
        })?;
        let is_header = value.get("stream").is_some();
        if is_header {
            if i != 0 {
                return Err(StreamError {
                    line,
                    message: "stream header must be the first line".into(),
                });
            }
            header = Some(parse_header(&value, line)?);
        } else {
            events.push(parse_event(value, line)?);
        }
    }
    Ok(LoadedStream { header, events })
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "{\"stream\":\"crowdkit-obs\",\"schema\":1,\"git_rev\":\"abc\",\
\"seed\":7,\"threads\":2,\"workload\":\"unit\"}";

    #[test]
    fn loads_header_and_events() {
        let text = format!(
            "{HEADER}\n{{\"key\":\"truth.iter\",\"algo\":\"ds\",\"iter\":0,\"delta\":0.5,\
\"m_ns\":120,\"e_ns\":80}}\n{{\"key\":\"truth.run\",\"sim\":1.5,\"iters\":3}}\n"
        );
        let s = parse_stream(&text).unwrap();
        let h = s.header.as_ref().unwrap();
        assert_eq!((h.schema, h.seed, h.threads), (1, 7, 2));
        assert_eq!(h.workload, "unit");
        assert_eq!(s.events.len(), 2);
        let e = &s.events[0];
        assert_eq!(e.line, 2);
        assert_eq!(e.key, "truth.iter");
        assert_eq!(e.field_str("algo"), Some("ds"));
        assert_eq!(e.field_f64("delta"), Some(0.5));
        assert_eq!(e.wall_field("m_ns"), Some(120));
        assert_eq!(e.wall_total(), 200);
        assert_eq!(e.det_fields().count(), 3);
        assert_eq!(s.events[1].sim_f64(), Some(1.5));
        assert!(s.has_wall_data());
    }

    #[test]
    fn roundtrip_is_byte_exact() {
        let text = format!(
            "{HEADER}\n{{\"key\":\"k\",\"sim\":1,\"wall_ns\":42,\"n\":2,\"x\":-0.5,\
\"s\":\"a\\\"b\",\"t_ns\":99}}\n{{\"key\":\"k2\"}}\n"
        );
        let s = parse_stream(&text).unwrap();
        assert_eq!(s.to_jsonl(), text);
    }

    #[test]
    fn det_projection_strips_wall_data() {
        let s = parse_stream(
            "{\"key\":\"k\",\"sim\":2,\"wall_ns\":9,\"n\":3,\"plan_ns\":5}\n",
        )
        .unwrap();
        assert_eq!(s.events[0].det_json(), "{\"key\":\"k\",\"sim\":2,\"n\":3}");
        assert_eq!(s.events[0].to_json(), "{\"key\":\"k\",\"sim\":2,\"wall_ns\":9,\"n\":3,\"plan_ns\":5}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = format!("{HEADER}\n{{\"key\":\"ok\"}}\n{{\"key\":}}\n");
        let e = parse_stream(&text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("invalid JSON"));

        let e = parse_stream("{\"nokey\":1}\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("missing `key`"));

        let e = parse_stream(&format!("{{\"key\":\"k\"}}\n{HEADER}\n")).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("first line"));
    }

    #[test]
    fn header_validation_is_strict() {
        let bad_schema = HEADER.replace("\"schema\":1", "\"schema\":99");
        let e = parse_stream(&bad_schema).unwrap_err();
        assert!(e.message.contains("unsupported stream schema"));

        let bad_magic = HEADER.replace("crowdkit-obs", "other");
        let e = parse_stream(&bad_magic).unwrap_err();
        assert!(e.message.contains("unknown stream magic"));

        let missing = "{\"stream\":\"crowdkit-obs\",\"schema\":1}";
        let e = parse_stream(missing).unwrap_err();
        assert!(e.message.contains("git_rev"));
    }

    #[test]
    fn complete_lines_tolerates_torn_tails() {
        // The watch loop's contract: a half-written final line (no
        // trailing newline yet) is cut, everything before it survives.
        assert_eq!(
            complete_lines("{\"key\":\"a\"}\n{\"key\":\"b\",\"n\":"),
            "{\"key\":\"a\"}\n"
        );
        assert_eq!(complete_lines("{\"key\":\"a\"}\n"), "{\"key\":\"a\"}\n");
        assert_eq!(complete_lines("{\"key\":"), "");
        assert_eq!(complete_lines(""), "");
        // The truncated prefix always parses when the full lines did.
        let torn = format!("{HEADER}\n{{\"key\":\"ok\"}}\n{{\"key\":\"half");
        let s = parse_stream(complete_lines(&torn)).unwrap();
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events[0].key, "ok");
    }

    #[test]
    fn headerless_streams_load() {
        let s = parse_stream("{\"key\":\"a\"}\n{\"key\":\"b\",\"n\":1}\n").unwrap();
        assert!(s.header.is_none());
        assert_eq!(s.events.len(), 2);
        assert!(!s.has_wall_data());
    }
}
