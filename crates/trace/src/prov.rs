//! Decision-provenance analysis: the read side of the `prov.*` events
//! (`crowdtrace why` and `crowdtrace audit`).
//!
//! The `crowdkit-provenance` layer records, per truth-inference run, the
//! contributing votes, final worker weights, posterior margins, and label
//! flip history (`prov.task` / `prov.worker` detail events plus the
//! always-on `prov.run` summary), and the spend attribution ledger
//! (`prov.spend`, scoped by task, worker, and plan node). This module
//! folds a loaded stream back into per-run records attributed to their
//! experiment (via the surrounding `exp.begin`/`exp.end` span) and renders
//! the two reports:
//!
//! - [`render_why`] answers "why did task T get this label": votes,
//!   weights, margin, flip timeline, and what the task cost — once per
//!   run that saw the task.
//! - [`render_audit`] rolls the whole suite up: contested tasks below a
//!   margin threshold, most-influential and most-overruled workers, and
//!   spend-per-correct-label by experiment.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::stream::LoadedStream;

/// One task's recorded lineage within a run (a `prov.task` detail event).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskLineage {
    /// External task id.
    pub task: u64,
    /// Final label decided by the run.
    pub label: u64,
    /// Posterior margin: top-1 minus top-2 probability.
    pub margin: f64,
    /// Contributing votes, `"w3=1,w7=0"` in response order.
    pub votes: String,
    /// Flip timeline, `"i2:0>1,i4:1>0"`; empty when the decision never
    /// moved from the initial baseline.
    pub flips: String,
}

/// One worker's converged standing within a run (a `prov.worker` event).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerLineage {
    /// External worker id.
    pub worker: u64,
    /// Converged quality/weight under the run's worker model.
    pub weight: f64,
    /// Answers the worker contributed to the run.
    pub answers: u64,
    /// Answers agreeing with the final labels.
    pub agree: u64,
    /// Answers overruled by the final labels.
    pub overruled: u64,
}

/// The always-on `prov.run` roll-up for one inference run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunSummary {
    /// Tasks labeled.
    pub tasks: u64,
    /// Workers contributing.
    pub workers: u64,
    /// Tasks whose margin fell below the contested threshold.
    pub contested: u64,
    /// The contested-margin threshold the run used.
    pub margin_thr: f64,
    /// Mean posterior margin across tasks.
    pub margin_mean: f64,
    /// Label flips across EM iterations.
    pub flips: u64,
}

/// One inference run's provenance, attributed to its experiment span.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvRun {
    /// Experiment id from the surrounding `exp.begin` span (`"-"` when
    /// the run happened outside any experiment).
    pub exp: String,
    /// Algorithm name (`"mv"`, `"ds"`, `"zc"`, `"glad"`, `"kos"`, …).
    pub algo: String,
    /// Per-task lineage detail (empty when the stream was captured
    /// without detail events).
    pub tasks: Vec<TaskLineage>,
    /// Per-worker lineage detail.
    pub workers: Vec<WorkerLineage>,
    /// The run summary.
    pub summary: RunSummary,
}

/// One `prov.spend` row attributed to its experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SpendRow {
    /// Experiment id (`"-"` outside any experiment span).
    pub exp: String,
    /// Attribution scope: `"task"`, `"worker"`, or `"node"`.
    pub scope: String,
    /// Task/worker external id, when scoped to one.
    pub id: Option<u64>,
    /// Plan-node name for `scope:"node"` rows.
    pub node: Option<String>,
    /// Currency attributed to this scope entry.
    pub spend: f64,
    /// Answers (task/worker scope) or questions (node scope) behind it.
    pub answers: u64,
}

/// Every provenance fact in one stream, plus the per-experiment mean
/// accuracy (from `exp.quality`) the audit needs for
/// spend-per-correct-label.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProvView {
    /// Inference runs, in stream order.
    pub runs: Vec<ProvRun>,
    /// Spend attribution rows, in stream order.
    pub spend: Vec<SpendRow>,
    /// Per-experiment mean `accuracy` quality metric, when reported.
    pub accuracy: BTreeMap<String, f64>,
}

impl ProvView {
    /// True when the stream carried no provenance events at all.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty() && self.spend.is_empty()
    }

    /// True when at least one run carries per-task detail.
    pub fn has_detail(&self) -> bool {
        self.runs.iter().any(|r| !r.tasks.is_empty())
    }
}

/// Folds a loaded stream into a [`ProvView`]. Detail events precede their
/// run's `prov.run` summary in the stream (the provenance layer emits
/// them from one sequential tail), so pending detail is buffered per
/// algorithm and claimed by the next matching summary.
pub fn collect(stream: &LoadedStream) -> ProvView {
    let mut view = ProvView::default();
    let mut exp = "-".to_owned();
    // Detail rows buffered until their run's summary closes them, keyed
    // by algorithm (runs of different algorithms never interleave within
    // one experiment thread, but keying defends the invariant cheaply).
    let mut pending: BTreeMap<String, (Vec<TaskLineage>, Vec<WorkerLineage>)> = BTreeMap::new();
    let mut acc_sums: BTreeMap<String, (f64, u64)> = BTreeMap::new();

    for e in &stream.events {
        match e.key.as_str() {
            "exp.begin" => {
                if let Some(id) = e.field_str("id") {
                    exp = id.to_owned();
                }
            }
            "exp.end" => exp = "-".to_owned(),
            "exp.quality" if e.field_str("metric") == Some("accuracy") => {
                if let Some(v) = e.field_f64("value") {
                    let s = acc_sums.entry(exp.clone()).or_insert((0.0, 0));
                    s.0 += v;
                    s.1 += 1;
                }
            }
            "prov.task" => {
                let algo = e.field_str("algo").unwrap_or("-").to_owned();
                pending.entry(algo).or_default().0.push(TaskLineage {
                    task: e.field_u64("task").unwrap_or(0),
                    label: e.field_u64("label").unwrap_or(0),
                    margin: e.field_f64("margin").unwrap_or(0.0),
                    votes: e.field_str("votes").unwrap_or("").to_owned(),
                    flips: e.field_str("flips").unwrap_or("").to_owned(),
                });
            }
            "prov.worker" => {
                let algo = e.field_str("algo").unwrap_or("-").to_owned();
                pending.entry(algo).or_default().1.push(WorkerLineage {
                    worker: e.field_u64("worker").unwrap_or(0),
                    weight: e.field_f64("weight").unwrap_or(0.0),
                    answers: e.field_u64("answers").unwrap_or(0),
                    agree: e.field_u64("agree").unwrap_or(0),
                    overruled: e.field_u64("overruled").unwrap_or(0),
                });
            }
            "prov.run" => {
                let algo = e.field_str("algo").unwrap_or("-").to_owned();
                let (tasks, workers) = pending.remove(&algo).unwrap_or_default();
                view.runs.push(ProvRun {
                    exp: exp.clone(),
                    algo,
                    tasks,
                    workers,
                    summary: RunSummary {
                        tasks: e.field_u64("tasks").unwrap_or(0),
                        workers: e.field_u64("workers").unwrap_or(0),
                        contested: e.field_u64("contested").unwrap_or(0),
                        margin_thr: e.field_f64("margin_thr").unwrap_or(0.0),
                        margin_mean: e.field_f64("margin_mean").unwrap_or(0.0),
                        flips: e.field_u64("flips").unwrap_or(0),
                    },
                });
            }
            "prov.spend" => {
                view.spend.push(SpendRow {
                    exp: exp.clone(),
                    scope: e.field_str("scope").unwrap_or("-").to_owned(),
                    id: e.field_u64("task").or_else(|| e.field_u64("worker")),
                    node: e.field_str("node").map(str::to_owned),
                    spend: e.field_f64("spend").unwrap_or(0.0),
                    answers: e
                        .field_u64("answers")
                        .or_else(|| e.field_u64("questions"))
                        .unwrap_or(0),
                });
            }
            _ => {}
        }
    }
    view.accuracy = acc_sums
        .into_iter()
        .map(|(exp, (sum, n))| (exp, sum / n.max(1) as f64))
        .collect();
    view
}

/// Renders the flip timeline for humans: the raw `"i2:0>1"` list or a
/// stable-decision note when it is empty.
fn render_flips(flips: &str) -> String {
    if flips.is_empty() {
        "none — stable from the initial decision".to_owned()
    } else {
        let n = flips.split(',').count();
        format!("{flips} ({n} flip{})", if n == 1 { "" } else { "s" })
    }
}

/// Worker ids mentioned in a votes string (`"w3=1,w7=0"` → `[3, 7]`).
fn voters(votes: &str) -> Vec<u64> {
    votes
        .split(',')
        .filter_map(|v| v.strip_prefix('w')?.split('=').next()?.parse().ok())
        .collect()
}

/// Renders `crowdtrace why <task-id>`: one block per inference run whose
/// detail mentions the task, filtered by experiment and/or algorithm.
/// Returns `Err` with a human-readable reason when nothing matches (so
/// the CLI can exit non-zero).
pub fn render_why(
    view: &ProvView,
    task: u64,
    exp: Option<&str>,
    algo: Option<&str>,
) -> Result<String, String> {
    if view.is_empty() {
        return Err("stream carries no prov.* events (run with a provenance \
                    scope and --log to capture lineage)"
            .into());
    }
    let runs: Vec<(&ProvRun, &TaskLineage)> = view
        .runs
        .iter()
        .filter(|r| exp.is_none_or(|e| r.exp == e))
        .filter(|r| algo.is_none_or(|a| r.algo == a))
        .filter_map(|r| r.tasks.iter().find(|t| t.task == task).map(|t| (r, t)))
        .collect();
    if runs.is_empty() {
        return Err(if view.has_detail() {
            format!("task {task} not found in any matching run's lineage")
        } else {
            "stream has prov.run summaries but no per-task detail \
             (capture with --log to record full lineage)"
                .into()
        });
    }

    let mut out = String::new();
    let n_exps = {
        let mut exps: Vec<&str> = runs.iter().map(|(r, _)| r.exp.as_str()).collect();
        exps.sort_unstable();
        exps.dedup();
        exps.len()
    };
    let _ = writeln!(
        out,
        "task {task} — {} run(s) across {} experiment(s)",
        runs.len(),
        n_exps
    );
    for (r, t) in &runs {
        let n_votes = if t.votes.is_empty() {
            0
        } else {
            t.votes.split(',').count()
        };
        let _ = writeln!(
            out,
            "\n[{}] algo {} — label {}, margin {:.4}, {} vote(s)",
            r.exp, r.algo, t.label, t.margin, n_votes
        );
        let _ = writeln!(out, "  votes: {}", t.votes.replace(',', " "));
        let _ = writeln!(out, "  flips: {}", render_flips(&t.flips));
        let ws = voters(&t.votes);
        if r.workers.iter().any(|w| ws.contains(&w.worker)) {
            let _ = writeln!(out, "  workers:");
            for w in r.workers.iter().filter(|w| ws.contains(&w.worker)) {
                let _ = writeln!(
                    out,
                    "    w{:<8} weight {:.4}  {} answer(s), {} agree, {} overruled",
                    w.worker, w.weight, w.answers, w.agree, w.overruled
                );
            }
        }
        // Spend is booked per task once per experiment (by the collection
        // layer), not per inference run.
        for s in view
            .spend
            .iter()
            .filter(|s| s.exp == r.exp && s.scope == "task" && s.id == Some(task))
        {
            let _ = writeln!(
                out,
                "  spend: {:.4} over {} answer(s)",
                s.spend, s.answers
            );
        }
    }
    Ok(out)
}

/// Renders `crowdtrace audit`: suite-wide run table, contested tasks
/// below `margin_thr`, worker influence roll-ups, and
/// spend-per-correct-label by experiment.
pub fn render_audit(view: &ProvView, margin_thr: f64) -> Result<String, String> {
    if view.is_empty() {
        return Err("stream carries no prov.* events (run with a provenance \
                    scope to capture summaries)"
            .into());
    }
    let mut out = String::new();
    let n_exps = {
        let mut exps: Vec<&str> = view.runs.iter().map(|r| r.exp.as_str()).collect();
        exps.sort_unstable();
        exps.dedup();
        exps.len()
    };
    let _ = writeln!(
        out,
        "provenance audit — {} run(s) across {} experiment(s)",
        view.runs.len(),
        n_exps
    );

    let _ = writeln!(
        out,
        "\n{:<24} {:<6} {:>7} {:>9} {:>6} {:>11}",
        "exp", "algo", "tasks", "contested", "flips", "margin_mean"
    );
    for r in &view.runs {
        let _ = writeln!(
            out,
            "{:<24} {:<6} {:>7} {:>9} {:>6} {:>11.4}",
            r.exp, r.algo, r.summary.tasks, r.summary.contested, r.summary.flips,
            r.summary.margin_mean
        );
    }

    // Contested tasks from detail, lowest margin first (capped at 10).
    let mut contested: Vec<(&ProvRun, &TaskLineage)> = view
        .runs
        .iter()
        .flat_map(|r| r.tasks.iter().map(move |t| (r, t)))
        .filter(|(_, t)| t.margin < margin_thr)
        .collect();
    contested.sort_by(|a, b| {
        a.1.margin
            .partial_cmp(&b.1.margin)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.task.cmp(&b.1.task))
    });
    let _ = writeln!(
        out,
        "\ncontested tasks (margin < {margin_thr}): {} in detail",
        contested.len()
    );
    for (r, t) in contested.iter().take(10) {
        let _ = writeln!(
            out,
            "  [{}] {} task {} margin {:.4} label {} flips {}",
            r.exp,
            r.algo,
            t.task,
            t.margin,
            t.label,
            render_flips(&t.flips)
        );
    }

    // Worker roll-ups across every run with detail: influence is the
    // weight-mass a worker put behind final decisions.
    let mut by_worker: BTreeMap<u64, (f64, u64, u64)> = BTreeMap::new();
    for r in &view.runs {
        for w in &r.workers {
            let e = by_worker.entry(w.worker).or_insert((0.0, 0, 0));
            e.0 += w.weight * w.answers as f64;
            e.1 += w.overruled;
            e.2 += w.answers;
        }
    }
    if !by_worker.is_empty() {
        let mut influential: Vec<(&u64, &(f64, u64, u64))> = by_worker.iter().collect();
        influential.sort_by(|a, b| {
            b.1 .0
                .partial_cmp(&a.1 .0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(b.0))
        });
        let _ = writeln!(out, "\nmost influential workers (Σ weight × answers):");
        for (w, (infl, _, answers)) in influential.iter().take(5) {
            let _ = writeln!(out, "  w{w:<8} influence {infl:.2} over {answers} answer(s)");
        }
        let mut overruled: Vec<(&u64, &(f64, u64, u64))> = by_worker.iter().collect();
        overruled.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then_with(|| a.0.cmp(b.0)));
        let _ = writeln!(out, "most overruled workers:");
        for (w, (_, over, answers)) in overruled.iter().take(5) {
            let _ = writeln!(out, "  w{w:<8} overruled {over} of {answers} answer(s)");
        }
    }

    // Spend per correct label, per experiment: task-scoped spend divided
    // by (mean reported accuracy × the largest task set any run labeled).
    let mut spend_by_exp: BTreeMap<&str, f64> = BTreeMap::new();
    for s in view.spend.iter().filter(|s| s.scope == "task") {
        *spend_by_exp.entry(s.exp.as_str()).or_insert(0.0) += s.spend;
    }
    if !spend_by_exp.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<24} {:>9} {:>7} {:>9} {:>14}",
            "exp", "spend", "tasks", "accuracy", "spend/correct"
        );
        for (exp, spend) in &spend_by_exp {
            let tasks = view
                .runs
                .iter()
                .filter(|r| r.exp == *exp)
                .map(|r| r.summary.tasks)
                .max()
                .unwrap_or(0);
            let acc = view.accuracy.get(*exp).copied();
            let per_correct = match acc {
                Some(a) if a > 0.0 && tasks > 0 => {
                    format!("{:.4}", spend / (a * tasks as f64))
                }
                _ => "-".to_owned(),
            };
            let acc_s = acc.map_or("-".to_owned(), |a| format!("{a:.4}"));
            let _ = writeln!(
                out,
                "{exp:<24} {spend:>9.4} {tasks:>7} {acc_s:>9} {per_correct:>14}"
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::parse_stream;

    fn sample() -> ProvView {
        let text = concat!(
            "{\"key\":\"exp.begin\",\"id\":\"e01\"}\n",
            "{\"key\":\"prov.task\",\"algo\":\"ds\",\"task\":10,\"label\":1,\
             \"margin\":0.8,\"n\":2,\"votes\":\"w100=1,w101=1\",\"flips\":\"\"}\n",
            "{\"key\":\"prov.task\",\"algo\":\"ds\",\"task\":11,\"label\":1,\
             \"margin\":0.05,\"n\":2,\"votes\":\"w100=0,w102=1\",\"flips\":\"i1:0>1\"}\n",
            "{\"key\":\"prov.worker\",\"algo\":\"ds\",\"worker\":100,\"weight\":0.9,\
             \"answers\":2,\"agree\":1,\"overruled\":1}\n",
            "{\"key\":\"prov.worker\",\"algo\":\"ds\",\"worker\":101,\"weight\":0.8,\
             \"answers\":1,\"agree\":1,\"overruled\":0}\n",
            "{\"key\":\"prov.worker\",\"algo\":\"ds\",\"worker\":102,\"weight\":0.7,\
             \"answers\":1,\"agree\":1,\"overruled\":0}\n",
            "{\"key\":\"prov.run\",\"algo\":\"ds\",\"tasks\":2,\"workers\":3,\
             \"contested\":1,\"margin_thr\":0.1,\"margin_mean\":0.425,\"flips\":1}\n",
            "{\"key\":\"prov.spend\",\"scope\":\"task\",\"task\":11,\"spend\":0.3,\
             \"answers\":2}\n",
            "{\"key\":\"prov.spend\",\"scope\":\"worker\",\"worker\":100,\"spend\":0.2,\
             \"answers\":2}\n",
            "{\"key\":\"prov.spend\",\"scope\":\"node\",\"node\":\"CrowdFill\",\
             \"spend\":0.5,\"questions\":4}\n",
            "{\"key\":\"exp.quality\",\"metric\":\"accuracy\",\"value\":0.9}\n",
            "{\"key\":\"exp.end\",\"id\":\"e01\"}\n",
            "{\"key\":\"prov.run\",\"algo\":\"mv\",\"tasks\":5,\"workers\":2,\
             \"contested\":0,\"margin_thr\":0.1,\"margin_mean\":0.9,\"flips\":0}\n",
        );
        collect(&parse_stream(text).expect("stream parses"))
    }

    #[test]
    fn collect_attributes_runs_and_spend_to_experiments() {
        let v = sample();
        assert_eq!(v.runs.len(), 2);
        assert_eq!(v.runs[0].exp, "e01");
        assert_eq!(v.runs[0].algo, "ds");
        assert_eq!(v.runs[0].tasks.len(), 2);
        assert_eq!(v.runs[0].workers.len(), 3);
        assert_eq!(v.runs[0].summary.contested, 1);
        // The second run ran outside any experiment span.
        assert_eq!(v.runs[1].exp, "-");
        assert!(v.runs[1].tasks.is_empty());
        assert_eq!(v.spend.len(), 3);
        assert_eq!(v.spend[0].scope, "task");
        assert_eq!(v.spend[2].node.as_deref(), Some("CrowdFill"));
        assert_eq!(v.spend[2].answers, 4, "node rows carry `questions`");
        assert_eq!(v.accuracy.get("e01"), Some(&0.9));
        assert!(v.has_detail());
    }

    #[test]
    fn why_renders_votes_weights_margin_flips_and_spend() {
        let v = sample();
        let out = render_why(&v, 11, None, None).expect("task found");
        assert!(out.contains("task 11 — 1 run(s)"));
        assert!(out.contains("[e01] algo ds — label 1, margin 0.0500, 2 vote(s)"));
        assert!(out.contains("votes: w100=0 w102=1"));
        assert!(out.contains("flips: i1:0>1 (1 flip)"));
        assert!(out.contains("w100      weight 0.9000  2 answer(s), 1 agree, 1 overruled"));
        assert!(out.contains("w102      weight 0.7000"));
        assert!(!out.contains("w101"), "non-voters are not listed");
        assert!(out.contains("spend: 0.3000 over 2 answer(s)"));
    }

    #[test]
    fn why_filters_and_misses_are_errors() {
        let v = sample();
        assert!(render_why(&v, 11, Some("e01"), Some("ds")).is_ok());
        assert!(render_why(&v, 11, Some("e99"), None).is_err());
        assert!(render_why(&v, 11, None, Some("mv")).is_err());
        assert!(render_why(&v, 999, None, None)
            .unwrap_err()
            .contains("not found"));
        assert!(render_why(&ProvView::default(), 1, None, None)
            .unwrap_err()
            .contains("no prov.* events"));
    }

    #[test]
    fn audit_rolls_up_contested_workers_and_spend() {
        let v = sample();
        let out = render_audit(&v, 0.1).expect("non-empty view");
        assert!(out.contains("provenance audit — 2 run(s)"));
        assert!(out.contains("contested tasks (margin < 0.1): 1 in detail"));
        assert!(out.contains("[e01] ds task 11 margin 0.0500"));
        assert!(out.contains("most influential workers"));
        // w100: 0.9 × 2 = 1.8 influence, tops the list.
        assert!(out.contains("w100      influence 1.80 over 2 answer(s)"));
        assert!(out.contains("most overruled workers"));
        assert!(out.contains("w100      overruled 1 of 2 answer(s)"));
        // spend 0.3 / (0.9 accuracy × 2 tasks) = 0.1667.
        assert!(out.contains("0.1667"));
        assert!(render_audit(&ProvView::default(), 0.1).is_err());
    }

    #[test]
    fn audit_margin_threshold_is_configurable() {
        let v = sample();
        let out = render_audit(&v, 0.01).expect("non-empty view");
        assert!(out.contains("contested tasks (margin < 0.01): 0 in detail"));
    }
}
