//! Run diff: divergence localization and metric-delta reporting.
//!
//! The determinism contract says two runs of the same workload produce
//! byte-identical deterministic event streams — at any thread count. When
//! they don't (the DET001/DET002 bug class), the debugging primitive is
//! *where did they first disagree*: [`first_divergence`] walks both
//! streams in lockstep over the deterministic projection of each event
//! (key, simulated timestamp, non-wall fields) and reports the first
//! mismatch with both line numbers, the event keys, and the first
//! differing field.
//!
//! Orthogonally, [`metric_deltas`] compares the quality / spend / latency
//! triangle per experiment between the two runs — the SIGMOD'17 tutorial's
//! three trade-off axes — against configurable relative thresholds, so a
//! semantic regression fails CI even when the streams are *expected* to
//! differ (different seeds, different commits).

use std::fmt::Write as _;

use crate::replay::{replay, ExperimentSpan};
use crate::stream::LoadedStream;

/// The first point where two streams' deterministic events disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based index of the first divergent event (same in both streams).
    pub index: usize,
    /// 1-based line number of the event in stream A (0 when A ended).
    pub line_a: u32,
    /// 1-based line number of the event in stream B (0 when B ended).
    pub line_b: u32,
    /// Event key in stream A (empty when A ended).
    pub key_a: String,
    /// Event key in stream B (empty when B ended).
    pub key_b: String,
    /// Human-readable account of what differed.
    pub detail: String,
}

impl Divergence {
    /// One-paragraph rendering of the divergence.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "first divergent event: index {}", self.index);
        match (self.key_a.is_empty(), self.key_b.is_empty()) {
            (true, false) => {
                let _ = writeln!(
                    out,
                    "  stream A ends here; stream B continues at line {} with key `{}`",
                    self.line_b, self.key_b
                );
            }
            (false, true) => {
                let _ = writeln!(
                    out,
                    "  stream B ends here; stream A continues at line {} with key `{}`",
                    self.line_a, self.key_a
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "  A line {} key `{}` | B line {} key `{}`",
                    self.line_a, self.key_a, self.line_b, self.key_b
                );
            }
        }
        let _ = writeln!(out, "  {}", self.detail);
        out
    }
}

/// Finds the first event where the deterministic projections of `a` and
/// `b` differ, or `None` when the streams are identical on every
/// deterministic field (wall data and headers are ignored).
pub fn first_divergence(a: &LoadedStream, b: &LoadedStream) -> Option<Divergence> {
    let n = a.events.len().min(b.events.len());
    for i in 0..n {
        let (ea, eb) = (&a.events[i], &b.events[i]);
        let (ja, jb) = (ea.det_json(), eb.det_json());
        if ja != jb {
            let detail = if ea.key != eb.key {
                format!("keys differ: `{}` vs `{}`", ea.key, eb.key)
            } else if ea.sim != eb.sim {
                format!(
                    "sim timestamps differ: {} vs {}",
                    ea.sim.as_deref().unwrap_or("(none)"),
                    eb.sim.as_deref().unwrap_or("(none)")
                )
            } else {
                first_field_difference(ea, eb)
            };
            return Some(Divergence {
                index: i,
                line_a: ea.line,
                line_b: eb.line,
                key_a: ea.key.clone(),
                key_b: eb.key.clone(),
                detail,
            });
        }
    }
    if a.events.len() != b.events.len() {
        let (ea, eb) = (a.events.get(n), b.events.get(n));
        return Some(Divergence {
            index: n,
            line_a: ea.map_or(0, |e| e.line),
            line_b: eb.map_or(0, |e| e.line),
            key_a: ea.map_or(String::new(), |e| e.key.clone()),
            key_b: eb.map_or(String::new(), |e| e.key.clone()),
            detail: format!(
                "stream lengths differ: {} vs {} events",
                a.events.len(),
                b.events.len()
            ),
        });
    }
    None
}

/// Pinpoints the first deterministic field two same-key events disagree
/// on.
fn first_field_difference(
    ea: &crate::stream::OwnedEvent,
    eb: &crate::stream::OwnedEvent,
) -> String {
    let fa: Vec<_> = ea.det_fields().collect();
    let fb: Vec<_> = eb.det_fields().collect();
    for (x, y) in fa.iter().zip(&fb) {
        if x.0 != y.0 {
            return format!("field names differ: `{}` vs `{}`", x.0, y.0);
        }
        if x.1 != y.1 {
            return format!(
                "field `{}` differs: {} vs {}",
                x.0,
                x.1.to_string_compact(),
                y.1.to_string_compact()
            );
        }
    }
    format!(
        "field counts differ: {} vs {} deterministic fields",
        fa.len(),
        fb.len()
    )
}

/// Relative thresholds for the metric-delta gate. `None` disables the
/// axis; values are fractions (0.05 = 5%).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeltaThresholds {
    /// Max tolerated relative drop in any quality metric (quality is
    /// one-sided: improvements never breach).
    pub quality: Option<f64>,
    /// Max tolerated relative increase in spend (one-sided: savings never
    /// breach).
    pub spend: Option<f64>,
    /// Max tolerated relative increase in simulated makespan (one-sided).
    pub latency: Option<f64>,
}

impl DeltaThresholds {
    /// True when no axis is gated.
    pub fn is_empty(&self) -> bool {
        self.quality.is_none() && self.spend.is_none() && self.latency.is_none()
    }
}

/// One experiment's metric deltas between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Experiment id.
    pub id: String,
    /// `(metric, a, b, relative delta)` per quality metric present in
    /// either run.
    pub quality: Vec<(String, f64, f64, f64)>,
    /// Spend in run A / run B and the relative delta.
    pub spend: (f64, f64, f64),
    /// Simulated makespan in run A / run B and the relative delta.
    pub latency: (f64, f64, f64),
    /// Axes that breached their thresholds (`"quality:accuracy"`,
    /// `"spend"`, `"latency"`).
    pub breaches: Vec<String>,
}

/// Relative change from `a` to `b`: `(b - a) / |a|`, with the 0/0 case
/// reading as "no change" and a from-zero jump as a full-scale change.
fn rel_delta(a: f64, b: f64) -> f64 {
    if a == 0.0 && b == 0.0 {
        0.0
    } else if a == 0.0 {
        f64::INFINITY * b.signum()
    } else {
        (b - a) / a.abs()
    }
}

/// Computes per-experiment deltas between two replayed runs, pairing
/// experiments by id (experiments present in only one run are compared
/// against an empty span). Returns the deltas and whether any configured
/// threshold was breached.
pub fn metric_deltas(
    a: &LoadedStream,
    b: &LoadedStream,
    thresholds: &DeltaThresholds,
) -> (Vec<MetricDelta>, bool) {
    let ra = replay(a);
    let rb = replay(b);
    let empty = ExperimentSpan::default();
    // Pair by id, preserving run A's order, then run-B-only experiments.
    let mut ids: Vec<&str> = ra.experiments.iter().map(|e| e.id.as_str()).collect();
    for e in &rb.experiments {
        if !ids.contains(&e.id.as_str()) {
            ids.push(&e.id);
        }
    }
    let mut any_breach = false;
    let mut deltas = Vec::with_capacity(ids.len());
    for id in ids {
        let ea = ra.experiments.iter().find(|e| e.id == id).unwrap_or(&empty);
        let eb = rb.experiments.iter().find(|e| e.id == id).unwrap_or(&empty);
        let mut breaches = Vec::new();
        let mut quality = Vec::new();
        let mut metrics: Vec<&str> = ea.quality.iter().map(|(m, _)| m.as_str()).collect();
        for (m, _) in &eb.quality {
            if !metrics.contains(&m.as_str()) {
                metrics.push(m);
            }
        }
        for metric in metrics {
            let qa = lookup(&ea.quality, metric);
            let qb = lookup(&eb.quality, metric);
            let d = rel_delta(qa, qb);
            if let Some(tol) = thresholds.quality {
                // Quality regressions are drops: breach on d < -tol.
                if d < -tol {
                    any_breach = true;
                    breaches.push(format!("quality:{metric}"));
                }
            }
            quality.push((metric.to_owned(), qa, qb, d));
        }
        let spend_d = rel_delta(ea.spend, eb.spend);
        if let Some(tol) = thresholds.spend {
            if spend_d > tol {
                any_breach = true;
                breaches.push("spend".to_owned());
            }
        }
        let latency_d = rel_delta(ea.makespan, eb.makespan);
        if let Some(tol) = thresholds.latency {
            if latency_d > tol {
                any_breach = true;
                breaches.push("latency".to_owned());
            }
        }
        deltas.push(MetricDelta {
            id: id.to_owned(),
            quality,
            spend: (ea.spend, eb.spend, spend_d),
            latency: (ea.makespan, eb.makespan, latency_d),
            breaches,
        });
    }
    (deltas, any_breach)
}

fn lookup(pairs: &[(String, f64)], metric: &str) -> f64 {
    pairs
        .iter()
        .find(|(m, _)| m == metric)
        .map_or(0.0, |(_, v)| *v)
}

/// Renders the delta table: one row per experiment, breaches flagged.
pub fn render_deltas(deltas: &[MetricDelta]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:>12} {:>12} {:>9}  {:>12} {:>12} {:>9}  quality",
        "exp", "spend A", "spend B", "Δ%", "makespan A", "makespan B", "Δ%"
    );
    for d in deltas {
        let _ = write!(
            out,
            "{:<6} {:>12.2} {:>12.2} {:>8.2}%  {:>12.2} {:>12.2} {:>8.2}% ",
            d.id,
            d.spend.0,
            d.spend.1,
            d.spend.2 * 100.0,
            d.latency.0,
            d.latency.1,
            d.latency.2 * 100.0,
        );
        for (metric, qa, qb, dd) in &d.quality {
            let _ = write!(out, " {metric} {qa:.4}→{qb:.4} ({:+.2}%)", dd * 100.0);
        }
        if !d.breaches.is_empty() {
            let _ = write!(out, "  BREACH[{}]", d.breaches.join(","));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::parse_stream;

    fn stream(lines: &[&str]) -> LoadedStream {
        let mut text = String::new();
        for l in lines {
            text.push_str(l);
            text.push('\n');
        }
        parse_stream(&text).unwrap()
    }

    #[test]
    fn identical_streams_have_no_divergence() {
        let a = stream(&["{\"key\":\"k\",\"sim\":1,\"n\":2}"]);
        assert_eq!(first_divergence(&a, &a.clone()), None);
    }

    #[test]
    fn wall_fields_do_not_cause_divergence() {
        let a = stream(&["{\"key\":\"k\",\"wall_ns\":1,\"n\":2,\"t_ns\":100}"]);
        let b = stream(&["{\"key\":\"k\",\"wall_ns\":9,\"n\":2,\"t_ns\":999}"]);
        assert_eq!(first_divergence(&a, &b), None);
    }

    #[test]
    fn field_level_divergence_is_localized() {
        let a = stream(&["{\"key\":\"k\",\"n\":2}", "{\"key\":\"x\",\"v\":1.5}"]);
        let b = stream(&["{\"key\":\"k\",\"n\":2}", "{\"key\":\"x\",\"v\":2.5}"]);
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!((d.line_a, d.line_b), (2, 2));
        assert_eq!(d.key_a, "x");
        assert!(d.detail.contains("field `v` differs: 1.5 vs 2.5"), "{}", d.detail);
        assert!(d.render().contains("line 2"));
    }

    #[test]
    fn length_mismatch_is_a_divergence() {
        let a = stream(&["{\"key\":\"k\"}"]);
        let b = stream(&["{\"key\":\"k\"}", "{\"key\":\"extra\"}"]);
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.key_b, "extra");
        assert!(d.key_a.is_empty());
        assert!(d.render().contains("stream A ends here"));
    }

    #[test]
    fn key_divergence_reports_both_keys() {
        let a = stream(&["{\"key\":\"p\"}"]);
        let b = stream(&["{\"key\":\"q\"}"]);
        let d = first_divergence(&a, &b).expect("diverges");
        assert!(d.detail.contains("`p` vs `q`"));
    }

    fn run(quality: f64, spend: f64, makespan: f64) -> LoadedStream {
        stream(&[
            "{\"key\":\"exp.begin\",\"id\":\"e1\"}",
            &format!(
                "{{\"key\":\"platform.batch\",\"sim\":{makespan},\"requests\":4,\
\"delivered\":4,\"spend\":{spend},\"makespan\":{makespan},\"latency_sum\":9,\
\"budget_stopped\":0,\"no_worker\":0}}"
            ),
            &format!("{{\"key\":\"exp.quality\",\"metric\":\"accuracy\",\"value\":{quality}}}"),
            "{\"key\":\"exp.end\",\"id\":\"e1\"}",
        ])
    }

    #[test]
    fn deltas_flag_only_configured_breaches() {
        let a = run(0.9, 10.0, 50.0);
        let b = run(0.8, 10.4, 80.0); // −11% quality, +4% spend, +60% latency
        let (deltas, breach) = metric_deltas(&a, &b, &DeltaThresholds::default());
        assert!(!breach, "no thresholds configured");
        assert_eq!(deltas.len(), 1);
        assert!((deltas[0].quality[0].3 - (-1.0 / 9.0)).abs() < 1e-9);

        let t = DeltaThresholds {
            quality: Some(0.05),
            spend: Some(0.05),
            latency: Some(0.05),
        };
        let (deltas, breach) = metric_deltas(&a, &b, &t);
        assert!(breach);
        assert_eq!(
            deltas[0].breaches,
            vec!["quality:accuracy".to_owned(), "latency".to_owned()],
            "spend is within 5%"
        );
        assert!(render_deltas(&deltas).contains("BREACH[quality:accuracy,latency]"));
    }

    #[test]
    fn improvements_never_breach_one_sided_gates() {
        let a = run(0.8, 10.0, 50.0);
        let b = run(0.95, 5.0, 20.0);
        let t = DeltaThresholds {
            quality: Some(0.01),
            spend: Some(0.01),
            latency: Some(0.01),
        };
        let (_, breach) = metric_deltas(&a, &b, &t);
        assert!(!breach);
    }
}
