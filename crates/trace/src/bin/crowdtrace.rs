//! `crowdtrace` — inspect, compare, and gate crowdkit obs streams.
//!
//! ```text
//! crowdtrace replay <stream.jsonl> [--folded <out.folded>]
//! crowdtrace diff <a.jsonl> <b.jsonl> [--quality-tol F] [--spend-tol F] [--latency-tol F]
//! crowdtrace regress --history <BENCH_HISTORY.jsonl> --current <BENCH_truth.json>
//!                    [--window N] [--threshold F]
//! crowdtrace history <BENCH_truth.json> --history <BENCH_HISTORY.jsonl>
//! crowdtrace history --history <BENCH_HISTORY.jsonl> [--bench FAMILY] [--last N]
//! crowdtrace top <stream.jsonl> [--watch SECS]
//! crowdtrace metrics <stream.jsonl> [--series NAME]
//! crowdtrace why <task-id> <stream.jsonl> [--exp ID] [--algo NAME]
//! crowdtrace audit <stream.jsonl> [--margin F]
//! ```
//!
//! Exit codes: `diff` exits 0 when the deterministic event bodies are
//! identical, 1 on divergence, 2 on a metric-threshold breach; `regress`
//! exits 1 on a perf regression; usage errors exit 64 and unreadable or
//! malformed inputs exit 65 (the BSD sysexits conventions).

#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::process::ExitCode;

use crowdkit_trace::diff::{first_divergence, metric_deltas, render_deltas, DeltaThresholds};
use crowdkit_trace::history::{
    append_history, parse_bench_snapshot, parse_history, regress, render_history_listing,
    BenchEntry,
};
use crowdkit_trace::prov;
use crowdkit_trace::replay::replay;
use crowdkit_trace::stream::{complete_lines, parse_stream, LoadedStream};
use crowdkit_trace::top;

const USAGE: &str = "crowdtrace — inspect, compare, and gate crowdkit obs streams

USAGE:
  crowdtrace replay <stream.jsonl> [--folded <out.folded>]
      Rebuild per-experiment span trees from a stream and print a cost /
      wall-time attribution report. --folded also writes a collapsed-stack
      profile (one `frame;frame weight` line per stack) for flamegraph
      tooling.

  crowdtrace diff <a.jsonl> <b.jsonl> [--quality-tol F] [--spend-tol F] [--latency-tol F]
      Compare the deterministic event bodies of two streams, report the
      first divergent event (line numbers and keys), then report per-
      experiment metric deltas. Exit 0 = identical, 1 = divergent,
      2 = a configured relative threshold was breached.

  crowdtrace regress --history <BENCH_HISTORY.jsonl> --current <BENCH_*.json>
                     [--window N] [--threshold F]
      Compare current per-algorithm ns/iter against the rolling median of
      the last N (default 5) history entries with the same bench family
      and thread count (truth microbench and scale macrobench numbers
      never share a baseline). Exit 1 when any algorithm is more than F
      (default 0.25 = +25%) slower.

  crowdtrace history <BENCH_*.json> --history <BENCH_HISTORY.jsonl>
      Append the current bench snapshot (truth or scale) to the history
      file.

  crowdtrace history --history <BENCH_HISTORY.jsonl> [--bench FAMILY] [--last N]
      Without a snapshot path: list the history entries instead, newest
      last, optionally filtered to one bench family and limited to the
      last N matching entries.

  crowdtrace top <stream.jsonl> [--watch SECS]
      Fold the stream's metrics.snapshot telemetry deltas back into
      totals and render them as a per-subsystem table (counters sum,
      gauges keep their latest value, histograms merge). --watch re-reads
      the file every SECS seconds, tolerating a partially written last
      line, until interrupted.

  crowdtrace metrics <stream.jsonl> [--series NAME]
      List the metric series present in a stream, or with --series print
      every snapshot of that one series over time (line, seq, sim clock,
      delta payload).

  crowdtrace why <task-id> <stream.jsonl> [--exp ID] [--algo NAME]
      Explain every inference decision recorded for one task: the
      contributing votes, final worker weights, posterior margin, label
      flip timeline, and what the task cost — one block per run whose
      prov.task lineage mentions the task (capture the stream with --log
      so detail events land). --exp / --algo narrow to one experiment or
      algorithm.

  crowdtrace audit <stream.jsonl> [--margin F]
      Suite-wide decision audit from the prov.* events: per-run summary
      table, contested tasks below the margin threshold (default 0.1),
      most-influential and most-overruled workers, and spend-per-correct-
      label by experiment.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(CliError::Usage(msg)) => {
            eprintln!("crowdtrace: {msg}\n\n{USAGE}");
            ExitCode::from(64)
        }
        Err(CliError::Data(msg)) => {
            eprintln!("crowdtrace: {msg}");
            ExitCode::from(65)
        }
    }
}

enum CliError {
    /// Bad invocation: unknown subcommand, missing or malformed flags.
    Usage(String),
    /// Good invocation, bad world: unreadable files, malformed streams.
    Data(String),
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage("missing subcommand".into()));
    };
    match cmd.as_str() {
        "replay" => cmd_replay(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        "regress" => cmd_regress(&args[1..]),
        "history" => cmd_history(&args[1..]),
        "top" => cmd_top(&args[1..]),
        "metrics" => cmd_metrics(&args[1..]),
        "why" => cmd_why(&args[1..]),
        "audit" => cmd_audit(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

/// `--flag value` pairs pulled out of an argument list.
type Flags<'a> = Vec<(&'a str, &'a str)>;

/// Splits `args` into positionals and `--flag value` pairs, rejecting
/// flags outside `allowed`.
fn parse_flags<'a>(
    args: &'a [String],
    allowed: &[&str],
) -> Result<(Vec<&'a str>, Flags<'a>), CliError> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if let Some(name) = arg.strip_prefix("--") {
            if !allowed.contains(&name) {
                return Err(CliError::Usage(format!("unknown flag `--{name}`")));
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| CliError::Usage(format!("flag `--{name}` needs a value")))?;
            flags.push((name, value.as_str()));
            i += 2;
        } else {
            positional.push(arg);
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

fn parse_f64_flag(flags: &[(&str, &str)], name: &str) -> Result<Option<f64>, CliError> {
    flag(flags, name)
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| CliError::Usage(format!("flag `--{name}` wants a number, got `{v}`")))
        })
        .transpose()
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Data(format!("cannot read `{path}`: {e}")))
}

fn load(path: &str) -> Result<LoadedStream, CliError> {
    let text = read_file(path)?;
    parse_stream(&text).map_err(|e| CliError::Data(format!("{path}: {e}")))
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, CliError> {
    let (positional, flags) = parse_flags(args, &["folded"])?;
    let [path] = positional[..] else {
        return Err(CliError::Usage("replay wants exactly one stream path".into()));
    };
    let stream = load(path)?;
    let rep = replay(&stream);
    print!("{}", rep.render());
    if let Some(out) = flag(&flags, "folded") {
        let folded = rep.folded();
        std::fs::write(out, &folded)
            .map_err(|e| CliError::Data(format!("cannot write `{out}`: {e}")))?;
        println!(
            "wrote {} collapsed stacks to {out}",
            folded.lines().count()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, CliError> {
    let (positional, flags) = parse_flags(args, &["quality-tol", "spend-tol", "latency-tol"])?;
    let [path_a, path_b] = positional[..] else {
        return Err(CliError::Usage("diff wants exactly two stream paths".into()));
    };
    let a = load(path_a)?;
    let b = load(path_b)?;
    let thresholds = DeltaThresholds {
        quality: parse_f64_flag(&flags, "quality-tol")?,
        spend: parse_f64_flag(&flags, "spend-tol")?,
        latency: parse_f64_flag(&flags, "latency-tol")?,
    };
    let divergence = first_divergence(&a, &b);
    match &divergence {
        None => println!(
            "streams are identical on deterministic fields ({} events)",
            a.events.len()
        ),
        Some(d) => print!("A = {path_a}\nB = {path_b}\n{}", d.render()),
    }
    let (deltas, breached) = metric_deltas(&a, &b, &thresholds);
    print!("{}", render_deltas(&deltas));
    Ok(if breached {
        ExitCode::from(2)
    } else if divergence.is_some() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_regress(args: &[String]) -> Result<ExitCode, CliError> {
    let (positional, flags) = parse_flags(args, &["history", "current", "window", "threshold"])?;
    if !positional.is_empty() {
        return Err(CliError::Usage("regress takes only flags".into()));
    }
    let history_path = flag(&flags, "history")
        .ok_or_else(|| CliError::Usage("regress needs `--history <BENCH_HISTORY.jsonl>`".into()))?;
    let current_path = flag(&flags, "current")
        .ok_or_else(|| CliError::Usage("regress needs `--current <BENCH_truth.json>`".into()))?;
    let window = match flag(&flags, "window") {
        None => 5,
        Some(v) => v.parse::<usize>().map_err(|_| {
            CliError::Usage(format!("flag `--window` wants an integer, got `{v}`"))
        })?,
    };
    let threshold = parse_f64_flag(&flags, "threshold")?.unwrap_or(0.25);
    let current = load_snapshot(current_path)?;
    let history = match std::fs::read_to_string(history_path) {
        Ok(text) => parse_history(&text)
            .map_err(|e| CliError::Data(format!("{history_path}: {e}")))?,
        // A missing history file is an empty baseline, not an error —
        // the first CI run has nothing to regress from.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(CliError::Data(format!("cannot read `{history_path}`: {e}"))),
    };
    let report = regress(&history, &current, window, threshold);
    print!("{}", report.render(threshold));
    Ok(if report.breached {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_history(args: &[String]) -> Result<ExitCode, CliError> {
    let (positional, flags) = parse_flags(args, &["history", "bench", "last"])?;
    let history_path = flag(&flags, "history")
        .ok_or_else(|| CliError::Usage("history needs `--history <BENCH_HISTORY.jsonl>`".into()))?;
    match positional[..] {
        // Append mode: a snapshot path adds one line to the history file.
        [current_path] => {
            if flag(&flags, "bench").is_some() || flag(&flags, "last").is_some() {
                return Err(CliError::Usage(
                    "`--bench`/`--last` list history; omit the snapshot path".into(),
                ));
            }
            let entry = load_snapshot(current_path)?;
            append_history(history_path, &entry)
                .map_err(|e| CliError::Data(format!("cannot append to `{history_path}`: {e}")))?;
            println!(
                "appended {} ({} algorithms, {} threads) to {history_path}",
                entry.git_rev,
                entry.algorithms.len(),
                entry.threads
            );
            Ok(ExitCode::SUCCESS)
        }
        // Listing mode: no snapshot path, optional family filter and limit.
        [] => {
            let bench = flag(&flags, "bench");
            let last = match flag(&flags, "last") {
                None => None,
                Some(v) => Some(v.parse::<usize>().map_err(|_| {
                    CliError::Usage(format!("flag `--last` wants an integer, got `{v}`"))
                })?),
            };
            let entries = parse_history(&read_file(history_path)?)
                .map_err(|e| CliError::Data(format!("{history_path}: {e}")))?;
            print!("{}", render_history_listing(&entries, bench, last));
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(CliError::Usage(
            "history wants at most one snapshot path".into(),
        )),
    }
}

fn cmd_top(args: &[String]) -> Result<ExitCode, CliError> {
    let (positional, flags) = parse_flags(args, &["watch"])?;
    let [path] = positional[..] else {
        return Err(CliError::Usage("top wants exactly one stream path".into()));
    };
    let watch = match flag(&flags, "watch") {
        None => None,
        Some(v) => Some(v.parse::<u64>().map_err(|_| {
            CliError::Usage(format!("flag `--watch` wants whole seconds, got `{v}`"))
        })?),
    };
    let Some(secs) = watch else {
        let stream = load(path)?;
        print!("{}", top::collect(&stream).render());
        return Ok(ExitCode::SUCCESS);
    };
    // Watch mode: the writer may still be appending, so a torn final line
    // is expected — parse only up to the last complete newline, and on a
    // parse error keep the previous rendering rather than dying mid-run.
    loop {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                if let Ok(stream) = parse_stream(complete_lines(&text)) {
                    // Clear the terminal like top(1) so the table repaints
                    // in place.
                    print!("\x1b[2J\x1b[H{}", top::collect(&stream).render());
                    println!("\n(watching {path} every {secs}s — ^C to stop)");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                println!("(waiting for {path} to appear)");
            }
            Err(e) => return Err(CliError::Data(format!("cannot read `{path}`: {e}"))),
        }
        std::thread::sleep(std::time::Duration::from_secs(secs.max(1)));
    }
}

fn cmd_metrics(args: &[String]) -> Result<ExitCode, CliError> {
    let (positional, flags) = parse_flags(args, &["series"])?;
    let [path] = positional[..] else {
        return Err(CliError::Usage(
            "metrics wants exactly one stream path".into(),
        ));
    };
    let stream = load(path)?;
    match flag(&flags, "series") {
        None => {
            let names = top::series_names(&stream);
            println!("{} metric series in {path}", names.len());
            for n in &names {
                let count = top::series(&stream, n).len();
                println!("  {n:<28} {count} snapshot{}", if count == 1 { "" } else { "s" });
            }
        }
        Some(name) => {
            let points = top::series(&stream, name);
            if points.is_empty() {
                return Err(CliError::Data(format!(
                    "no metrics.snapshot events for series `{name}` in {path}"
                )));
            }
            println!("{name}: {} snapshot(s)", points.len());
            println!("{:>6} {:>5} {:>10}  payload", "line", "seq", "sim");
            for p in &points {
                let sim = p.sim.map_or("-".to_owned(), |s| format!("{s}"));
                println!("{:>6} {:>5} {:>10}  {}", p.line, p.seq, sim, p.payload);
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_why(args: &[String]) -> Result<ExitCode, CliError> {
    let (positional, flags) = parse_flags(args, &["exp", "algo"])?;
    let [task, path] = positional[..] else {
        return Err(CliError::Usage(
            "why wants a task id and a stream path".into(),
        ));
    };
    let task: u64 = task
        .parse()
        .map_err(|_| CliError::Usage(format!("why wants a numeric task id, got `{task}`")))?;
    let view = prov::collect(&load(path)?);
    let out = prov::render_why(&view, task, flag(&flags, "exp"), flag(&flags, "algo"))
        .map_err(|e| CliError::Data(format!("{path}: {e}")))?;
    print!("{out}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_audit(args: &[String]) -> Result<ExitCode, CliError> {
    let (positional, flags) = parse_flags(args, &["margin"])?;
    let [path] = positional[..] else {
        return Err(CliError::Usage("audit wants exactly one stream path".into()));
    };
    let margin = parse_f64_flag(&flags, "margin")?.unwrap_or(0.1);
    let view = prov::collect(&load(path)?);
    let out = prov::render_audit(&view, margin)
        .map_err(|e| CliError::Data(format!("{path}: {e}")))?;
    print!("{out}");
    Ok(ExitCode::SUCCESS)
}

fn load_snapshot(path: &str) -> Result<BenchEntry, CliError> {
    let text = read_file(path)?;
    parse_bench_snapshot(&text).map_err(|e| CliError::Data(format!("{path}: {e}")))
}
