//! Rendering `metrics.snapshot` events as a live per-subsystem table.
//!
//! The metrics layer (`crowdkit-metrics`) periodically exports registry
//! deltas as `metrics.snapshot` events: one event per *changed* metric,
//! tagged with its dotted name (`platform.spend_micros`), its kind
//! (`counter` / `gauge` / `hist_det` / `hist_wall`) and the delta payload.
//! This module folds those deltas back into totals and renders them the
//! way `top(1)` renders processes: one table per subsystem (the name
//! prefix before the first `.`), latest values, histogram summaries.
//!
//! ## Accumulation semantics
//!
//! A suite run contains *many* independent registries (one per
//! experiment), each reporting its own deltas from zero. Summing counter
//! and histogram deltas therefore yields the correct run-wide total;
//! gauges are point-in-time readings, so the view keeps the last value
//! seen (and that is what "latest snapshot" means for a gauge).
//!
//! Wall-clock quantile fields (`p50_ns`, …) appear only in streams
//! captured with wall data; deterministic captures carry the sample
//! counts alone, and the renderer degrades to counts-only for them.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crowdkit_metrics::{bucket_bound, N_BUCKETS};

use crate::stream::{LoadedStream, OwnedEvent};

/// Accumulated state of one metric series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesState {
    /// Monotonic counter: summed deltas and the event count.
    Counter {
        /// Sum of all `delta` fields (the run-wide total).
        total: u64,
    },
    /// Gauge: the last reported value.
    Gauge {
        /// Latest `value` field.
        value: i64,
    },
    /// Deterministic histogram: summed count/sum/bucket deltas.
    HistDet {
        /// Total samples.
        count: u64,
        /// Sum of sample values.
        sum: u64,
        /// Accumulated log2 bucket counts.
        buckets: Box<[u64; N_BUCKETS]>,
    },
    /// Wall-clock histogram: summed sample count, plus the latest wall
    /// quantile bounds when the stream was captured with wall data.
    HistWall {
        /// Total samples.
        count: u64,
        /// Latest `p50_ns` (cumulative quantile bound), if present.
        p50_ns: Option<u64>,
        /// Latest `p95_ns`, if present.
        p95_ns: Option<u64>,
        /// Latest `p99_ns`, if present.
        p99_ns: Option<u64>,
        /// Latest `max_ns`, if present.
        max_ns: Option<u64>,
    },
}

/// The folded-up metrics view of a stream.
#[derive(Debug, Clone, Default)]
pub struct MetricsView {
    /// Per-series accumulated state, keyed by dotted metric name
    /// (BTreeMap: stable render order).
    pub series: BTreeMap<String, SeriesState>,
    /// Total `metrics.snapshot` events folded in.
    pub events: u64,
    /// Highest `seq` seen (per-registry sequence; suite streams interleave
    /// several registries, so this is "latest cycle", not a global count).
    pub last_seq: u64,
}

/// True when this event is a metrics snapshot delta.
pub fn is_snapshot(e: &OwnedEvent) -> bool {
    e.key == "metrics.snapshot"
}

/// Folds every `metrics.snapshot` event of `stream` into a [`MetricsView`].
/// Unknown kinds and malformed events are skipped, not errors: the viewer
/// must tolerate streams from newer writers.
pub fn collect(stream: &LoadedStream) -> MetricsView {
    let mut view = MetricsView::default();
    for e in stream.events.iter().filter(|e| is_snapshot(e)) {
        let Some(name) = e.field_str("metric") else {
            continue;
        };
        let Some(kind) = e.field_str("kind") else {
            continue;
        };
        view.events += 1;
        if let Some(seq) = e.field_u64("seq") {
            view.last_seq = view.last_seq.max(seq);
        }
        match kind {
            "counter" => {
                let delta = e.field_u64("delta").unwrap_or(0);
                match view.series.get_mut(name) {
                    Some(SeriesState::Counter { total }) => *total += delta,
                    _ => {
                        view.series
                            .insert(name.to_owned(), SeriesState::Counter { total: delta });
                    }
                }
            }
            "gauge" => {
                let value = e
                    .fields
                    .iter()
                    .find(|(n, _)| n == "value")
                    .and_then(|(_, v)| v.as_i64())
                    .unwrap_or(0);
                view.series
                    .insert(name.to_owned(), SeriesState::Gauge { value });
            }
            "hist_det" => {
                let d_count = e.field_u64("count").unwrap_or(0);
                let d_sum = e.field_u64("sum").unwrap_or(0);
                let entry = view
                    .series
                    .entry(name.to_owned())
                    .or_insert_with(|| SeriesState::HistDet {
                        count: 0,
                        sum: 0,
                        buckets: Box::new([0u64; N_BUCKETS]),
                    });
                if let SeriesState::HistDet {
                    count,
                    sum,
                    buckets,
                } = entry
                {
                    *count += d_count;
                    *sum += d_sum;
                    for (n, v) in &e.fields {
                        if let Some(ix) = n.strip_prefix('b').and_then(|s| s.parse::<usize>().ok())
                        {
                            if ix < N_BUCKETS {
                                buckets[ix] += v.as_u64().unwrap_or(0);
                            }
                        }
                    }
                }
            }
            "hist_wall" => {
                let d_count = e.field_u64("count").unwrap_or(0);
                let entry = view
                    .series
                    .entry(name.to_owned())
                    .or_insert_with(|| SeriesState::HistWall {
                        count: 0,
                        p50_ns: None,
                        p95_ns: None,
                        p99_ns: None,
                        max_ns: None,
                    });
                if let SeriesState::HistWall {
                    count,
                    p50_ns,
                    p95_ns,
                    p99_ns,
                    max_ns,
                } = entry
                {
                    *count += d_count;
                    // Wall quantiles are cumulative per registry; keep the
                    // latest reading (absent in deterministic captures).
                    *p50_ns = e.wall_field("p50_ns").or(*p50_ns);
                    *p95_ns = e.wall_field("p95_ns").or(*p95_ns);
                    *p99_ns = e.wall_field("p99_ns").or(*p99_ns);
                    *max_ns = e.wall_field("max_ns").or(*max_ns);
                }
            }
            _ => {}
        }
    }
    view
}

/// Quantile bound over accumulated log2 buckets (mirrors the write-side
/// maths in `crowdkit-metrics`).
fn bucket_quantile(buckets: &[u64; N_BUCKETS], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_bound(i);
        }
    }
    bucket_bound(N_BUCKETS - 1)
}

impl MetricsView {
    /// Renders the view as per-subsystem tables (subsystem = name prefix
    /// before the first `.`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "metrics snapshot — {} series from {} events (last seq {})",
            self.series.len(),
            self.events,
            self.last_seq
        );
        if self.series.is_empty() {
            out.push_str("(no metrics.snapshot events in this stream)\n");
            return out;
        }
        let mut last_subsystem = "";
        for (name, state) in &self.series {
            let subsystem = name.split('.').next().unwrap_or(name);
            if subsystem != last_subsystem {
                let _ = writeln!(out, "\n[{subsystem}]");
                last_subsystem = subsystem;
            }
            let rendered = match state {
                SeriesState::Counter { total } => format!("{total}"),
                SeriesState::Gauge { value } => format!("{value} (gauge)"),
                SeriesState::HistDet {
                    count,
                    sum,
                    buckets,
                } => {
                    let mean = if *count > 0 {
                        *sum as f64 / *count as f64
                    } else {
                        0.0
                    };
                    format!(
                        "n={count} mean={mean:.1} p50<={} p95<={} max<={}",
                        bucket_quantile(buckets, *count, 0.5),
                        bucket_quantile(buckets, *count, 0.95),
                        buckets
                            .iter()
                            .rposition(|&c| c > 0)
                            .map_or(0, bucket_bound),
                    )
                }
                SeriesState::HistWall {
                    count,
                    p50_ns,
                    p95_ns,
                    p99_ns,
                    max_ns,
                } => match (p50_ns, p95_ns, max_ns) {
                    (Some(p50), Some(p95), Some(max)) => {
                        // p99 arrived in a later stream schema; render it
                        // only when the stream carried it.
                        let p99 = p99_ns.map_or(String::new(), |p| format!(" p99<={p}ns"));
                        format!("n={count} p50<={p50}ns p95<={p95}ns{p99} max<={max}ns")
                    }
                    _ => format!("n={count} (wall timings not captured)"),
                },
            };
            let _ = writeln!(out, "  {name:<28} {rendered}");
        }
        out
    }
}

/// One `metrics.snapshot` observation of a single series, for
/// `crowdtrace metrics --series`.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// 1-based line number in the stream.
    pub line: u32,
    /// Registry-local emit-cycle number.
    pub seq: u64,
    /// Simulated timestamp, when the event carried one.
    pub sim: Option<f64>,
    /// The event's deterministic payload rendered as `k=v` pairs
    /// (excluding `seq`/`metric`/`kind`).
    pub payload: String,
}

/// Extracts the time series of one metric from a stream, in stream order.
pub fn series(stream: &LoadedStream, name: &str) -> Vec<SeriesPoint> {
    stream
        .events
        .iter()
        .filter(|e| is_snapshot(e) && e.field_str("metric") == Some(name))
        .map(|e| {
            let mut payload = String::new();
            for (n, v) in &e.fields {
                if matches!(n.as_str(), "seq" | "metric" | "kind") {
                    continue;
                }
                if !payload.is_empty() {
                    payload.push(' ');
                }
                let _ = write!(payload, "{n}={}", v.to_string_compact());
            }
            SeriesPoint {
                line: e.line,
                seq: e.field_u64("seq").unwrap_or(0),
                sim: e.sim_f64(),
                payload,
            }
        })
        .collect()
}

/// The sorted list of series names present in a stream.
pub fn series_names(stream: &LoadedStream) -> Vec<String> {
    let mut names: Vec<String> = stream
        .events
        .iter()
        .filter(|e| is_snapshot(e))
        .filter_map(|e| e.field_str("metric").map(str::to_owned))
        .collect();
    names.sort_unstable();
    names.dedup();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::parse_stream;

    fn stream_of(lines: &[&str]) -> LoadedStream {
        parse_stream(&lines.join("\n")).expect("valid stream")
    }

    #[test]
    fn counters_sum_across_registries() {
        let s = stream_of(&[
            r#"{"key":"metrics.snapshot","seq":1,"metric":"assign.questions","kind":"counter","delta":5,"total":5}"#,
            r#"{"key":"metrics.snapshot","seq":1,"metric":"assign.questions","kind":"counter","delta":3,"total":3}"#,
        ]);
        let v = collect(&s);
        assert_eq!(v.events, 2);
        assert_eq!(
            v.series.get("assign.questions"),
            Some(&SeriesState::Counter { total: 8 })
        );
    }

    #[test]
    fn gauges_keep_last_value() {
        let s = stream_of(&[
            r#"{"key":"metrics.snapshot","seq":1,"metric":"truth.active_tasks","kind":"gauge","value":100}"#,
            r#"{"key":"metrics.snapshot","seq":2,"metric":"truth.active_tasks","kind":"gauge","value":-7}"#,
        ]);
        let v = collect(&s);
        assert_eq!(
            v.series.get("truth.active_tasks"),
            Some(&SeriesState::Gauge { value: -7 })
        );
        assert_eq!(v.last_seq, 2);
    }

    #[test]
    fn det_histograms_accumulate_buckets() {
        let s = stream_of(&[
            r#"{"key":"metrics.snapshot","seq":1,"metric":"assign.wave_size","kind":"hist_det","count":2,"sum":11,"b2":1,"b4":1}"#,
            r#"{"key":"metrics.snapshot","seq":2,"metric":"assign.wave_size","kind":"hist_det","count":1,"sum":3,"b2":1}"#,
        ]);
        let v = collect(&s);
        match v.series.get("assign.wave_size") {
            Some(SeriesState::HistDet {
                count,
                sum,
                buckets,
            }) => {
                assert_eq!((*count, *sum), (3, 14));
                assert_eq!(buckets[2], 2);
                assert_eq!(buckets[4], 1);
            }
            other => panic!("unexpected state {other:?}"),
        }
        let rendered = v.render();
        assert!(rendered.contains("[assign]"));
        assert!(rendered.contains("assign.wave_size"));
        assert!(rendered.contains("n=3"));
    }

    #[test]
    fn wall_histograms_degrade_without_wall_data() {
        let s = stream_of(&[
            r#"{"key":"metrics.snapshot","seq":1,"metric":"truth.ds.sweep_ns","kind":"hist_wall","count":4}"#,
        ]);
        let v = collect(&s);
        assert_eq!(
            v.series.get("truth.ds.sweep_ns"),
            Some(&SeriesState::HistWall {
                count: 4,
                p50_ns: None,
                p95_ns: None,
                p99_ns: None,
                max_ns: None
            })
        );
        assert!(v.render().contains("wall timings not captured"));
    }

    #[test]
    fn wall_histograms_pick_up_wall_quantiles() {
        let s = stream_of(&[
            r#"{"key":"metrics.snapshot","wall_ns":1,"seq":1,"metric":"truth.ds.sweep_ns","kind":"hist_wall","count":4,"sum_ns":100,"p50_ns":15,"p95_ns":31,"p99_ns":63,"max_ns":63}"#,
        ]);
        let v = collect(&s);
        assert_eq!(
            v.series.get("truth.ds.sweep_ns"),
            Some(&SeriesState::HistWall {
                count: 4,
                p50_ns: Some(15),
                p95_ns: Some(31),
                p99_ns: Some(63),
                max_ns: Some(63)
            })
        );
        let rendered = v.render();
        assert!(rendered.contains("p95<=31ns"));
        assert!(rendered.contains("p99<=63ns"));
    }

    #[test]
    fn wall_histograms_render_without_p99_from_older_streams() {
        // Streams recorded before p99 landed lack the field; the render
        // degrades to the old three-quantile line.
        let s = stream_of(&[
            r#"{"key":"metrics.snapshot","wall_ns":1,"seq":1,"metric":"truth.ds.sweep_ns","kind":"hist_wall","count":4,"sum_ns":100,"p50_ns":15,"p95_ns":31,"max_ns":31}"#,
        ]);
        let rendered = collect(&s).render();
        assert!(rendered.contains("p95<=31ns max<=31ns"));
        assert!(!rendered.contains("p99"));
    }

    #[test]
    fn series_extraction_orders_and_filters() {
        let s = stream_of(&[
            r#"{"key":"metrics.snapshot","seq":1,"metric":"sql.queries","kind":"counter","delta":1,"total":1}"#,
            r#"{"key":"other.event","n":1}"#,
            r#"{"key":"metrics.snapshot","sim":2.5,"seq":2,"metric":"sql.queries","kind":"counter","delta":4,"total":5}"#,
        ]);
        let pts = series(&s, "sql.queries");
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].seq, 1);
        assert_eq!(pts[1].sim, Some(2.5));
        assert_eq!(pts[1].payload, "delta=4 total=5");
        assert_eq!(series_names(&s), vec!["sql.queries".to_owned()]);
        assert!(series(&s, "nope").is_empty());
    }

    #[test]
    fn empty_stream_renders_placeholder() {
        let s = stream_of(&[r#"{"key":"platform.batch","requests":1}"#]);
        let v = collect(&s);
        assert_eq!(v.events, 0);
        assert!(v.render().contains("no metrics.snapshot events"));
    }
}
