//! A minimal, dependency-free JSON parser for the crowdkit stream formats.
//!
//! The workspace is offline (no serde), and every JSON this crate consumes
//! is produced by crowdkit's own writers, so the parser is small but
//! *strict*: any malformed input is an error with a byte column, which the
//! stream loader upgrades to a line number.
//!
//! Two representation choices matter for correctness:
//!
//! * **Numbers keep their lexeme.** [`Json::Num`] stores the exact source
//!   text (`"0.30000000000000004"`, `"-0"`), so re-serializing a parsed
//!   stream is byte-identical regardless of float formatting subtleties.
//!   Numeric comparisons go through [`Json::as_f64`].
//! * **Objects keep insertion order.** Members live in a `Vec`, never a
//!   hash map, so serialization order is the source order (and hash-order
//!   nondeterminism — the workspace's DET001 bug class — cannot arise).

use std::fmt;
use std::fmt::Write as _;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its exact source lexeme.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, members in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// The value as `f64`: numbers parse their lexeme, everything else is
    /// `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u64` (numbers with an exact non-negative integer
    /// lexeme only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `i64` (numbers with an exact integer lexeme only;
    /// gauge readings may be negative).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `&str`, for string values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object member lookup (objects only; first match).
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes the value, preserving member order and number lexemes:
    /// `parse(s).write() == s` for any compact (whitespace-free) input.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(lexeme) => out.push_str(lexeme),
            Json::Str(s) => write_json_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (name, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(name, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The serialized form as a fresh `String`.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

/// Escapes and writes one JSON string literal, mirroring the obs writer's
/// escape set so round-trips through [`Json`] are byte-exact.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure at a 1-based byte column of the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based byte offset into the parsed text.
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "col {}: {}", self.col, self.message)
    }
}

/// Parses one complete JSON value from `text`, requiring the whole input
/// (modulo surrounding whitespace) to be consumed.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            col: (self.pos + 1) as u32,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((name, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates and other invalid scalars become
                            // the replacement character; the obs writer
                            // never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(
                                self.error(format!("invalid escape '\\{}'", other as char))
                            )
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected digits in exponent"));
            }
        }
        // The scanned range is ASCII by construction.
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("non-ASCII bytes in number"))?;
        Ok(Json::Num(lexeme.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_event_shaped_objects() {
        let v = parse("{\"key\":\"platform.batch\",\"sim\":12.5,\"requests\":40}").unwrap();
        assert_eq!(v.get("key").and_then(Json::as_str), Some("platform.batch"));
        assert_eq!(v.get("sim").and_then(|j| j.as_f64()), Some(12.5));
        assert_eq!(v.get("requests").and_then(Json::as_u64), Some(40));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn roundtrips_compact_json_byte_exactly() {
        for src in [
            "{\"key\":\"k\",\"sim\":1,\"n\":2}",
            "{\"a\":-0.5,\"b\":\"x\\\"y\\\\z\",\"c\":null,\"d\":[1,2.25,\"s\"]}",
            "{\"nested\":{\"x\":{},\"y\":[]},\"t\":true,\"f\":false}",
            "{\"weird\":-0,\"tiny\":0.30000000000000004,\"exp\":1e3}",
            "{}",
        ] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_string_compact(), src, "round-trip of {src}");
        }
    }

    #[test]
    fn strict_errors_carry_columns() {
        let e = parse("{\"a\":}").unwrap_err();
        assert_eq!(e.col, 6);
        let e = parse("{\"a\":1} extra").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = parse("{\"a\" 1}").unwrap_err();
        assert!(e.message.contains("':'"));
        assert!(parse("").is_err());
        assert!(parse("{\"a\":01x}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\":nul}").is_err());
    }

    #[test]
    fn escapes_roundtrip_through_unescape() {
        let v = parse("{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}").unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\nd\te\u{1}f"));
        assert_eq!(
            v.to_string_compact(),
            "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}"
        );
    }

    #[test]
    fn number_lexemes_are_preserved_verbatim() {
        for n in ["-0", "1e3", "1E-2", "123456789012345678901234567890", "0.1"] {
            let v = parse(n).unwrap();
            assert_eq!(v.to_string_compact(), n);
        }
    }
}
