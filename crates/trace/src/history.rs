//! Bench history and the perf-regression gate.
//!
//! `bench_truth` and `bench_scale` measure per-algorithm ns/iter and write
//! `BENCH_truth.json` / `BENCH_scale.json`; this module gives those
//! snapshots a trajectory. [`append_history`] adds one line per run to
//! `BENCH_HISTORY.jsonl`, keyed by git revision, bench family, and thread
//! count, and [`regress`] compares the current snapshot against a rolling
//! baseline (the per-algorithm median of the last *N* comparable entries)
//! so a perf regression fails CI the same way a lint finding does.
//!
//! Entries from different thread counts or bench families are never
//! compared: a timing taken at 8 threads says nothing about a 1-thread
//! baseline, and a `scale` macrobench number says nothing about a `truth`
//! microbench baseline even for the same algorithm name. History lines
//! written before the `bench` field existed parse as family `"truth"`,
//! which is what they measured.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use crate::json::{self, write_json_string, Json};
use crate::stream::StreamError;

/// Bench family recorded when a history line predates the `bench` field —
/// everything written back then came from `bench_truth`.
pub const DEFAULT_BENCH: &str = "truth";

/// One algorithm's measurement within a bench run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgoTiming {
    /// Median wall nanoseconds per full `infer` call.
    pub ns_per_iter: u64,
    /// Process peak RSS in bytes observed after this algorithm ran
    /// (`VmHWM`, so monotone across a run), when the bench records it.
    pub peak_rss: Option<u64>,
}

impl AlgoTiming {
    /// A timing with no memory measurement (the `bench_truth` shape).
    pub const fn ns(ns_per_iter: u64) -> Self {
        Self {
            ns_per_iter,
            peak_rss: None,
        }
    }
}

/// One bench run: where it came from and what it measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Short git revision of the measured checkout.
    pub git_rev: String,
    /// Worker-thread count the kernels ran with.
    pub threads: u64,
    /// Bench family the numbers belong to (`"truth"`, `"scale"`, …).
    /// Regression baselines never cross families.
    pub bench: String,
    /// Per-algorithm measurements, in algorithm order.
    pub algorithms: Vec<(String, AlgoTiming)>,
}

impl BenchEntry {
    /// ns/iter for one algorithm, if measured.
    pub fn ns(&self, algo: &str) -> Option<u64> {
        self.algorithms
            .iter()
            .find(|(a, _)| a == algo)
            .map(|(_, t)| t.ns_per_iter)
    }

    /// Renders the entry as one JSONL history line. Algorithms without a
    /// memory measurement serialize as a bare integer — the exact shape
    /// pre-`bench`-field lines used, so old and new lines interleave in
    /// one file.
    pub fn to_jsonl_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"git_rev\":");
        write_json_string(&self.git_rev, &mut out);
        let _ = write!(out, ",\"threads\":{},\"bench\":", self.threads);
        write_json_string(&self.bench, &mut out);
        out.push_str(",\"algorithms\":{");
        for (i, (algo, t)) in self.algorithms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(algo, &mut out);
            match t.peak_rss {
                None => {
                    let _ = write!(out, ":{}", t.ns_per_iter);
                }
                Some(rss) => {
                    let _ = write!(
                        out,
                        ":{{\"ns_per_iter\":{},\"peak_rss\":{rss}}}",
                        t.ns_per_iter
                    );
                }
            }
        }
        out.push_str("}}");
        out
    }
}

/// Parses one algorithm value from a history line or snapshot: either a
/// bare ns integer or a `{"ns_per_iter": N, "peak_rss": M}` object.
fn parse_algo_timing(v: &Json) -> Option<AlgoTiming> {
    if let Some(ns) = v.as_u64() {
        return Some(AlgoTiming::ns(ns));
    }
    let ns = v.get("ns_per_iter").and_then(Json::as_u64)?;
    Some(AlgoTiming {
        ns_per_iter: ns,
        peak_rss: v.get("peak_rss").and_then(Json::as_u64),
    })
}

/// Parses a bench snapshot (`BENCH_truth.json` / `BENCH_scale.json`:
/// `algorithms.{name}.ns_per_iter` with optional `peak_rss`, top-level
/// `threads`, `git_rev`, and optional `bench` family).
pub fn parse_bench_snapshot(text: &str) -> Result<BenchEntry, StreamError> {
    let err = |message: String| StreamError { line: 1, message };
    let v = json::parse(text).map_err(|e| err(format!("invalid BENCH json ({e})")))?;
    let git_rev = v
        .get("git_rev")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_owned();
    let threads = v.get("threads").and_then(Json::as_u64).unwrap_or(0);
    let bench = v
        .get("bench")
        .and_then(Json::as_str)
        .unwrap_or(DEFAULT_BENCH)
        .to_owned();
    let algos = match v.get("algorithms") {
        Some(Json::Object(members)) => members,
        _ => return Err(err("snapshot missing `algorithms` object".into())),
    };
    let mut algorithms = Vec::with_capacity(algos.len());
    for (name, entry) in algos {
        let timing = parse_algo_timing(entry)
            .ok_or_else(|| err(format!("algorithm `{name}` missing numeric `ns_per_iter`")))?;
        algorithms.push((name.clone(), timing));
    }
    if algorithms.is_empty() {
        return Err(err("snapshot has no algorithms".into()));
    }
    Ok(BenchEntry {
        git_rev,
        threads,
        bench,
        algorithms,
    })
}

/// Parses a `BENCH_HISTORY.jsonl` file (one [`BenchEntry`] line per run).
/// Errors carry the offending 1-based line number.
pub fn parse_history(text: &str) -> Result<Vec<BenchEntry>, StreamError> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = (i + 1) as u32;
        if raw.trim().is_empty() {
            continue;
        }
        let err = |message: String| StreamError { line, message };
        let v = json::parse(raw).map_err(|e| err(format!("invalid JSON ({e})")))?;
        let git_rev = v
            .get("git_rev")
            .and_then(Json::as_str)
            .ok_or_else(|| err("history entry missing string `git_rev`".into()))?
            .to_owned();
        let threads = v
            .get("threads")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("history entry missing numeric `threads`".into()))?;
        let bench = v
            .get("bench")
            .and_then(Json::as_str)
            .unwrap_or(DEFAULT_BENCH)
            .to_owned();
        let algorithms = match v.get("algorithms") {
            Some(Json::Object(members)) => {
                let mut out = Vec::with_capacity(members.len());
                for (name, value) in members {
                    let timing = parse_algo_timing(value).ok_or_else(|| {
                        err(format!("algorithm `{name}` has a non-integer timing"))
                    })?;
                    out.push((name.clone(), timing));
                }
                out
            }
            _ => return Err(err("history entry missing `algorithms` object".into())),
        };
        entries.push(BenchEntry {
            git_rev,
            threads,
            bench,
            algorithms,
        });
    }
    Ok(entries)
}

/// Appends one entry to the history file, creating it if needed.
pub fn append_history(path: impl AsRef<Path>, entry: &BenchEntry) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut line = entry.to_jsonl_line();
    line.push('\n');
    file.write_all(line.as_bytes())
}

/// Renders a history listing: one row per entry, newest last, optionally
/// filtered to one bench family and limited to the last `last` matching
/// entries. `last = None` means no limit.
pub fn render_history_listing(
    entries: &[BenchEntry],
    bench: Option<&str>,
    last: Option<usize>,
) -> String {
    let matching: Vec<&BenchEntry> = entries
        .iter()
        .filter(|e| bench.is_none_or(|b| e.bench == b))
        .collect();
    let shown = match last {
        Some(n) if matching.len() > n => &matching[matching.len() - n..],
        _ => &matching[..],
    };
    let mut out = String::new();
    let scope = bench.map_or(String::new(), |b| format!(" (bench {b})"));
    let _ = writeln!(
        out,
        "{} of {} history entr{}{scope}",
        shown.len(),
        matching.len(),
        if matching.len() == 1 { "y" } else { "ies" },
    );
    let _ = writeln!(
        out,
        "{:<10} {:<8} {:>8}  algorithms (ns/iter)",
        "git_rev", "bench", "threads"
    );
    for e in shown {
        let algos = e
            .algorithms
            .iter()
            .map(|(a, t)| match t.peak_rss {
                Some(rss) => format!("{a}={} rss={rss}", t.ns_per_iter),
                None => format!("{a}={}", t.ns_per_iter),
            })
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "{:<10} {:<8} {:>8}  {algos}",
            e.git_rev, e.bench, e.threads
        );
    }
    out
}

/// One algorithm's verdict in a regression check.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressRow {
    /// Algorithm name.
    pub algo: String,
    /// Rolling-baseline ns/iter (median of the window), when any
    /// comparable history exists.
    pub baseline_ns: Option<u64>,
    /// Current ns/iter.
    pub current_ns: u64,
    /// `current / baseline` (1.0 when no baseline).
    pub ratio: f64,
    /// Whether this algorithm breached the threshold.
    pub breach: bool,
}

/// The outcome of a regression check.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "inspect `breached` (and exit nonzero) or the gate is decorative"]
pub struct RegressReport {
    /// Per-algorithm verdicts, in current-snapshot order.
    pub rows: Vec<RegressRow>,
    /// How many comparable history entries fed the baseline.
    pub window_used: usize,
    /// True when any algorithm regressed beyond the threshold.
    pub breached: bool,
}

impl RegressReport {
    /// Renders the verdict table.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf regression gate: threshold +{:.0}% over the median of {} baseline entr{}",
            threshold * 100.0,
            self.window_used,
            if self.window_used == 1 { "y" } else { "ies" }
        );
        let _ = writeln!(
            out,
            "{:<8} {:>14} {:>14} {:>8}  verdict",
            "algo", "baseline ns", "current ns", "ratio"
        );
        for r in &self.rows {
            let baseline = r
                .baseline_ns
                .map_or("(none)".to_owned(), |b| b.to_string());
            let _ = writeln!(
                out,
                "{:<8} {:>14} {:>14} {:>8.3}  {}",
                r.algo,
                baseline,
                r.current_ns,
                r.ratio,
                if r.breach { "REGRESSION" } else { "ok" }
            );
        }
        out
    }
}

/// Median of a non-empty slice (lower middle for even lengths, which
/// biases the baseline slightly fast — the stricter direction).
fn median(values: &mut [u64]) -> u64 {
    values.sort_unstable();
    values[(values.len() - 1) / 2]
}

/// Compares `current` against the rolling baseline built from the last
/// `window` history entries with the same bench family and thread count.
/// An algorithm breaches when `current > baseline * (1 + threshold)`;
/// algorithms with no comparable history pass (there is nothing to
/// regress from).
pub fn regress(
    history: &[BenchEntry],
    current: &BenchEntry,
    window: usize,
    threshold: f64,
) -> RegressReport {
    let comparable: Vec<&BenchEntry> = history
        .iter()
        .filter(|e| e.threads == current.threads && e.bench == current.bench)
        .collect();
    let tail: &[&BenchEntry] = if comparable.len() > window {
        &comparable[comparable.len() - window..]
    } else {
        &comparable
    };
    let mut rows = Vec::with_capacity(current.algorithms.len());
    let mut breached = false;
    for (algo, timing) in &current.algorithms {
        let current_ns = timing.ns_per_iter;
        let mut samples: Vec<u64> = tail.iter().filter_map(|e| e.ns(algo)).collect();
        let (baseline_ns, ratio, breach) = if samples.is_empty() {
            (None, 1.0, false)
        } else {
            let baseline = median(&mut samples);
            let ratio = if baseline == 0 {
                1.0
            } else {
                current_ns as f64 / baseline as f64
            };
            (
                Some(baseline),
                ratio,
                baseline > 0 && ratio > 1.0 + threshold,
            )
        };
        breached |= breach;
        rows.push(RegressRow {
            algo: algo.clone(),
            baseline_ns,
            current_ns,
            ratio,
            breach,
        });
    }
    RegressReport {
        rows,
        window_used: tail.len(),
        breached,
    }
}

/// The short git revision of the working tree, or `"unknown"` outside a
/// checkout — recorded in headers and history entries so archived
/// artifacts say what they measured.
pub fn git_short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rev: &str, threads: u64, ns: &[(&str, u64)]) -> BenchEntry {
        BenchEntry {
            git_rev: rev.to_owned(),
            threads,
            bench: DEFAULT_BENCH.to_owned(),
            algorithms: ns
                .iter()
                .map(|(a, n)| ((*a).to_owned(), AlgoTiming::ns(*n)))
                .collect(),
        }
    }

    #[test]
    fn snapshot_parses_the_bench_truth_format() {
        let text = "{\n  \"workload\": {\"n_tasks\": 1000, \"redundancy\": 5, \
\"observations\": 5000},\n  \"threads\": 8,\n  \"git_rev\": \"abc1234\",\n  \
\"algorithms\": {\n    \"mv\": {\"ns_per_iter\": 1000},\n    \
\"ds\": {\"ns_per_iter\": 2000}\n  }\n}\n";
        let e = parse_bench_snapshot(text).unwrap();
        assert_eq!(e.git_rev, "abc1234");
        assert_eq!(e.threads, 8);
        assert_eq!(e.bench, DEFAULT_BENCH, "missing `bench` defaults to truth");
        assert_eq!(e.ns("mv"), Some(1000));
        assert_eq!(e.ns("ds"), Some(2000));
        assert_eq!(e.ns("missing"), None);
    }

    #[test]
    fn history_roundtrips_through_jsonl() {
        let e = entry("abc", 4, &[("mv", 123), ("ds", 456)]);
        let line = e.to_jsonl_line();
        assert_eq!(
            line,
            "{\"git_rev\":\"abc\",\"threads\":4,\"bench\":\"truth\",\
\"algorithms\":{\"mv\":123,\"ds\":456}}"
        );
        let parsed = parse_history(&format!("{line}\n{line}\n")).unwrap();
        assert_eq!(parsed, vec![e.clone(), e]);
    }

    #[test]
    fn history_lines_without_bench_field_parse_as_truth() {
        let legacy = "{\"git_rev\":\"abc\",\"threads\":4,\"algorithms\":{\"mv\":123}}";
        let parsed = parse_history(legacy).unwrap();
        assert_eq!(parsed[0].bench, DEFAULT_BENCH);
        assert_eq!(parsed[0].ns("mv"), Some(123));
    }

    #[test]
    fn peak_rss_roundtrips_through_object_form() {
        let mut e = entry("abc", 8, &[("ds", 10)]);
        e.bench = "scale".to_owned();
        e.algorithms.push((
            "glad".to_owned(),
            AlgoTiming {
                ns_per_iter: 999,
                peak_rss: Some(4096),
            },
        ));
        let line = e.to_jsonl_line();
        assert_eq!(
            line,
            "{\"git_rev\":\"abc\",\"threads\":8,\"bench\":\"scale\",\"algorithms\":\
{\"ds\":10,\"glad\":{\"ns_per_iter\":999,\"peak_rss\":4096}}}"
        );
        let parsed = parse_history(&line).unwrap();
        assert_eq!(parsed, vec![e]);
    }

    #[test]
    fn null_peak_rss_parses_as_missing() {
        // bench_scale emits `"peak_rss": null` when /proc/self/status has
        // no readable VmHWM; both snapshot and history readers must treat
        // that as "not measured", not an error.
        let snap = "{\"git_rev\":\"abc\",\"threads\":8,\"bench\":\"scale\",\"algorithms\":\
{\"ds\":{\"ns_per_iter\":999,\"peak_rss\":null}}}";
        let e = parse_bench_snapshot(snap).unwrap();
        assert_eq!(
            e.algorithms[0].1,
            AlgoTiming {
                ns_per_iter: 999,
                peak_rss: None
            }
        );
        let h = parse_history(snap).unwrap();
        assert_eq!(h[0].algorithms[0].1.peak_rss, None);
    }

    #[test]
    fn listing_filters_by_bench_and_limits_to_last() {
        let mut scale = entry("s1", 8, &[("ds", 10)]);
        scale.bench = "scale".to_owned();
        scale.algorithms[0].1.peak_rss = Some(2048);
        let history = vec![
            entry("t1", 4, &[("ds", 100)]),
            entry("t2", 4, &[("ds", 200)]),
            scale,
            entry("t3", 4, &[("ds", 300)]),
        ];
        let all = render_history_listing(&history, None, None);
        assert!(all.contains("4 of 4"));
        assert!(all.contains("rss=2048"));

        let truth_only = render_history_listing(&history, Some("truth"), None);
        assert!(truth_only.contains("3 of 3"));
        assert!(!truth_only.contains("s1"));

        let last_two = render_history_listing(&history, Some("truth"), Some(2));
        assert!(last_two.contains("2 of 3"));
        assert!(!last_two.contains("t1"), "oldest entry must be dropped");
        assert!(last_two.contains("t2") && last_two.contains("t3"));

        let none = render_history_listing(&history, Some("nope"), None);
        assert!(none.contains("0 of 0"));
    }

    #[test]
    fn regress_never_compares_across_bench_families() {
        let mut scale = entry("old", 4, &[("ds", 10)]);
        scale.bench = "scale".to_owned();
        let history = vec![scale, entry("r0", 4, &[("ds", 1000)])];
        // A truth-family current at 4 threads only sees the truth entry.
        let rep = regress(&history, &entry("cur", 4, &[("ds", 1100)]), 5, 0.25);
        assert_eq!(rep.window_used, 1);
        assert_eq!(rep.rows[0].baseline_ns, Some(1000));
        assert!(!rep.breached, "10ns scale entry must not poison the baseline");
    }

    #[test]
    fn history_errors_carry_line_numbers() {
        let good = entry("a", 1, &[("mv", 1)]).to_jsonl_line();
        let e = parse_history(&format!("{good}\n{{\"threads\":1}}\n")).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("git_rev"));
    }

    #[test]
    fn regress_passes_within_threshold_and_fails_beyond() {
        let history: Vec<BenchEntry> = (0..5)
            .map(|i| entry(&format!("r{i}"), 4, &[("ds", 1000 + i), ("mv", 100)]))
            .collect();
        let ok = regress(&history, &entry("cur", 4, &[("ds", 1100), ("mv", 100)]), 5, 0.25);
        assert!(!ok.breached);
        assert_eq!(ok.window_used, 5);

        let bad = regress(&history, &entry("cur", 4, &[("ds", 1600), ("mv", 100)]), 5, 0.25);
        assert!(bad.breached);
        let ds = bad.rows.iter().find(|r| r.algo == "ds").unwrap();
        assert!(ds.breach);
        assert_eq!(ds.baseline_ns, Some(1002));
        assert!(bad.render(0.25).contains("REGRESSION"));
        let mv = bad.rows.iter().find(|r| r.algo == "mv").unwrap();
        assert!(!mv.breach);
    }

    #[test]
    fn regress_ignores_other_thread_counts_and_respects_the_window() {
        let mut history = vec![entry("old", 1, &[("ds", 10)])];
        for i in 0..10 {
            history.push(entry(&format!("r{i}"), 4, &[("ds", 1000 + 100 * i)]));
        }
        // Window 3 → baseline is the median of the last three 4-thread
        // entries (1700, 1800, 1900) = 1800; the 1-thread entry and older
        // 4-thread entries are ignored.
        let rep = regress(&history, &entry("cur", 4, &[("ds", 2000)]), 3, 0.25);
        assert_eq!(rep.rows[0].baseline_ns, Some(1800));
        assert_eq!(rep.window_used, 3);
        assert!(!rep.breached);
    }

    #[test]
    fn no_comparable_history_passes() {
        let rep = regress(&[], &entry("cur", 4, &[("ds", 1000)]), 5, 0.25);
        assert!(!rep.breached);
        assert_eq!(rep.rows[0].baseline_ns, None);
        assert!(rep.render(0.25).contains("(none)"));
    }
}
