//! Replay: reconstructing span trees and attributing cost from a stream.
//!
//! The merged run log is flat — one event per line — but it has structure:
//! `exp.begin`/`exp.end` bracket each experiment, `truth.iter` events
//! accumulate under the `truth.run` that closes them, platform batches
//! carry `plan_ns`/`exec_ns` phase timings, SQL and Datalog operators tag
//! their events with node/predicate labels. [`replay`] folds the flat
//! stream back into per-experiment [`Frame`] trees, attributing:
//!
//! * **simulated cost** — questions (crowd answers delivered), currency
//!   spend, budget stops and simulated makespan, taken from the
//!   deterministic fields;
//! * **wall time** — cumulative vs. self nanoseconds per frame, taken from
//!   the `*_ns` wall fields *when the stream was captured with wall data*
//!   (deterministic streams attribute by event count instead).
//!
//! [`Replay::folded`] renders the tree as collapsed stacks
//! (`frame;frame;frame weight`), the interchange format standard
//! flamegraph tooling consumes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crowdkit_obs::StreamHeader;

use crate::stream::{LoadedStream, OwnedEvent};

/// One node of the reconstructed span tree, aggregated over every event
/// that mapped to it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Frame {
    /// Frame label (`"truth:ds"`, `"platform.batch"`, `"sql:CrowdFilter"`).
    pub name: String,
    /// Events attributed to this frame itself (children counted in the
    /// children).
    pub events: u64,
    /// Crowd answers delivered while this frame ran.
    pub questions: u64,
    /// Currency spent while this frame ran.
    pub spend: f64,
    /// Simulated seconds of makespan attributed to this frame.
    pub makespan: f64,
    /// Cumulative wall nanoseconds (this frame plus its children).
    pub wall_ns: u64,
    /// Child frames, in name order.
    pub children: Vec<Frame>,
}

impl Frame {
    /// Wall nanoseconds spent in this frame excluding its children —
    /// cumulative minus the children's cumulative time.
    pub fn self_wall_ns(&self) -> u64 {
        let children: u64 = self.children.iter().map(|c| c.wall_ns).sum();
        self.wall_ns.saturating_sub(children)
    }

    /// Cumulative event count (this frame plus its children).
    pub fn total_events(&self) -> u64 {
        self.events + self.children.iter().map(Frame::total_events).sum::<u64>()
    }
}

/// The reconstructed span of one experiment (or of the whole stream when
/// no `exp.begin` markers are present).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExperimentSpan {
    /// Experiment id (`"e1"`), or `"(run)"` for unmarked streams.
    pub id: String,
    /// Total events observed inside the span, markers included.
    pub events: u64,
    /// Crowd answers delivered (from `platform.batch`/`platform.ask`).
    pub questions: u64,
    /// Currency spent.
    pub spend: f64,
    /// Simulated makespan, seconds (sum over platform batches).
    pub makespan: f64,
    /// Batches stopped early by budget exhaustion.
    pub budget_stops: u64,
    /// Cumulative wall nanoseconds attributed across frames.
    pub wall_ns: u64,
    /// `(metric, mean)` pairs from `exp.quality` events, in metric order.
    pub quality: Vec<(String, f64)>,
    /// Top-level frames, in name order.
    pub frames: Vec<Frame>,
}

/// The replayed view of one stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Replay {
    /// The stream's header, when it had one.
    pub header: Option<StreamHeader>,
    /// Per-experiment spans, in stream order.
    pub experiments: Vec<ExperimentSpan>,
    /// Total events in the stream.
    pub total_events: u64,
    /// Whether the stream carried wall-clock data (decides the default
    /// folded-stack weight).
    pub has_wall: bool,
}

/// Aggregation state for one experiment while scanning its events.
#[derive(Default)]
struct SpanBuilder {
    id: String,
    events: u64,
    questions: u64,
    spend: f64,
    makespan: f64,
    budget_stops: u64,
    // Path → frame aggregates. Depth is at most 2 (frame, child).
    frames: BTreeMap<Vec<String>, Frame>,
    // metric → (sum, count) for exp.quality means.
    quality: BTreeMap<String, (f64, u64)>,
}

impl SpanBuilder {
    fn new(id: String) -> Self {
        Self {
            id,
            ..Self::default()
        }
    }

    fn frame(&mut self, path: &[&str]) -> &mut Frame {
        let key: Vec<String> = path.iter().map(|s| (*s).to_owned()).collect();
        self.frames.entry(key).or_insert_with(|| Frame {
            name: path.last().map_or(String::new(), |s| (*s).to_owned()),
            ..Frame::default()
        })
    }

    /// Routes one event into the span's aggregates.
    fn observe(&mut self, e: &OwnedEvent) {
        self.events += 1;
        match e.key.as_str() {
            "platform.batch" => {
                let delivered = e.field_u64("delivered").unwrap_or(0);
                let spend = e.field_f64("spend").unwrap_or(0.0);
                let makespan = e.field_f64("makespan").unwrap_or(0.0);
                self.questions += delivered;
                self.spend += spend;
                self.makespan += makespan;
                self.budget_stops += e.field_u64("budget_stopped").unwrap_or(0);
                let plan = e.wall_field("plan_ns").unwrap_or(0);
                let exec = e.wall_field("exec_ns").unwrap_or(0);
                let f = self.frame(&["platform.batch"]);
                f.events += 1;
                f.questions += delivered;
                f.spend += spend;
                f.makespan += makespan;
                f.wall_ns += plan + exec;
                if plan > 0 {
                    self.frame(&["platform.batch", "plan"]).wall_ns += plan;
                }
                if exec > 0 {
                    self.frame(&["platform.batch", "exec"]).wall_ns += exec;
                }
            }
            "platform.ask" => {
                let delivered = e.field_u64("delivered").unwrap_or(0);
                let spend = e.field_f64("spend").unwrap_or(0.0);
                let makespan = e.field_f64("makespan").unwrap_or(0.0);
                self.questions += delivered;
                self.spend += spend;
                self.makespan += makespan;
                let f = self.frame(&["platform.ask"]);
                f.events += 1;
                f.questions += delivered;
                f.spend += spend;
                f.makespan += makespan;
            }
            "platform.assign" => {
                // Per-assignment detail inside a batch's execution phase.
                self.frame(&["platform.batch", "assign"]).events += 1;
            }
            "truth.iter" => {
                let algo = e.field_str("algo").unwrap_or("?").to_owned();
                let name = format!("truth:{algo}");
                let m = e.wall_field("m_ns").unwrap_or(0);
                let em = e.wall_field("e_ns").unwrap_or(0);
                self.frame(&[&name]).events += 1;
                if m > 0 {
                    self.frame(&[&name, "m_step"]).wall_ns += m;
                }
                if em > 0 {
                    self.frame(&[&name, "e_step"]).wall_ns += em;
                }
            }
            "truth.freeze" | "truth.thaw" => {
                // Sparse-EM worklist transitions: counted as children of
                // the algorithm's frame so replay shows how much of a run
                // had freezing activity (the events themselves carry the
                // per-iteration active-set size).
                let algo = e.field_str("algo").unwrap_or("?").to_owned();
                let name = format!("truth:{algo}");
                let phase = if e.key == "truth.freeze" { "freeze" } else { "thaw" };
                self.frame(&[&name, phase]).events += 1;
            }
            "truth.run" => {
                let algo = e.field_str("algo").unwrap_or("?").to_owned();
                let name = format!("truth:{algo}");
                let run_ns = e.wall_field("run_ns").unwrap_or(0);
                let f = self.frame(&[&name]);
                f.events += 1;
                // run_ns is the whole inference run: the frame's cumulative
                // time, of which the m/e child frames are the kernel part.
                f.wall_ns += run_ns;
            }
            "assign.wave" => {
                let f = self.frame(&["assign"]);
                f.events += 1;
                f.questions += e.field_u64("delivered").unwrap_or(0);
            }
            "assign.run" => {
                self.frame(&["assign"]).events += 1;
            }
            "sql.node" => {
                let node = e.field_str("node").unwrap_or("?").to_owned();
                let name = format!("sql:{node}");
                let f = self.frame(&["sql", &name]);
                f.events += 1;
                f.questions += e.field_u64("questions").unwrap_or(0);
            }
            "sql.query" => {
                let f = self.frame(&["sql"]);
                f.events += 1;
                f.questions += e.field_u64("questions").unwrap_or(0);
            }
            "datalog.fetch" => {
                let predicate = e.field_str("predicate").unwrap_or("?").to_owned();
                let name = format!("datalog:{predicate}");
                let f = self.frame(&["datalog", &name]);
                f.events += 1;
                f.questions += e.field_u64("answers").unwrap_or(0);
            }
            "exp.quality" => {
                if let (Some(metric), Some(value)) =
                    (e.field_str("metric"), e.field_f64("value"))
                {
                    let slot = self.quality.entry(metric.to_owned()).or_insert((0.0, 0));
                    slot.0 += value;
                    slot.1 += 1;
                }
            }
            // exp.begin / exp.end markers and unknown keys: counted in
            // `events` only.
            _ => {}
        }
    }

    fn finish(self) -> ExperimentSpan {
        // Assemble the path-keyed aggregates into a tree. Paths are depth
        // ≤ 2 and BTreeMap order guarantees a parent sorts before its
        // children, so one pass suffices.
        let mut frames: Vec<Frame> = Vec::new();
        for (path, frame) in self.frames {
            match path.len() {
                1 => frames.push(frame),
                _ => {
                    let parent_name = &path[0];
                    if frames.last().map(|f| &f.name) != Some(parent_name) {
                        // Child without an explicit parent aggregate (e.g.
                        // a wall-only phase): synthesize the parent.
                        frames.push(Frame {
                            name: parent_name.clone(),
                            ..Frame::default()
                        });
                    }
                    // A parent's cumulative wall must cover its children;
                    // wall-only children (plan/exec, m/e) otherwise exceed
                    // a parent that never saw a wall field.
                    if let Some(parent) = frames.last_mut() {
                        parent.children.push(frame);
                        let child_wall: u64 = parent.children.iter().map(|c| c.wall_ns).sum();
                        parent.wall_ns = parent.wall_ns.max(child_wall);
                    }
                }
            }
        }
        let wall_ns = frames.iter().map(|f| f.wall_ns).sum();
        let quality = self
            .quality
            .into_iter()
            .map(|(metric, (sum, n))| (metric, if n == 0 { 0.0 } else { sum / n as f64 }))
            .collect();
        ExperimentSpan {
            id: self.id,
            events: self.events,
            questions: self.questions,
            spend: self.spend,
            makespan: self.makespan,
            budget_stops: self.budget_stops,
            wall_ns,
            quality,
            frames,
        }
    }
}

/// Replays a loaded stream into per-experiment span trees.
pub fn replay(stream: &LoadedStream) -> Replay {
    let mut experiments = Vec::new();
    let mut current: Option<SpanBuilder> = None;
    let mut unmarked: Option<SpanBuilder> = None;
    for e in &stream.events {
        match e.key.as_str() {
            "exp.begin" => {
                if let Some(span) = current.take() {
                    experiments.push(span.finish());
                }
                let id = e.field_str("id").unwrap_or("(unnamed)").to_owned();
                let mut span = SpanBuilder::new(id);
                span.observe(e);
                current = Some(span);
            }
            "exp.end" => {
                if let Some(mut span) = current.take() {
                    span.observe(e);
                    experiments.push(span.finish());
                }
            }
            _ => match &mut current {
                Some(span) => span.observe(e),
                None => unmarked
                    .get_or_insert_with(|| SpanBuilder::new("(run)".to_owned()))
                    .observe(e),
            },
        }
    }
    if let Some(span) = current {
        experiments.push(span.finish());
    }
    if let Some(span) = unmarked {
        experiments.push(span.finish());
    }
    Replay {
        header: stream.header.clone(),
        experiments,
        total_events: stream.events.len() as u64,
        has_wall: stream.has_wall_data(),
    }
}

impl Replay {
    /// Renders the span trees as collapsed stacks, one `path weight` line
    /// per frame — the format `flamegraph.pl` and compatible tools read.
    ///
    /// Weights are *self* weights (tools sum children into parents): wall
    /// nanoseconds when the stream carried wall data, otherwise event
    /// counts, so deterministic streams still produce a meaningful
    /// profile. Zero-weight frames are omitted.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for exp in &self.experiments {
            let attributed: u64 = exp.frames.iter().map(Frame::total_events).sum();
            let self_weight = if self.has_wall {
                0
            } else {
                exp.events.saturating_sub(attributed)
            };
            if self_weight > 0 {
                let _ = writeln!(out, "run;{} {self_weight}", exp.id);
            }
            for frame in &exp.frames {
                self.fold_frame(&mut out, &format!("run;{}", exp.id), frame);
            }
        }
        out
    }

    fn fold_frame(&self, out: &mut String, prefix: &str, frame: &Frame) {
        let path = format!("{prefix};{}", frame.name);
        let self_weight = if self.has_wall {
            frame.self_wall_ns()
        } else {
            frame.events
        };
        if self_weight > 0 {
            let _ = writeln!(out, "{path} {self_weight}");
        }
        for child in &frame.children {
            self.fold_frame(out, &path, child);
        }
    }

    /// Renders a human-oriented replay report: stream metadata, one row
    /// per experiment, and a per-frame attribution table (self vs.
    /// cumulative wall time, questions, spend).
    pub fn render(&self) -> String {
        let mut out = String::new();
        match &self.header {
            Some(h) => {
                let _ = writeln!(
                    out,
                    "stream: schema {} · git {} · seed {} · threads {} · workload {}",
                    h.schema, h.git_rev, h.seed, h.threads, h.workload
                );
            }
            None => {
                let _ = writeln!(out, "stream: (no header)");
            }
        }
        let _ = writeln!(
            out,
            "{} events · {} experiment span(s) · wall data: {}",
            self.total_events,
            self.experiments.len(),
            if self.has_wall { "yes" } else { "no" }
        );
        for exp in &self.experiments {
            let _ = writeln!(
                out,
                "\n[{}] events {} · questions {} · spend {:.2} · makespan {:.2}s · wall {:.3}ms",
                exp.id,
                exp.events,
                exp.questions,
                exp.spend,
                exp.makespan,
                exp.wall_ns as f64 / 1e6,
            );
            if !exp.quality.is_empty() {
                let rendered: Vec<String> = exp
                    .quality
                    .iter()
                    .map(|(m, v)| format!("{m}={v:.4}"))
                    .collect();
                let _ = writeln!(out, "  quality: {}", rendered.join(" "));
            }
            for frame in &exp.frames {
                render_frame(&mut out, frame, 1);
            }
        }
        out
    }
}

fn render_frame(out: &mut String, frame: &Frame, depth: usize) {
    let indent = "  ".repeat(depth);
    let _ = write!(out, "{indent}{:<24}", frame.name);
    let _ = write!(
        out,
        " events {:<7} self {:>10}ns cum {:>10}ns",
        frame.total_events(),
        frame.self_wall_ns(),
        frame.wall_ns
    );
    if frame.questions > 0 {
        let _ = write!(out, " questions {}", frame.questions);
    }
    if frame.spend > 0.0 {
        let _ = write!(out, " spend {:.2}", frame.spend);
    }
    out.push('\n');
    for child in &frame.children {
        render_frame(out, child, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::parse_stream;

    fn marked_stream() -> LoadedStream {
        parse_stream(concat!(
            "{\"key\":\"exp.begin\",\"id\":\"e1\"}\n",
            "{\"key\":\"platform.batch\",\"sim\":30,\"requests\":10,\"delivered\":10,",
            "\"spend\":1.5,\"makespan\":30,\"latency_sum\":120,\"budget_stopped\":1,",
            "\"no_worker\":0,\"plan_ns\":100,\"exec_ns\":400}\n",
            "{\"key\":\"truth.iter\",\"algo\":\"ds\",\"iter\":0,\"delta\":0.5,",
            "\"m_ns\":120,\"e_ns\":80}\n",
            "{\"key\":\"truth.iter\",\"algo\":\"ds\",\"iter\":1,\"delta\":0.1,",
            "\"m_ns\":100,\"e_ns\":60}\n",
            "{\"key\":\"truth.run\",\"algo\":\"ds\",\"tasks\":10,\"workers\":5,",
            "\"observations\":30,\"iters\":2,\"converged\":1,\"run_ns\":600}\n",
            "{\"key\":\"exp.quality\",\"metric\":\"accuracy\",\"value\":0.5}\n",
            "{\"key\":\"exp.quality\",\"metric\":\"accuracy\",\"value\":1.0}\n",
            "{\"key\":\"exp.end\",\"id\":\"e1\"}\n",
            "{\"key\":\"exp.begin\",\"id\":\"e2\"}\n",
            "{\"key\":\"sql.node\",\"node\":\"CrowdFilter\",\"rows_in\":8,\"rows_out\":4,",
            "\"questions\":16}\n",
            "{\"key\":\"sql.query\",\"optimized\":1,\"questions\":16,\"cells_filled\":0,",
            "\"equal_checks\":0,\"comparisons\":0,\"rows_out\":4}\n",
            "{\"key\":\"exp.end\",\"id\":\"e2\"}\n",
        ))
        .unwrap()
    }

    #[test]
    fn spans_follow_experiment_markers() {
        let r = replay(&marked_stream());
        assert_eq!(r.experiments.len(), 2);
        let e1 = &r.experiments[0];
        assert_eq!(e1.id, "e1");
        assert_eq!(e1.events, 8);
        assert_eq!(e1.questions, 10);
        assert_eq!(e1.spend, 1.5);
        assert_eq!(e1.makespan, 30.0);
        assert_eq!(e1.budget_stops, 1);
        assert_eq!(e1.quality, vec![("accuracy".to_owned(), 0.75)]);
        let e2 = &r.experiments[1];
        assert_eq!(e2.id, "e2");
        assert_eq!(e2.questions, 0, "sql questions inform frames, not totals");
    }

    #[test]
    fn truth_frames_attribute_self_vs_cumulative_wall() {
        let r = replay(&marked_stream());
        let e1 = &r.experiments[0];
        let truth = e1
            .frames
            .iter()
            .find(|f| f.name == "truth:ds")
            .expect("truth frame");
        assert_eq!(truth.wall_ns, 600, "cumulative = run_ns");
        // children: e_step 140, m_step 220 → self = 600 - 360.
        assert_eq!(truth.self_wall_ns(), 240);
        assert_eq!(truth.children.len(), 2);
        assert_eq!(truth.total_events(), 3);
        let batch = e1
            .frames
            .iter()
            .find(|f| f.name == "platform.batch")
            .expect("batch frame");
        assert_eq!(batch.wall_ns, 500);
        assert_eq!(batch.self_wall_ns(), 0);
    }

    #[test]
    fn folded_output_is_valid_collapsed_stacks() {
        let r = replay(&marked_stream());
        let folded = r.folded();
        assert!(folded.contains("run;e1;truth:ds "));
        assert!(folded.contains("run;e1;truth:ds;m_step 220"));
        assert!(folded.contains("run;e1;truth:ds;e_step 140"));
        for line in folded.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("stack SPACE weight");
            assert!(!stack.is_empty() && stack.split(';').all(|f| !f.is_empty()));
            assert!(weight.parse::<u64>().expect("numeric weight") > 0);
        }
    }

    #[test]
    fn freeze_and_thaw_events_attribute_under_the_algorithm_frame() {
        let s = parse_stream(concat!(
            "{\"key\":\"truth.freeze\",\"algo\":\"ds\",\"iter\":3,\"froze\":90,",
            "\"active\":10,\"frozen_total\":90}\n",
            "{\"key\":\"truth.thaw\",\"algo\":\"ds\",\"iter\":6,\"thawed\":2,",
            "\"active\":12,\"frozen_total\":88}\n",
            "{\"key\":\"truth.run\",\"algo\":\"ds\",\"tasks\":100,\"workers\":5,",
            "\"observations\":500,\"iters\":8,\"converged\":1}\n",
        ))
        .unwrap();
        let r = replay(&s);
        let truth = r.experiments[0]
            .frames
            .iter()
            .find(|f| f.name == "truth:ds")
            .expect("truth frame");
        let child_names: Vec<&str> = truth.children.iter().map(|c| c.name.as_str()).collect();
        assert!(child_names.contains(&"freeze"), "children: {child_names:?}");
        assert!(child_names.contains(&"thaw"), "children: {child_names:?}");
        assert_eq!(truth.total_events(), 3);
    }

    #[test]
    fn unmarked_streams_form_one_run_span() {
        let s = parse_stream(
            "{\"key\":\"truth.run\",\"algo\":\"mv\",\"tasks\":3,\"workers\":2,\
\"observations\":6,\"iters\":0,\"converged\":1}\n",
        )
        .unwrap();
        let r = replay(&s);
        assert_eq!(r.experiments.len(), 1);
        assert_eq!(r.experiments[0].id, "(run)");
        assert!(!r.has_wall);
        // Event-count weights for deterministic streams.
        assert_eq!(r.folded(), "run;(run);truth:mv 1\n");
    }

    #[test]
    fn render_mentions_header_and_frames() {
        let r = replay(&marked_stream());
        let text = r.render();
        assert!(text.contains("(no header)"));
        assert!(text.contains("[e1]"));
        assert!(text.contains("truth:ds"));
        assert!(text.contains("quality: accuracy=0.7500"));
    }
}
