//! Lock-free, thread-sharded metric primitives.
//!
//! The three shapes live telemetry needs:
//!
//! * [`Counter`] — a monotonically increasing `u64`. Writes go to one of
//!   [`N_SHARDS`] cache-line-padded relaxed atomics selected by a
//!   per-thread shard index, so concurrent writers never contend on the
//!   same line; reads merge shards with a sum (exact, because addition
//!   commutes).
//! * [`Gauge`] — a point-in-time `i64` with set/add semantics. Sets do not
//!   commute across shards, so a gauge is a single padded atomic; callers
//!   update gauges from low-frequency sequential paths only.
//! * [`Histogram`] — log2-bucketed `u64` distribution ([`N_BUCKETS`]
//!   buckets: value 0 in bucket 0, otherwise bucket = bit length). Each
//!   shard keeps its own count/sum/bucket array; merged views sum shards.
//!
//! All write paths check the process-wide [`enabled`] flag first (one
//! relaxed load and a predictable branch), which is both the "null arm"
//! for the overhead gate and the kill switch if telemetry ever has to be
//! turned off in production.
//!
//! ## Determinism
//!
//! Sharding makes *values* exact but says nothing about ordering; the
//! determinism story is the same as the obs layer's: instrumented code
//! updates metrics only from sequential, fixed-order code paths (batch
//! planning/assembly, EM driver loops), never from inside parallel
//! workers. Under that discipline every counter/gauge/det-histogram value
//! is a pure function of the run's inputs at any thread count.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of cache-line-padded shards per counter/histogram. Threads get
/// a shard round-robin on first touch; collisions are possible (shards
/// are not exclusive) but merge-on-read stays exact regardless.
pub const N_SHARDS: usize = 8;

/// Histogram bucket count: bucket 0 holds the value 0; bucket `i` (1..=64)
/// holds values whose bit length is `i`, i.e. the range `[2^(i-1), 2^i)`.
pub const N_BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns all metric writes on or off process-wide. Defaults to on; the
/// overhead benchmark's null arm and tests that need a quiet registry
/// turn it off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric writes are currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned round-robin on first use. The
    /// worker pool spawns ephemeral scoped threads, so indices cycle
    /// through shards rather than mapping threads 1:1.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % N_SHARDS;
}

#[inline]
fn shard_index() -> usize {
    SHARD.with(|s| *s)
}

/// One cache line holding one atomic, so adjacent shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PadU64(AtomicU64);

/// A monotonically increasing counter, sharded across threads.
#[derive(Default)]
pub struct Counter {
    shards: [PadU64; N_SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to this thread's shard. Relaxed; never blocks.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Merged value: the sum of all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A point-in-time signed value (queue depth, active-set size).
///
/// Unsharded: last-write-wins semantics cannot be merged across shards,
/// and gauges are updated from low-frequency sequential code anyway.
#[repr(align(64))]
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Which clock a histogram's samples come from. This decides how the
/// snapshot layer serializes it: [`Clock::Det`] distributions are pure
/// functions of the run's inputs and export full bucket deltas as
/// deterministic fields; [`Clock::Wall`] distributions hold host-side
/// nanosecond timings and export only a deterministic sample count plus
/// wall-segregated quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Samples derive from the run's inputs (wave sizes, row counts).
    Det,
    /// Samples are wall-clock durations measured via `obs::WallTimer`.
    Wall,
}

/// One shard of a histogram: count, sum and log2 buckets on its own
/// cache-line-aligned block.
#[repr(align(64))]
struct HistShard {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl HistShard {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The log2 bucket index for a value: 0 for 0, otherwise the bit length.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The largest value bucket `i` can hold (`u64::MAX` for the top bucket).
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A log2-bucketed distribution of `u64` samples, sharded across threads.
pub struct Histogram {
    clock: Clock,
    shards: [HistShard; N_SHARDS],
}

impl Histogram {
    /// A zeroed histogram tagged with its sample clock.
    pub fn new(clock: Clock) -> Self {
        Self {
            clock,
            shards: std::array::from_fn(|_| HistShard::new()),
        }
    }

    /// Which clock this histogram's samples come from.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Records one sample into this thread's shard. Three relaxed adds.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            let s = &self.shards[shard_index()];
            s.count.fetch_add(1, Ordering::Relaxed);
            s.sum.fetch_add(v, Ordering::Relaxed);
            s.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Merged view: shard-summed count, sum and buckets.
    pub fn merged(&self) -> HistData {
        let mut out = HistData {
            count: 0,
            sum: 0,
            buckets: [0u64; N_BUCKETS],
        };
        for s in &self.shards {
            out.count += s.count.load(Ordering::Relaxed);
            out.sum += s.sum.load(Ordering::Relaxed);
            for (acc, b) in out.buckets.iter_mut().zip(s.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        out
    }
}

/// A merged (shard-summed) histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistData {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Per-bucket sample counts (log2 buckets; see [`bucket_of`]).
    pub buckets: [u64; N_BUCKETS],
}

impl HistData {
    /// Upper bound of the bucket containing quantile `q` (0.0..=1.0), or 0
    /// on an empty histogram. Log2 buckets bound the relative error by 2x.
    #[must_use]
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(N_BUCKETS - 1)
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    #[must_use]
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merges_shards() {
        let c = Counter::new();
        c.add(3);
        c.inc();
        assert_eq!(c.value(), 4);
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
    }

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
        // Every value lands in a bucket whose bound contains it.
        for v in [0u64, 1, 2, 5, 100, 1 << 40, u64::MAX] {
            assert!(v <= bucket_bound(bucket_of(v)));
        }
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let h = Histogram::new(Clock::Det);
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        let d = h.merged();
        assert_eq!(d.count, 5);
        assert_eq!(d.sum, 110);
        assert_eq!(d.quantile_bound(0.5), 3); // 3rd of 5 samples is 3 -> bucket 2
        assert_eq!(d.max_bound(), 127); // 100 lives in bucket 7, bound 127
        assert_eq!(d.quantile_bound(1.0), 127);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new(Clock::Wall);
        let d = h.merged();
        assert_eq!(d.count, 0);
        assert_eq!(d.quantile_bound(0.5), 0);
        assert_eq!(d.max_bound(), 0);
    }

    // The enabled-flag kill-switch test lives in tests/disabled.rs as the
    // sole test of its binary: the flag is process-global, and toggling it
    // here would race the other unit tests running in parallel threads.
}
