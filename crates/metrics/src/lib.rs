//! # crowdkit-metrics — always-on runtime telemetry
//!
//! Live operational state for the crowdkit stack: how many tasks are
//! queued, how fast budget is burning, how big the EM active set is, how
//! long a sweep takes — the counters, gauges and histograms a service
//! front-end (`crowdkitd`, ROADMAP item 1) needs for admission control
//! and backpressure. Where `crowdkit-obs` records *what happened* as a
//! replayable event stream, this crate maintains *what is true right
//! now*, cheaply enough to leave on inside the EM hot loops (the CI
//! overhead gate pins instrumented-vs-disabled at <3%).
//!
//! ## Architecture
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free primitives with
//!   cache-line-padded per-thread shards and relaxed atomics; reads merge
//!   shards on demand (see [`primitives`]).
//! * [`Registry`] — a typed struct-of-metrics per subsystem (platform,
//!   assign, truth, sql): hot paths touch fields directly, no string
//!   lookup (see [`registry`]).
//! * [`SnapshotExporter`] — diffs consecutive [`Snapshot`]s and emits
//!   `metrics.snapshot` obs events, wall fields segregated so snapshot
//!   streams stay `crowdtrace diff`-able (see [`snapshot`]).
//!
//! ## Scoping
//!
//! The active registry is thread-local and scoped, exactly like the obs
//! recorder: [`current`] resolves this thread's registry (falling back to
//! one process-wide default), and [`with_registry`] pins a fresh registry
//! for a region of work. The experiment suite runs 17 experiments on
//! concurrent threads; per-experiment scoped registries keep their
//! counters independent, which is what makes `metrics.snapshot` streams
//! byte-identical across thread counts.
//!
//! ```
//! use std::sync::Arc;
//! use crowdkit_metrics as metrics;
//!
//! let reg = Arc::new(metrics::Registry::new());
//! metrics::with_registry(reg.clone(), || {
//!     metrics::current().assign.questions.add(3);
//! });
//! assert_eq!(reg.assign.questions.value(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod primitives;
pub mod registry;
pub mod snapshot;

pub use primitives::{
    bucket_bound, bucket_of, enabled, set_enabled, Clock, Counter, Gauge, HistData, Histogram,
    N_BUCKETS, N_SHARDS,
};
pub use registry::{
    to_micros, AlgoMetrics, AssignMetrics, PlatformMetrics, Registry, SqlMetrics, TruthMetrics,
};
pub use snapshot::{delta_events, MetricValue, Snapshot, SnapshotExporter, BUCKET_NAMES};

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

/// The registry active on this thread: the innermost [`with_registry`]
/// scope, or the process-wide default when unscoped.
///
/// Hot paths should call this once per operation (per batch, per EM run)
/// and reuse the handle rather than re-resolving per item.
pub fn current() -> Arc<Registry> {
    CURRENT.with(|c| match &*c.borrow() {
        Some(reg) => reg.clone(),
        None => global().clone(),
    })
}

/// Restores the previous scoped registry when dropped, so a panic inside
/// [`with_registry`] cannot leak the scope into later work.
struct RestoreGuard {
    previous: Option<Option<Arc<Registry>>>,
}

impl Drop for RestoreGuard {
    fn drop(&mut self) {
        if let Some(previous) = self.previous.take() {
            CURRENT.with(|c| *c.borrow_mut() = previous);
        }
    }
}

/// Runs `f` with `reg` as this thread's active registry, restoring the
/// previous scope afterwards (including on panic). Scopes nest.
///
/// The scope is per-thread: work `f` hands to other threads sees those
/// threads' own registries (normally the process default). Instrumented
/// layers honour this by updating metrics only from the calling thread's
/// sequential code, the same rule the obs layer follows.
pub fn with_registry<R>(reg: Arc<Registry>, f: impl FnOnce() -> R) -> R {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(reg));
    let _guard = RestoreGuard {
        previous: Some(previous),
    };
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscoped_current_is_the_global_default() {
        let a = current();
        let b = current();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn with_registry_scopes_and_restores() {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            assert!(Arc::ptr_eq(&current(), &reg));
            current().sql.queries.inc();
        });
        assert!(!Arc::ptr_eq(&current(), &reg));
        assert_eq!(reg.sql.queries.value(), 1);
    }

    #[test]
    fn scopes_nest() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        with_registry(outer.clone(), || {
            current().assign.waves.inc();
            with_registry(inner.clone(), || current().assign.waves.add(2));
            current().assign.waves.inc();
        });
        assert_eq!(outer.assign.waves.value(), 2);
        assert_eq!(inner.assign.waves.value(), 2);
    }

    #[test]
    fn scope_restores_after_panic() {
        let reg = Arc::new(Registry::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_registry(reg.clone(), || panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(
            !Arc::ptr_eq(&current(), &reg),
            "panic must not leak the scoped registry"
        );
    }

    #[test]
    fn scope_is_thread_local() {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            let other = std::thread::spawn(current).join().unwrap();
            assert!(!Arc::ptr_eq(&other, &reg), "other threads see the default");
        });
    }
}
