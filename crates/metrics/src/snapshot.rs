//! Snapshots, deltas, and the `metrics.snapshot` event exporter.
//!
//! A [`Snapshot`] is a point-in-time copy of every metric in a
//! [`Registry`], taken in one fixed, hand-written order (the same order
//! every time, on every platform — the metric sequence is part of the
//! serialized contract). [`SnapshotExporter`] diffs consecutive snapshots
//! and emits one `metrics.snapshot` obs [`Event`] per *changed* metric;
//! unchanged metrics are suppressed entirely, and a cycle in which
//! nothing changed emits nothing and does not advance the sequence
//! number.
//!
//! ## Event schema
//!
//! Every event carries `seq` (1-based emit-cycle number), `metric` (the
//! dotted name) and `kind`; the remaining fields depend on the kind:
//!
//! * `counter` — `delta` and `total` (deterministic).
//! * `gauge` — `value` (deterministic).
//! * `hist_det` — `count`/`sum` deltas plus one `b<i>` field per bucket
//!   that grew (all deterministic).
//! * `hist_wall` — deterministic `count` delta only; `sum_ns` delta and
//!   cumulative `p50_ns`/`p95_ns`/`p99_ns`/`max_ns` quantile bounds ride in
//!   wall-segregated fields, which deterministic sinks drop. This is the
//!   PR 3 convention: wall data exists in the stream but never in the
//!   diffable projection.

use crowdkit_obs::{self as obs, Event};

use crate::primitives::{Clock, HistData, N_BUCKETS};
use crate::registry::Registry;

/// Static names for histogram bucket fields (`Event` field names must be
/// `&'static str`). Index i names the log2 bucket i.
pub const BUCKET_NAMES: [&str; N_BUCKETS] = [
    "b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8", "b9", "b10", "b11", "b12", "b13", "b14",
    "b15", "b16", "b17", "b18", "b19", "b20", "b21", "b22", "b23", "b24", "b25", "b26", "b27",
    "b28", "b29", "b30", "b31", "b32", "b33", "b34", "b35", "b36", "b37", "b38", "b39", "b40",
    "b41", "b42", "b43", "b44", "b45", "b46", "b47", "b48", "b49", "b50", "b51", "b52", "b53",
    "b54", "b55", "b56", "b57", "b58", "b59", "b60", "b61", "b62", "b63", "b64",
];

/// The captured value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Merged histogram state plus its clock tag (boxed: the bucket array
    /// dwarfs the other variants).
    Hist(Clock, Box<HistData>),
}

/// A point-in-time copy of every metric, in the registry's fixed order.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs, always the same names in the same order.
    pub metrics: Vec<(&'static str, MetricValue)>,
}

impl Registry {
    /// Captures every metric in the registry's canonical order.
    pub fn snapshot(&self) -> Snapshot {
        let mut m: Vec<(&'static str, MetricValue)> = Vec::with_capacity(40);
        let c = |v: u64| MetricValue::Counter(v);
        let g = |v: i64| MetricValue::Gauge(v);

        let p = &self.platform;
        m.push(("platform.tasks_queued", c(p.tasks_queued.value())));
        m.push(("platform.tasks_assigned", c(p.tasks_assigned.value())));
        m.push(("platform.tasks_answered", c(p.tasks_answered.value())));
        m.push(("platform.batches", c(p.batches.value())));
        m.push(("platform.budget_stopped", c(p.budget_stopped.value())));
        m.push(("platform.no_worker", c(p.no_worker.value())));
        m.push(("platform.spend_micros", c(p.spend_micros.value())));
        m.push(("platform.open_batch_depth", g(p.open_batch_depth.value())));
        m.push((
            "platform.batch_ns",
            MetricValue::Hist(p.batch_ns.clock(), Box::new(p.batch_ns.merged())),
        ));

        let a = &self.assign;
        m.push(("assign.waves", c(a.waves.value())));
        m.push(("assign.questions", c(a.questions.value())));
        m.push(("assign.exhausted", c(a.exhausted.value())));
        m.push((
            "assign.wave_size",
            MetricValue::Hist(a.wave_size.clock(), Box::new(a.wave_size.merged())),
        ));

        let t = &self.truth;
        let algos: [(&'static str, &'static str, &'static str, &crate::registry::AlgoMetrics); 4] = [
            ("truth.ds.iters", "truth.ds.runs", "truth.ds.sweep_ns", &t.ds),
            ("truth.zc.iters", "truth.zc.runs", "truth.zc.sweep_ns", &t.zc),
            (
                "truth.glad.iters",
                "truth.glad.runs",
                "truth.glad.sweep_ns",
                &t.glad,
            ),
            (
                "truth.kos.iters",
                "truth.kos.runs",
                "truth.kos.sweep_ns",
                &t.kos,
            ),
        ];
        for (iters_name, runs_name, sweep_name, algo) in algos {
            m.push((iters_name, c(algo.iters.value())));
            m.push((runs_name, c(algo.runs.value())));
            m.push((
                sweep_name,
                MetricValue::Hist(algo.sweep_ns.clock(), Box::new(algo.sweep_ns.merged())),
            ));
        }
        m.push(("truth.freezes", c(t.freezes.value())));
        m.push(("truth.thaws", c(t.thaws.value())));
        m.push(("truth.active_tasks", g(t.active_tasks.value())));
        m.push(("truth.frozen_tasks", g(t.frozen_tasks.value())));

        let s = &self.sql;
        m.push(("sql.queries", c(s.queries.value())));
        m.push(("sql.rows_out", c(s.rows_out.value())));
        m.push(("sql.crowd_questions", c(s.crowd_questions.value())));
        m.push(("sql.spend_micros", c(s.spend_micros.value())));
        m.push(("sql.nodes", c(s.nodes.value())));
        m.push((
            "sql.node_rows",
            MetricValue::Hist(s.node_rows.clock(), Box::new(s.node_rows.merged())),
        ));

        Snapshot { metrics: m }
    }
}

/// Builds the `metrics.snapshot` events for the change from `prev` to
/// `cur` (`prev = None` means "all zeros": the first cycle reports totals
/// as deltas). Unchanged metrics produce no event; the returned list is
/// empty when nothing changed at all.
pub fn delta_events(
    prev: Option<&Snapshot>,
    cur: &Snapshot,
    seq: u64,
    sim_time: Option<f64>,
) -> Vec<Event> {
    let mut out = Vec::new();
    for (i, (name, cur_v)) in cur.metrics.iter().enumerate() {
        let prev_v = prev.map(|p| &p.metrics[i].1);
        if let Some(p) = prev {
            debug_assert_eq!(p.metrics[i].0, *name, "snapshot orders must match");
        }
        let base = || {
            let e = Event::new("metrics.snapshot");
            let e = match sim_time {
                Some(t) => e.at(t),
                None => e,
            };
            e.u64("seq", seq).str("metric", *name)
        };
        match (cur_v, prev_v) {
            (MetricValue::Counter(cur_c), prev_v) => {
                let prev_c = match prev_v {
                    Some(MetricValue::Counter(p)) => *p,
                    _ => 0,
                };
                let delta = cur_c.saturating_sub(prev_c);
                if delta > 0 {
                    out.push(
                        base()
                            .str("kind", "counter")
                            .u64("delta", delta)
                            .u64("total", *cur_c),
                    );
                }
            }
            (MetricValue::Gauge(cur_g), prev_v) => {
                let prev_g = match prev_v {
                    Some(MetricValue::Gauge(p)) => *p,
                    _ => 0,
                };
                if *cur_g != prev_g {
                    out.push(base().str("kind", "gauge").i64("value", *cur_g));
                }
            }
            (MetricValue::Hist(clock, cur_h), prev_v) => {
                let zero = HistData {
                    count: 0,
                    sum: 0,
                    buckets: [0u64; N_BUCKETS],
                };
                let prev_h = match prev_v {
                    Some(MetricValue::Hist(_, p)) => p.as_ref(),
                    _ => &zero,
                };
                let d_count = cur_h.count.saturating_sub(prev_h.count);
                if d_count == 0 {
                    continue;
                }
                let d_sum = cur_h.sum.saturating_sub(prev_h.sum);
                match clock {
                    Clock::Det => {
                        let mut e = base()
                            .str("kind", "hist_det")
                            .u64("count", d_count)
                            .u64("sum", d_sum);
                        for (bi, (&c, &p)) in
                            cur_h.buckets.iter().zip(prev_h.buckets.iter()).enumerate()
                        {
                            let d = c.saturating_sub(p);
                            if d > 0 {
                                e = e.u64(BUCKET_NAMES[bi], d);
                            }
                        }
                        out.push(e);
                    }
                    Clock::Wall => {
                        // Only the sample count is deterministic; the
                        // timing payload rides in wall fields, which
                        // deterministic sinks drop.
                        out.push(
                            base()
                                .str("kind", "hist_wall")
                                .u64("count", d_count)
                                .wall("sum_ns", d_sum)
                                .wall("p50_ns", cur_h.quantile_bound(0.5))
                                .wall("p95_ns", cur_h.quantile_bound(0.95))
                                .wall("p99_ns", cur_h.quantile_bound(0.99))
                                .wall("max_ns", cur_h.max_bound()),
                        );
                    }
                }
            }
        }
    }
    out
}

/// Emits periodic `metrics.snapshot` deltas into the active obs recorder.
///
/// Holds the previous snapshot; each [`emit`](Self::emit) call snapshots
/// the registry, diffs against the previous state, and records one event
/// per changed metric. Empty deltas are fully suppressed (no events, no
/// sequence advance), so an idle period costs nothing in the stream.
#[derive(Default)]
pub struct SnapshotExporter {
    last: Option<Snapshot>,
    seq: u64,
}

impl SnapshotExporter {
    /// An exporter whose first emit reports all non-zero metrics from zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots `reg`, records one `metrics.snapshot` event per changed
    /// metric into this thread's obs recorder, and returns how many
    /// events were emitted (0 for a fully suppressed empty delta).
    pub fn emit(&mut self, reg: &Registry, sim_time: Option<f64>) -> usize {
        let cur = reg.snapshot();
        let events = delta_events(self.last.as_ref(), &cur, self.seq + 1, sim_time);
        let n = events.len();
        if n > 0 {
            self.seq += 1;
            for e in events {
                obs::record(e);
            }
        }
        self.last = Some(cur);
        n
    }

    /// The sequence number of the most recent non-empty emit (0 if none).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_obs::{FieldValue, JsonlRecorder, MemoryRecorder};
    use std::sync::Arc;

    fn field_u64(e: &Event, name: &str) -> Option<u64> {
        match e.field(name) {
            Some(FieldValue::U64(v)) => Some(*v),
            _ => None,
        }
    }

    #[test]
    fn snapshot_order_is_stable() {
        let r = Registry::new();
        let a = r.snapshot();
        let b = r.snapshot();
        assert_eq!(a, b);
        let names: Vec<_> = a.metrics.iter().map(|(n, _)| *n).collect();
        assert_eq!(names[0], "platform.tasks_queued");
        assert!(names.contains(&"truth.glad.sweep_ns"));
        assert!(names.contains(&"sql.node_rows"));
        // No duplicate names.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn counter_delta_and_total() {
        let r = Registry::new();
        r.assign.questions.add(5);
        let s1 = r.snapshot();
        let ev = delta_events(None, &s1, 1, None);
        assert_eq!(ev.len(), 1);
        assert_eq!(field_u64(&ev[0], "delta"), Some(5));
        assert_eq!(field_u64(&ev[0], "total"), Some(5));

        r.assign.questions.add(2);
        let s2 = r.snapshot();
        let ev = delta_events(Some(&s1), &s2, 2, None);
        assert_eq!(ev.len(), 1);
        assert_eq!(field_u64(&ev[0], "delta"), Some(2));
        assert_eq!(field_u64(&ev[0], "total"), Some(7));
    }

    #[test]
    fn empty_delta_is_fully_suppressed() {
        let r = Registry::new();
        r.truth.ds.iters.inc();
        let mut exp = SnapshotExporter::new();
        let rec = Arc::new(MemoryRecorder::new());
        obs::with_recorder(rec.clone(), || {
            assert_eq!(exp.emit(&r, None), 1);
            assert_eq!(exp.seq(), 1);
            // Nothing changed: no events, seq does not advance.
            assert_eq!(exp.emit(&r, None), 0);
            assert_eq!(exp.seq(), 1);
            r.truth.ds.iters.inc();
            assert_eq!(exp.emit(&r, None), 1);
            assert_eq!(exp.seq(), 2);
        });
        assert_eq!(rec.count("metrics.snapshot"), 2);
    }

    #[test]
    fn det_histogram_emits_bucket_deltas() {
        let r = Registry::new();
        r.assign.wave_size.record(3); // bucket 2
        r.assign.wave_size.record(8); // bucket 4
        let s1 = r.snapshot();
        let ev = delta_events(None, &s1, 1, None);
        assert_eq!(ev.len(), 1);
        let e = &ev[0];
        assert_eq!(field_u64(e, "count"), Some(2));
        assert_eq!(field_u64(e, "sum"), Some(11));
        assert_eq!(field_u64(e, "b2"), Some(1));
        assert_eq!(field_u64(e, "b4"), Some(1));
        assert!(e.field("b3").is_none(), "empty buckets are omitted");

        // Second window only reports the new sample.
        r.assign.wave_size.record(3);
        let s2 = r.snapshot();
        let ev = delta_events(Some(&s1), &s2, 2, None);
        assert_eq!(field_u64(&ev[0], "count"), Some(1));
        assert_eq!(field_u64(&ev[0], "b2"), Some(1));
        assert!(ev[0].field("b4").is_none());
    }

    #[test]
    fn wall_histogram_keeps_timings_out_of_det_fields() {
        let r = Registry::new();
        r.truth.ds.sweep_ns.record(1234);
        let ev = delta_events(None, &r.snapshot(), 1, None);
        assert_eq!(ev.len(), 1);
        let e = &ev[0];
        assert_eq!(field_u64(e, "count"), Some(1));
        assert!(e.field("sum").is_none(), "no det sum for wall histograms");
        assert!(
            e.fields.iter().all(|(n, _)| !n.ends_with("_ns")),
            "no det field may carry the wall naming suffix"
        );
        let wall: Vec<_> = e.wall_fields.iter().map(|(n, _)| *n).collect();
        assert_eq!(wall, vec!["sum_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns"]);
        // Deterministic serialization hides the timing payload entirely
        // (the metric *name* keeps its _ns suffix; no *field name* does).
        let json = e.to_json(false);
        assert!(!json.contains("_ns\":"));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn gauge_reports_value_on_change_only() {
        let r = Registry::new();
        let s0 = r.snapshot();
        r.truth.active_tasks.set(42);
        let s1 = r.snapshot();
        let ev = delta_events(Some(&s0), &s1, 1, None);
        assert_eq!(ev.len(), 1);
        match ev[0].field("value") {
            Some(FieldValue::I64(42)) => {}
            other => panic!("expected gauge value 42, got {other:?}"),
        }
        // Same value again: suppressed.
        assert!(delta_events(Some(&s1), &r.snapshot(), 2, None).is_empty());
    }

    #[test]
    fn exporter_stream_is_deterministic_json() {
        let run = || {
            let r = Registry::new();
            let rec = Arc::new(JsonlRecorder::in_memory().with_wall(false));
            obs::with_recorder(rec.clone(), || {
                r.platform.tasks_queued.add(7);
                r.truth.ds.iters.add(3);
                r.truth.ds.sweep_ns.record(999); // wall data: dropped below
                let mut exp = SnapshotExporter::new();
                exp.emit(&r, Some(1.5));
            });
            rec.take_bytes()
        };
        let a = run();
        assert!(!a.is_empty());
        assert_eq!(a, run(), "same updates, byte-identical stream");
        let text = String::from_utf8(a).unwrap();
        assert!(text.contains("\"metric\":\"platform.tasks_queued\""));
        assert!(!text.contains("_ns\":"), "no wall fields in det projection");
    }
}
