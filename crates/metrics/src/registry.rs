//! The typed metric registry: one struct per instrumented subsystem.
//!
//! Metrics are plain struct fields, not string-keyed lookups — hot paths
//! touch an atomic directly with zero hashing, and the snapshot layer
//! walks the fields in one fixed, hand-written order so serialized
//! snapshots have a stable metric sequence (a prerequisite for the
//! byte-identical stream contract).
//!
//! The active registry is scoped and thread-local like the obs recorder:
//! [`crate::current`] resolves this thread's registry (a process-wide
//! default when unscoped), and [`crate::with_registry`] pins a fresh one
//! for a region of work — how the experiment suite keeps 17 concurrent
//! experiments from polluting each other's counters.

use crate::primitives::{Clock, Counter, Gauge, Histogram};

/// Platform-simulation metrics (`sim::platform`).
pub struct PlatformMetrics {
    /// Ask requests accepted into batch planning (or `ask_one` calls).
    pub tasks_queued: Counter,
    /// Worker assignments planned (a task may be assigned several times).
    pub tasks_assigned: Counter,
    /// Answers delivered back to the caller.
    pub tasks_answered: Counter,
    /// Batch executions (`ask_batch` calls with at least one request).
    pub batches: Counter,
    /// Requests dropped because the budget ran out mid-plan.
    pub budget_stopped: Counter,
    /// Requests dropped because no eligible worker existed.
    pub no_worker: Counter,
    /// Cumulative spend in integer micro-currency units (never floats:
    /// sharded float addition would be merge-order-sensitive).
    pub spend_micros: Counter,
    /// Requests in the currently executing batch (0 between batches).
    pub open_batch_depth: Gauge,
    /// Wall time of batch execution (plan + parallel exec + assembly).
    pub batch_ns: Histogram,
}

impl PlatformMetrics {
    fn new() -> Self {
        Self {
            tasks_queued: Counter::new(),
            tasks_assigned: Counter::new(),
            tasks_answered: Counter::new(),
            batches: Counter::new(),
            budget_stopped: Counter::new(),
            no_worker: Counter::new(),
            spend_micros: Counter::new(),
            open_batch_depth: Gauge::new(),
            batch_ns: Histogram::new(Clock::Wall),
        }
    }
}

/// Assignment-driver metrics (`crowdkit-assign`).
pub struct AssignMetrics {
    /// Assignment waves issued.
    pub waves: Counter,
    /// Questions asked across all waves.
    pub questions: Counter,
    /// Tasks whose retry budget was exhausted before quorum.
    pub exhausted: Counter,
    /// Distribution of wave sizes (requests per wave).
    pub wave_size: Histogram,
}

impl AssignMetrics {
    fn new() -> Self {
        Self {
            waves: Counter::new(),
            questions: Counter::new(),
            exhausted: Counter::new(),
            wave_size: Histogram::new(Clock::Det),
        }
    }
}

/// Per-algorithm EM metrics: one instance per truth-inference algorithm.
pub struct AlgoMetrics {
    /// EM iterations (sweeps) executed.
    pub iters: Counter,
    /// Complete inference runs.
    pub runs: Counter,
    /// Wall time per EM sweep (E-step + M-step).
    pub sweep_ns: Histogram,
}

impl AlgoMetrics {
    fn new() -> Self {
        Self {
            iters: Counter::new(),
            runs: Counter::new(),
            sweep_ns: Histogram::new(Clock::Wall),
        }
    }
}

/// Truth-inference metrics (`crowdkit-truth`).
pub struct TruthMetrics {
    /// Dawid–Skene.
    pub ds: AlgoMetrics,
    /// One-coin (ZenCrowd-style).
    pub zc: AlgoMetrics,
    /// GLAD.
    pub glad: AlgoMetrics,
    /// KOS belief propagation.
    pub kos: AlgoMetrics,
    /// Tasks frozen by the sparse incremental E-step.
    pub freezes: Counter,
    /// Frozen tasks thawed back into the active set.
    pub thaws: Counter,
    /// Active (unfrozen) tasks after the most recent sweep.
    pub active_tasks: Gauge,
    /// Frozen tasks after the most recent sweep.
    pub frozen_tasks: Gauge,
}

impl TruthMetrics {
    fn new() -> Self {
        Self {
            ds: AlgoMetrics::new(),
            zc: AlgoMetrics::new(),
            glad: AlgoMetrics::new(),
            kos: AlgoMetrics::new(),
            freezes: Counter::new(),
            thaws: Counter::new(),
            active_tasks: Gauge::new(),
            frozen_tasks: Gauge::new(),
        }
    }

    /// The per-algorithm metrics for an obs algorithm tag (`"ds"`, `"zc"`,
    /// `"glad"`, `"kos"`), or `None` for an unknown tag.
    pub fn algo(&self, tag: &str) -> Option<&AlgoMetrics> {
        match tag {
            "ds" => Some(&self.ds),
            "zc" => Some(&self.zc),
            "glad" => Some(&self.glad),
            "kos" => Some(&self.kos),
            _ => None,
        }
    }
}

/// CrowdSQL Volcano-executor metrics (`crowdkit-sql`).
pub struct SqlMetrics {
    /// Queries executed.
    pub queries: Counter,
    /// Result rows returned to callers.
    pub rows_out: Counter,
    /// Crowd questions issued by plan nodes.
    pub crowd_questions: Counter,
    /// Query spend in integer micro-currency units.
    pub spend_micros: Counter,
    /// Plan nodes evaluated.
    pub nodes: Counter,
    /// Distribution of per-node output cardinalities (cost actuals).
    pub node_rows: Histogram,
}

impl SqlMetrics {
    fn new() -> Self {
        Self {
            queries: Counter::new(),
            rows_out: Counter::new(),
            crowd_questions: Counter::new(),
            spend_micros: Counter::new(),
            nodes: Counter::new(),
            node_rows: Histogram::new(Clock::Det),
        }
    }
}

/// The full metric registry: every subsystem's metrics, allocated flat.
pub struct Registry {
    /// Platform simulation.
    pub platform: PlatformMetrics,
    /// Assignment driver.
    pub assign: AssignMetrics,
    /// Truth inference.
    pub truth: TruthMetrics,
    /// CrowdSQL execution.
    pub sql: SqlMetrics,
}

impl Registry {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self {
            platform: PlatformMetrics::new(),
            assign: AssignMetrics::new(),
            truth: TruthMetrics::new(),
            sql: SqlMetrics::new(),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Converts a non-negative float currency amount to integer micro-units
/// for counter accumulation (saturating, NaN-safe: non-finite maps to 0).
pub fn to_micros(amount: f64) -> u64 {
    if amount.is_finite() && amount > 0.0 {
        (amount * 1e6).round() as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_lookup_matches_obs_tags() {
        let t = TruthMetrics::new();
        assert!(t.algo("ds").is_some());
        assert!(t.algo("zc").is_some());
        assert!(t.algo("glad").is_some());
        assert!(t.algo("kos").is_some());
        assert!(t.algo("mv").is_none());
    }

    #[test]
    fn micros_conversion() {
        assert_eq!(to_micros(0.0), 0);
        assert_eq!(to_micros(1.5), 1_500_000);
        assert_eq!(to_micros(0.0000005), 1); // rounds, not truncates
        assert_eq!(to_micros(-1.0), 0);
        assert_eq!(to_micros(f64::NAN), 0);
    }

    #[test]
    fn registry_clocks() {
        let r = Registry::new();
        assert_eq!(r.platform.batch_ns.clock(), Clock::Wall);
        assert_eq!(r.assign.wave_size.clock(), Clock::Det);
        assert_eq!(r.truth.ds.sweep_ns.clock(), Clock::Wall);
        assert_eq!(r.sql.node_rows.clock(), Clock::Det);
    }
}
