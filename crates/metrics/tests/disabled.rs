//! The `set_enabled(false)` kill switch drops all metric writes.
//!
//! This is deliberately the *only* test in this binary: the enabled flag
//! is process-global, and toggling it while other tests run in parallel
//! threads of the same test binary would drop their writes too.

use crowdkit_metrics::{set_enabled, Clock, Counter, Gauge, Histogram};

#[test]
fn disabled_writes_are_dropped() {
    let c = Counter::new();
    let g = Gauge::new();
    let h = Histogram::new(Clock::Det);
    set_enabled(false);
    c.inc();
    g.set(5);
    h.record(9);
    set_enabled(true);
    assert_eq!(c.value(), 0);
    assert_eq!(g.value(), 0);
    assert_eq!(h.merged().count, 0);
    // Re-enabled writes land again.
    c.inc();
    assert_eq!(c.value(), 1);
}
