//! Deterministic parallel execution primitives for batched crowd asks.
//!
//! The batch engine in [`crate::platform`] is split into two phases:
//!
//! 1. **Plan** (sequential): budget funding, worker assignment and RNG-seed
//!    derivation happen in request order under the platform locks. Every
//!    planned assignment gets its own [`derive_seed`]-derived RNG stream.
//! 2. **Execute** (parallel): answer values and latency draws are computed
//!    from the per-assignment streams with [`parallel_map`], which chunks
//!    the plan across a crossbeam-scoped worker pool and reassembles
//!    results in input order.
//!
//! Because the only cross-assignment coupling (budget, worker reservation)
//! is resolved in phase 1 and every phase-2 computation is a pure function
//! of its planned seed, the combined result is byte-identical at any thread
//! count — the property the concurrency proptests pin.

/// Derives an independent 64-bit RNG seed for one assignment from the
/// platform seed, the task id, and the per-task attempt ordinal.
///
/// SplitMix64-style finalization: consecutive `(task, attempt)` pairs land
/// far apart in seed space, so per-assignment `StdRng` streams are
/// statistically independent even though they are planned sequentially.
pub fn derive_seed(platform_seed: u64, task_raw: u64, attempt: u64) -> u64 {
    let mut z = platform_seed
        .wrapping_add(task_raw.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(attempt.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The order-preserving chunked map and the default pool width now live in
/// [`crowdkit_core::par`] so the truth-inference kernels share the exact
/// same deterministic-partitioning implementation; re-exported here for
/// existing call sites.
pub use crowdkit_core::par::{default_threads, parallel_map};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_separates_tasks_and_attempts() {
        let a = derive_seed(7, 0, 0);
        let b = derive_seed(7, 0, 1);
        let c = derive_seed(7, 1, 0);
        let d = derive_seed(8, 0, 0);
        let all = [a, b, c, d];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j], "seeds {i} and {j} collide");
            }
        }
        assert_eq!(derive_seed(7, 0, 0), a, "derivation is pure");
    }

    /// The re-exported pool helper keeps its contract (full coverage lives
    /// in `crowdkit-core::par`).
    #[test]
    fn reexported_parallel_map_preserves_order() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 4] {
            assert_eq!(parallel_map(&items, threads, |_, &x| x * x), expect);
        }
    }
}
