//! Deterministic parallel execution primitives for batched crowd asks.
//!
//! The batch engine in [`crate::platform`] is split into two phases:
//!
//! 1. **Plan** (sequential): budget funding, worker assignment and RNG-seed
//!    derivation happen in request order under the platform locks. Every
//!    planned assignment gets its own [`derive_seed`]-derived RNG stream.
//! 2. **Execute** (parallel): answer values and latency draws are computed
//!    from the per-assignment streams with [`parallel_map`], which chunks
//!    the plan across a crossbeam-scoped worker pool and reassembles
//!    results in input order.
//!
//! Because the only cross-assignment coupling (budget, worker reservation)
//! is resolved in phase 1 and every phase-2 computation is a pure function
//! of its planned seed, the combined result is byte-identical at any thread
//! count — the property the concurrency proptests pin.

/// Derives an independent 64-bit RNG seed for one assignment from the
/// platform seed, the task id, and the per-task attempt ordinal.
///
/// SplitMix64-style finalization: consecutive `(task, attempt)` pairs land
/// far apart in seed space, so per-assignment `StdRng` streams are
/// statistically independent even though they are planned sequentially.
pub fn derive_seed(platform_seed: u64, task_raw: u64, attempt: u64) -> u64 {
    let mut z = platform_seed
        .wrapping_add(task_raw.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(attempt.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies `f` to every item, fanning out across `threads` scoped workers,
/// and returns the results **in input order**.
///
/// Items are split into contiguous chunks (one per worker) so the output
/// permutation — and therefore every determinism property downstream — is
/// independent of scheduling. Falls back to a plain sequential map when a
/// single thread is requested or the input is too small to be worth the
/// spawn overhead.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    const MIN_ITEMS_PER_THREAD: usize = 2;
    if threads == 1 || items.len() < MIN_ITEMS_PER_THREAD * 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let chunk_len = items.len().div_ceil(threads);
    let chunks: Vec<(usize, &[T])> = items
        .chunks(chunk_len)
        .enumerate()
        .map(|(c, chunk)| (c * chunk_len, chunk))
        .collect();

    let results: Vec<Vec<R>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|&(base, chunk)| {
                let f = &f;
                s.spawn(move |_| {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(base + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    })
    .expect("batch scope panicked");

    let mut out = Vec::with_capacity(items.len());
    for chunk in results {
        out.extend(chunk);
    }
    out
}

/// Default worker-pool width for batch execution: the machine's available
/// parallelism, capped to keep spawn overhead negligible for simulated
/// (non-blocking) work.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_separates_tasks_and_attempts() {
        let a = derive_seed(7, 0, 0);
        let b = derive_seed(7, 0, 1);
        let c = derive_seed(7, 1, 0);
        let d = derive_seed(8, 0, 0);
        let all = [a, b, c, d];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j], "seeds {i} and {j} collide");
            }
        }
        assert_eq!(derive_seed(7, 0, 0), a, "derivation is pure");
    }

    #[test]
    fn parallel_map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(&items, threads, |_, &x| x * x);
            assert_eq!(got, expect, "order broken at {threads} threads");
        }
    }

    #[test]
    fn parallel_map_passes_global_indices() {
        let items = vec!["a"; 37];
        let got = parallel_map(&items, 4, |i, _| i);
        assert_eq!(got, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(parallel_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[5u8], 8, |_, &x| x + 1), vec![6]);
    }
}
