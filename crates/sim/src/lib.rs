//! # crowdkit-sim
//!
//! A deterministic crowdsourcing-platform simulator.
//!
//! Published crowdsourced-data-management evaluations run against live
//! platforms (Amazon Mechanical Turk, CrowdFlower). This crate is the
//! substitution: a seedable, discrete-event platform whose workers follow
//! the statistical models the literature itself uses to describe crowds
//! (fixed-accuracy workers, confusion matrices, GLAD ability/difficulty,
//! spammers, adversaries). Every algorithm in the stack consumes answers
//! only through [`crowdkit_core::traits::CrowdOracle`], which
//! [`platform::SimulatedCrowd`] implements, so code runs unmodified whether
//! the crowd is simulated or real.
//!
//! Modules:
//!
//! * [`worker`] — per-worker answer-generation models.
//! * [`population`] — building worker pools from mixes.
//! * [`latency`] — latency distributions and the round/straggler simulator.
//! * [`platform`] — the [`platform::SimulatedCrowd`] oracle.
//! * [`exec`] — deterministic parallel execution: per-assignment seed
//!   derivation and the worker pool that drains batches.
//! * [`dataset`] — synthetic ground-truth dataset generators for every
//!   experiment family (labeling, entity resolution, ranking, open-world
//!   collection, numeric estimation).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod exec;
pub mod latency;
pub mod platform;
pub mod population;
pub mod worker;

pub use platform::{Churn, PlatformBuilder, Qualification, SimulatedCrowd};
pub use population::{Population, PopulationBuilder};
pub use worker::{WorkerModel, WorkerProfile};
