//! Worker population construction.
//!
//! Experiments describe crowds as *mixes*: "70 % reliable workers with
//! accuracy ~0.85, 20 % sloppy (~0.6), 10 % spammers". The
//! [`PopulationBuilder`] turns such a description into a concrete
//! [`Population`] of [`WorkerProfile`]s with deterministic ids and sampled
//! parameters.

use crowdkit_core::ids::WorkerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::worker::{WorkerModel, WorkerProfile};

/// A recipe for one slice of the population.
#[derive(Debug, Clone)]
pub enum Archetype {
    /// One-coin workers with accuracy drawn uniformly from the range.
    Reliable {
        /// Inclusive accuracy range to draw from.
        accuracy: (f64, f64),
    },
    /// GLAD workers with ability drawn uniformly from the range.
    Skilled {
        /// Inclusive ability range to draw from.
        ability: (f64, f64),
    },
    /// Uniform-random spammers.
    Spammer,
    /// Deliberately wrong workers with malice drawn from the range.
    Adversarial {
        /// Inclusive malice range to draw from.
        malice: (f64, f64),
    },
    /// Numeric estimators with bias and noise drawn from the ranges.
    Numeric {
        /// Inclusive multiplicative-bias range.
        bias: (f64, f64),
        /// Inclusive noise-fraction range.
        noise: (f64, f64),
    },
    /// Dawid–Skene workers: diagonal drawn from the accuracy range, the
    /// remaining mass spread uniformly off-diagonal. `k` is the label-space
    /// size the matrix is built for.
    Confusion {
        /// Inclusive per-class accuracy (diagonal) range.
        accuracy: (f64, f64),
        /// Label-space size.
        k: usize,
    },
}

impl Archetype {
    fn instantiate(&self, rng: &mut StdRng) -> WorkerModel {
        let draw = |rng: &mut StdRng, (lo, hi): (f64, f64)| -> f64 {
            if (hi - lo).abs() < f64::EPSILON {
                lo
            } else {
                rng.gen_range(lo.min(hi)..=lo.max(hi))
            }
        };
        match self {
            Archetype::Reliable { accuracy } => WorkerModel::Reliable {
                accuracy: draw(rng, *accuracy),
            },
            Archetype::Skilled { ability } => WorkerModel::Ability {
                ability: draw(rng, *ability),
            },
            Archetype::Spammer => WorkerModel::Spammer,
            Archetype::Adversarial { malice } => WorkerModel::Adversarial {
                malice: draw(rng, *malice),
            },
            Archetype::Numeric { bias, noise } => WorkerModel::Numeric {
                bias: draw(rng, *bias),
                noise: draw(rng, *noise),
            },
            Archetype::Confusion { accuracy, k } => {
                let k = (*k).max(2);
                let mut matrix = vec![vec![0.0; k]; k];
                for (t, row) in matrix.iter_mut().enumerate() {
                    let diag = draw(rng, *accuracy).clamp(0.0, 1.0);
                    let off = (1.0 - diag) / (k - 1) as f64;
                    for (l, cell) in row.iter_mut().enumerate() {
                        *cell = if l == t { diag } else { off };
                    }
                }
                WorkerModel::Confusion { matrix }
            }
        }
    }
}

/// A concrete set of workers.
#[derive(Debug, Clone)]
pub struct Population {
    workers: Vec<WorkerProfile>,
}

impl Population {
    /// Wraps explicit profiles.
    pub fn from_profiles(workers: Vec<WorkerProfile>) -> Self {
        Self { workers }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True if no workers exist.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// All profiles.
    pub fn workers(&self) -> &[WorkerProfile] {
        &self.workers
    }

    /// Profile by dense index.
    pub fn get(&self, i: usize) -> &WorkerProfile {
        &self.workers[i]
    }

    /// Profile by worker id, if present.
    pub fn by_id(&self, id: WorkerId) -> Option<&WorkerProfile> {
        self.workers.iter().find(|w| w.id == id)
    }

    /// Ground-truth scalar quality per worker (aligned with
    /// [`Population::workers`]); used to evaluate worker-quality estimation.
    pub fn true_qualities(&self) -> Vec<f64> {
        self.workers.iter().map(|w| w.model.true_quality()).collect()
    }
}

/// Builds a [`Population`] from archetype slices.
#[derive(Debug, Clone, Default)]
pub struct PopulationBuilder {
    slices: Vec<(usize, Archetype)>,
}

impl PopulationBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` workers of the given archetype.
    pub fn add(mut self, count: usize, archetype: Archetype) -> Self {
        self.slices.push((count, archetype));
        self
    }

    /// Shorthand: `count` one-coin workers with accuracy in `[lo, hi]`.
    pub fn reliable(self, count: usize, lo: f64, hi: f64) -> Self {
        self.add(count, Archetype::Reliable { accuracy: (lo, hi) })
    }

    /// Shorthand: `count` spammers.
    pub fn spammers(self, count: usize) -> Self {
        self.add(count, Archetype::Spammer)
    }

    /// Instantiates all workers with ids `0..n`, deterministically for the
    /// given seed.
    ///
    /// # Panics
    /// Panics if no workers were requested.
    pub fn build(self, seed: u64) -> Population {
        assert!(
            self.slices.iter().map(|(c, _)| *c).sum::<usize>() > 0,
            "population must contain at least one worker"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut workers = Vec::new();
        let mut next_id = 0u64;
        for (count, archetype) in &self.slices {
            for _ in 0..*count {
                let model = archetype.instantiate(&mut rng);
                workers.push(WorkerProfile::new(WorkerId::new(next_id), model));
                next_id += 1;
            }
        }
        Population { workers }
    }
}

/// The three canonical population mixes used across the experiment suite
/// (E1, E8): a mostly-reliable crowd, a mixed crowd, and a heavily spammed
/// crowd.
pub mod mixes {
    use super::*;

    /// 90 % reliable (0.75–0.95), 10 % spammers.
    pub fn reliable(n: usize, seed: u64) -> Population {
        let spam = n / 10;
        PopulationBuilder::new()
            .reliable(n - spam, 0.75, 0.95)
            .spammers(spam)
            .build(seed)
    }

    /// 50 % reliable (0.7–0.9), 30 % sloppy (0.55–0.7), 20 % spammers.
    pub fn mixed(n: usize, seed: u64) -> Population {
        let spam = n * 2 / 10;
        let sloppy = n * 3 / 10;
        PopulationBuilder::new()
            .reliable(n - spam - sloppy, 0.7, 0.9)
            .reliable(sloppy, 0.55, 0.7)
            .spammers(spam)
            .build(seed)
    }

    /// 40 % reliable (0.7–0.9), 40 % spammers, 20 % adversarial.
    pub fn spam_heavy(n: usize, seed: u64) -> Population {
        let spam = n * 4 / 10;
        let adv = n * 2 / 10;
        PopulationBuilder::new()
            .reliable(n - spam - adv, 0.7, 0.9)
            .spammers(spam)
            .add(adv, Archetype::Adversarial { malice: (0.6, 0.9) })
            .build(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let p = PopulationBuilder::new().reliable(3, 0.8, 0.8).spammers(2).build(1);
        assert_eq!(p.len(), 5);
        let ids: Vec<u64> = p.workers().iter().map(|w| w.id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(p.by_id(WorkerId::new(4)).is_some());
        assert!(p.by_id(WorkerId::new(5)).is_none());
    }

    #[test]
    fn builder_is_deterministic_per_seed() {
        let a = PopulationBuilder::new().reliable(10, 0.6, 0.9).build(7);
        let b = PopulationBuilder::new().reliable(10, 0.6, 0.9).build(7);
        let c = PopulationBuilder::new().reliable(10, 0.6, 0.9).build(8);
        assert_eq!(a.true_qualities(), b.true_qualities());
        assert_ne!(a.true_qualities(), c.true_qualities());
    }

    #[test]
    fn accuracy_draws_stay_in_range() {
        let p = PopulationBuilder::new().reliable(100, 0.6, 0.9).build(3);
        for q in p.true_qualities() {
            assert!((0.6..=0.9).contains(&q), "quality {q} outside range");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_population_panics() {
        let _ = PopulationBuilder::new().build(0);
    }

    #[test]
    fn confusion_archetype_builds_stochastic_rows() {
        let p = PopulationBuilder::new()
            .add(
                5,
                Archetype::Confusion {
                    accuracy: (0.7, 0.9),
                    k: 4,
                },
            )
            .build(11);
        for w in p.workers() {
            if let WorkerModel::Confusion { matrix } = &w.model {
                assert_eq!(matrix.len(), 4);
                for row in matrix {
                    let sum: f64 = row.iter().sum();
                    assert!((sum - 1.0).abs() < 1e-9, "row sums to {sum}");
                }
            } else {
                panic!("expected confusion model");
            }
        }
    }

    #[test]
    fn canonical_mixes_have_requested_sizes() {
        assert_eq!(mixes::reliable(50, 1).len(), 50);
        assert_eq!(mixes::mixed(50, 1).len(), 50);
        assert_eq!(mixes::spam_heavy(50, 1).len(), 50);
    }

    #[test]
    fn spam_heavy_mix_has_lower_mean_quality_than_reliable() {
        let q1 = mixes::reliable(100, 1).true_qualities();
        let q2 = mixes::spam_heavy(100, 1).true_qualities();
        let m1: f64 = q1.iter().sum::<f64>() / q1.len() as f64;
        let m2: f64 = q2.iter().sum::<f64>() / q2.len() as f64;
        assert!(m1 > m2 + 0.1, "reliable {m1} vs spam-heavy {m2}");
    }
}
