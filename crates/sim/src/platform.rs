//! The simulated crowdsourcing platform.
//!
//! [`SimulatedCrowd`] is the stand-in for Amazon Mechanical Turk: it owns a
//! worker [`Population`], a [`Budget`], a [`CostModel`] and a
//! [`LatencyModel`], and serves answers through the
//! [`CrowdOracle`] interface. Like a real platform it
//! never assigns the same worker to the same task twice, debits the budget
//! per answer, and timestamps answers on a simulated clock.
//!
//! # Concurrency model
//!
//! The platform is a *shared service*: every [`CrowdOracle`] method takes
//! `&self` and internal state lives behind striped locks —
//!
//! * per-task assignment state (which workers answered, how many attempts)
//!   is sharded across [`TASK_SHARDS`] mutexes keyed by task id;
//! * the spend ledger is striped the same way and merged on read;
//! * the budget sits behind a single mutex so debits are atomic;
//! * the legacy sequential RNG and the simulated clock form the *core*
//!   lock, which also serializes batch planning.
//!
//! [`CrowdOracle::ask`]/[`CrowdOracle::ask_batch`] run in two phases:
//! a sequential *planning* phase (budget funded in request order, workers
//! reserved, one independent RNG stream derived per assignment — see
//! [`crate::exec`]) and an embarrassingly parallel *execution* phase that
//! computes answer values and latency draws on a crossbeam worker pool.
//! All assignments in a batch start at the batch epoch, so their simulated
//! latencies **overlap**: batch wall-clock is the makespan, not the sum —
//! the dominant latency lever of crowd execution (HIT batching). Because
//! every cross-assignment decision happens in the sequential phase, results
//! are byte-identical at any thread count.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use crowdkit_core::answer::Answer;
use crowdkit_core::ask::{AskOutcome, AskRequest};
use crowdkit_core::budget::{Budget, CostLedger, CostModel};
use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::ids::{TaskId, WorkerId};
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use crowdkit_metrics as metrics;
use crowdkit_obs::{self as obs, Event};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::exec::{default_threads, derive_seed, parallel_map};
use crate::latency::LatencyModel;
use crate::population::Population;

/// Number of mutex shards for per-task assignment state.
pub const TASK_SHARDS: usize = 16;

/// Salt distinguishing the worker-pick RNG stream from the answer stream.
const PICK_STREAM_SALT: u64 = 0x517C_C1B7_2722_0A95;

/// Builder for [`SimulatedCrowd`].
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    population: Population,
    budget: Budget,
    cost_model: CostModel,
    latency: LatencyModel,
    seed: u64,
    qualification: Option<Qualification>,
    churn: Option<Churn>,
    threads: usize,
}

/// Worker churn: workers are not always online. Each worker follows a
/// deterministic duty cycle (a per-worker phase offset over a shared
/// period); when no eligible worker is online, the platform *waits* —
/// advancing the simulated clock to the next arrival — before serving the
/// answer. This is the worker-supply component of crowd latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Churn {
    /// Fraction of time each worker is online, in `(0, 1]`.
    pub duty_cycle: f64,
    /// Length of one on/off cycle in simulated seconds.
    pub period: f64,
}

impl Churn {
    /// Deterministic phase offset of a worker within the period.
    fn phase(&self, worker: WorkerId, seed: u64) -> f64 {
        // Cheap splitmix-style hash → [0, 1).
        let mut x = worker.raw() ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        u * self.period
    }

    /// Whether the worker is online at simulated time `t`.
    fn online(&self, worker: WorkerId, seed: u64, t: f64) -> bool {
        let pos = (t + self.phase(worker, seed)).rem_euclid(self.period);
        pos < self.duty_cycle * self.period
    }

    /// The earliest time ≥ `t` at which the worker is online.
    fn next_online(&self, worker: WorkerId, seed: u64, t: f64) -> f64 {
        if self.online(worker, seed, t) {
            return t;
        }
        let pos = (t + self.phase(worker, seed)).rem_euclid(self.period);
        t + (self.period - pos)
    }
}

/// A qualification test gating entry to the worker pool: each worker
/// answers `questions` binary screening questions of the given difficulty;
/// only workers whose private score reaches `pass_fraction` may take real
/// tasks. Each administered question is paid at the platform's
/// single-choice price (qualification is not free — that is the trade-off
/// experiment E13 quantifies for gold injection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Qualification {
    /// Number of screening questions per worker.
    pub questions: u32,
    /// Minimum fraction answered correctly to pass (e.g. 0.7).
    pub pass_fraction: f64,
    /// Difficulty of the screening questions, in `[0, 1]`.
    pub difficulty: f64,
}

impl PlatformBuilder {
    /// Starts a builder over the given population with an unlimited budget,
    /// unit costs, constant zero latency, and seed 0.
    pub fn new(population: Population) -> Self {
        Self {
            population,
            budget: Budget::unlimited(),
            cost_model: CostModel::unit(),
            latency: LatencyModel::Constant { secs: 0.0 },
            seed: 0,
            qualification: None,
            churn: None,
            threads: default_threads(),
        }
    }

    /// Enables worker churn; see [`Churn`].
    ///
    /// # Panics
    /// Panics if the duty cycle is not in `(0, 1]` or the period is not
    /// positive.
    pub fn churn(mut self, churn: Churn) -> Self {
        assert!(
            churn.duty_cycle > 0.0 && churn.duty_cycle <= 1.0,
            "duty cycle must be in (0, 1]"
        );
        assert!(churn.period > 0.0, "churn period must be positive");
        self.churn = Some(churn);
        self
    }

    /// Gates the pool behind a qualification test; see [`Qualification`].
    pub fn qualification(mut self, qualification: Qualification) -> Self {
        self.qualification = Some(qualification);
        self
    }

    /// Sets the budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the cost model.
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Sets the latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the RNG seed (answers, worker choice and latency draws are all
    /// deterministic functions of this seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the width of the batch-execution worker pool. Thread count
    /// never affects results — only how fast batches are computed.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread pool must have at least one worker");
        self.threads = threads;
        self
    }

    /// Finishes the build, administering the qualification test (if any)
    /// to every worker. Screening answers are paid from the budget and
    /// recorded in the ledger under `"qualification"`; if the budget dies
    /// mid-screening, the remaining workers are rejected unscreened.
    pub fn build(self) -> SimulatedCrowd {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut budget = self.budget;
        let mut ledger = CostLedger::new();
        let population = match self.qualification {
            None => self.population,
            Some(q) => {
                let screening = Task::binary(TaskId::new(u64::MAX), "qualification question")
                    .with_difficulty(q.difficulty)
                    .with_truth(crowdkit_core::answer::AnswerValue::Choice(1));
                let price = self.cost_model.price(&screening.kind);
                let passed: Vec<_> = self
                    .population
                    .workers()
                    .iter()
                    .filter(|w| {
                        let mut correct = 0u32;
                        for _ in 0..q.questions.max(1) {
                            if budget.debit(price).is_err() {
                                return false;
                            }
                            ledger.record("qualification", price);
                            if w.answer(&screening, &mut rng)
                                == crowdkit_core::answer::AnswerValue::Choice(1)
                            {
                                correct += 1;
                            }
                        }
                        correct as f64 / q.questions.max(1) as f64 >= q.pass_fraction
                    })
                    .cloned()
                    .collect();
                Population::from_profiles(passed)
            }
        };
        let mut ledger_stripes: Vec<Mutex<CostLedger>> =
            (0..TASK_SHARDS).map(|_| Mutex::new(CostLedger::new())).collect();
        // Qualification spend lands in stripe 0; reads merge all stripes.
        *ledger_stripes[0].get_mut() = ledger;
        SimulatedCrowd {
            population,
            cost_model: self.cost_model,
            latency: self.latency,
            churn: self.churn,
            seed: self.seed,
            threads: self.threads,
            core: Mutex::new(CoreState { rng, clock: 0.0 }),
            budget: Mutex::new(budget),
            shards: (0..TASK_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            ledger_stripes,
            delivered: AtomicU64::new(0),
        }
    }
}

/// Per-task assignment bookkeeping, kept inside a shard.
#[derive(Debug, Default)]
struct TaskState {
    /// Workers already assigned to this task (a worker answers a given
    /// task at most once, as on real platforms).
    asked: HashSet<WorkerId>,
    /// Monotone count of assignments ever planned for this task; the
    /// per-assignment RNG streams are derived from it, so streams never
    /// repeat across separate asks for the same task.
    attempts: u64,
}

/// Mutable state shared by the sequential path and batch planning: the
/// legacy shared RNG stream and the simulated clock.
#[derive(Debug)]
struct CoreState {
    rng: StdRng,
    clock: f64,
}

/// One funded, reserved assignment awaiting parallel execution.
#[derive(Debug, Clone, Copy)]
struct PlannedAsk {
    /// Index of the originating request in the batch.
    req_idx: usize,
    /// Index of the reserved worker in the population.
    worker_idx: usize,
    /// Simulated time at which the worker starts (batch epoch, or the
    /// worker's next online window under churn).
    serve_start: f64,
    /// Seed of this assignment's independent RNG stream.
    rng_seed: u64,
    /// Price debited for this assignment.
    price: f64,
}

/// The simulated platform; implements [`CrowdOracle`].
///
/// Thread-safe: share it as `&SimulatedCrowd` (or in an `Arc`) across
/// threads. See the module docs for the locking and determinism model.
#[derive(Debug)]
pub struct SimulatedCrowd {
    population: Population,
    cost_model: CostModel,
    latency: LatencyModel,
    churn: Option<Churn>,
    seed: u64,
    threads: usize,
    core: Mutex<CoreState>,
    budget: Mutex<Budget>,
    shards: Vec<Mutex<HashMap<TaskId, TaskState>>>,
    ledger_stripes: Vec<Mutex<CostLedger>>,
    delivered: AtomicU64,
}

impl SimulatedCrowd {
    /// Convenience constructor with platform defaults; see
    /// [`PlatformBuilder::new`].
    pub fn new(population: Population, seed: u64) -> Self {
        PlatformBuilder::new(population).seed(seed).build()
    }

    /// The underlying population (e.g. to read true worker qualities when
    /// scoring an experiment).
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.core.lock().clock
    }

    /// Width of the batch-execution worker pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A snapshot of the spend ledger, categorized by task kind (merged
    /// across the internal stripes).
    pub fn ledger(&self) -> CostLedger {
        let mut merged = CostLedger::new();
        for stripe in &self.ledger_stripes {
            merged.merge(&stripe.lock());
        }
        merged
    }

    /// A snapshot of the budget state.
    pub fn budget(&self) -> Budget {
        self.budget.lock().clone()
    }

    fn shard_for(&self, task: TaskId) -> &Mutex<HashMap<TaskId, TaskState>> {
        &self.shards[task.raw() as usize % self.shards.len()]
    }

    fn ledger_stripe_for(&self, task: TaskId) -> &Mutex<CostLedger> {
        &self.ledger_stripes[task.raw() as usize % self.ledger_stripes.len()]
    }

    /// Sequential worker pick for [`CrowdOracle::ask_one`]: uniform over
    /// eligible workers via the shared RNG, advancing the clock to the next
    /// arrival when churn leaves nobody online. Caller holds the core lock.
    fn pick_worker_sequential(&self, core: &mut CoreState, task: TaskId) -> Option<usize> {
        let mut shard = self.shard_for(task).lock();
        let asked = &shard.entry(task).or_default().asked;
        let eligible: Vec<usize> = self
            .population
            .workers()
            .iter()
            .enumerate()
            .filter(|(_, w)| !asked.contains(&w.id))
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let Some(churn) = self.churn else {
            return eligible.choose(&mut core.rng).copied();
        };
        let online: Vec<usize> = eligible
            .iter()
            .copied()
            .filter(|&i| churn.online(self.population.get(i).id, self.seed, core.clock))
            .collect();
        if let Some(&i) = online.choose(&mut core.rng) {
            return Some(i);
        }
        // Nobody online: wait for the earliest eligible arrival.
        let (next_i, next_t) = eligible
            .iter()
            .map(|&i| {
                (
                    i,
                    churn.next_online(self.population.get(i).id, self.seed, core.clock),
                )
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("eligible is non-empty"); // crowdkit-lint: allow(PANIC001) — empty `eligible` returned None earlier in this function
        core.clock = next_t;
        Some(next_i)
    }

    /// Batch worker pick: deterministic function of the derived pick
    /// stream, the reservation state and the batch epoch — never of thread
    /// timing. Under churn, workers online at the epoch are preferred; when
    /// nobody eligible is online the assignment *waits* (its serve time
    /// becomes the earliest arrival) without blocking the rest of the
    /// batch.
    fn pick_worker_batch(
        &self,
        state: &TaskState,
        exclude: &[WorkerId],
        epoch: f64,
        pick_seed: u64,
    ) -> Option<(usize, f64)> {
        let eligible: Vec<usize> = self
            .population
            .workers()
            .iter()
            .enumerate()
            .filter(|(_, w)| !state.asked.contains(&w.id) && !exclude.contains(&w.id))
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let mut pick_rng = StdRng::seed_from_u64(pick_seed);
        let Some(churn) = self.churn else {
            let i = eligible[pick_rng.gen_range(0..eligible.len())];
            return Some((i, epoch));
        };
        let online: Vec<usize> = eligible
            .iter()
            .copied()
            .filter(|&i| churn.online(self.population.get(i).id, self.seed, epoch))
            .collect();
        if !online.is_empty() {
            let i = online[pick_rng.gen_range(0..online.len())];
            return Some((i, epoch));
        }
        let (next_i, next_t) = eligible
            .iter()
            .map(|&i| {
                (
                    i,
                    churn.next_online(self.population.get(i).id, self.seed, epoch),
                )
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("eligible is non-empty"); // crowdkit-lint: allow(PANIC001) — empty `eligible` returned None earlier in this function
        Some((next_i, next_t))
    }
}

impl CrowdOracle for SimulatedCrowd {
    /// Legacy sequential path: one shared RNG stream, clock advanced by
    /// each answer's full service time (no overlap). Kept for
    /// single-answer call sites and as the baseline the batched path is
    /// benchmarked against.
    fn ask_one(&self, task: &Task) -> Result<Answer> {
        let mut core_guard = self.core.lock();
        let core = &mut *core_guard;
        let price = self.cost_model.price(&task.kind);
        {
            let budget = self.budget.lock();
            if !budget.can_afford(price) {
                return Err(CrowdError::BudgetExhausted {
                    requested: price,
                    remaining: budget.remaining(),
                });
            }
        }
        let widx = self
            .pick_worker_sequential(core, task.id)
            .ok_or(CrowdError::NoWorkerAvailable)?;
        let worker = self.population.get(widx).clone();
        self.budget.lock().debit(price)?;
        self.ledger_stripe_for(task.id)
            .lock()
            .record(task.kind.name(), price);

        let value = worker.answer(task, &mut core.rng);
        let service = self.latency.sample(&mut core.rng);
        core.clock += service;
        self.shard_for(task.id)
            .lock()
            .entry(task.id)
            .or_default()
            .asked
            .insert(worker.id);
        self.delivered.fetch_add(1, Ordering::Relaxed);

        let m = metrics::current();
        m.platform.tasks_queued.inc();
        m.platform.tasks_assigned.inc();
        m.platform.tasks_answered.inc();
        m.platform.spend_micros.add(metrics::to_micros(price));

        let rec = obs::current();
        if rec.enabled() {
            rec.sample("platform.latency", service);
            rec.record(
                Event::new("platform.ask")
                    .at(core.clock)
                    .u64("task", task.id.raw())
                    .u64("worker", worker.id.raw())
                    .u64("delivered", 1)
                    .f64("spend", price)
                    .f64("makespan", service)
                    .f64("latency_sum", service),
            );
        }

        Ok(Answer {
            task: task.id,
            worker: worker.id,
            value,
            submitted_at: core.clock,
            cost: price,
        })
    }

    fn ask(&self, req: &AskRequest<'_>) -> Result<AskOutcome> {
        let mut outcomes = self.ask_batch(std::slice::from_ref(req))?;
        Ok(outcomes.pop().expect("one outcome per request")) // crowdkit-lint: allow(PANIC001) — ask_batch returns exactly one outcome per submitted request
    }

    /// The batched engine. Planning (budget in request order, worker
    /// reservation, RNG-stream derivation) is sequential under the core
    /// lock; answer computation fans out over the thread pool; all
    /// assignments share the batch epoch so their simulated latencies
    /// overlap and the clock advances by the batch *makespan*.
    fn ask_batch(&self, reqs: &[AskRequest<'_>]) -> Result<Vec<AskOutcome>> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let rec = obs::current();
        let m = metrics::current();
        m.platform.tasks_queued.add(reqs.len() as u64);
        m.platform.batches.inc();
        m.platform.open_batch_depth.set(reqs.len() as i64);
        let t_plan = obs::WallTimer::start();

        // ---- Phase 1: sequential planning ------------------------------
        let (plan, mut outcomes, epoch) = {
            let core = self.core.lock();
            let epoch = core.clock;
            let mut budget = self.budget.lock();
            let mut plan: Vec<PlannedAsk> = Vec::new();
            let mut outcomes: Vec<AskOutcome> = reqs
                .iter()
                .map(|r| AskOutcome::complete(r.task.id, r.redundancy.max(1), Vec::new()))
                .collect();
            for (req_idx, req) in reqs.iter().enumerate() {
                let price = self.cost_model.price(&req.task.kind);
                for _ in 0..req.redundancy.max(1) {
                    if !budget.can_afford(price) {
                        outcomes[req_idx].shortfall = Some(CrowdError::BudgetExhausted {
                            requested: price,
                            remaining: budget.remaining(),
                        });
                        break;
                    }
                    let mut shard = self.shard_for(req.task.id).lock();
                    let state = shard.entry(req.task.id).or_default();
                    let attempt = state.attempts;
                    let pick_seed =
                        derive_seed(self.seed ^ PICK_STREAM_SALT, req.task.id.raw(), attempt);
                    let Some((worker_idx, serve_start)) =
                        self.pick_worker_batch(state, &req.exclude, epoch, pick_seed)
                    else {
                        outcomes[req_idx].shortfall = Some(CrowdError::NoWorkerAvailable);
                        break;
                    };
                    state.attempts += 1;
                    state.asked.insert(self.population.get(worker_idx).id);
                    drop(shard);
                    budget.debit(price)?;
                    self.ledger_stripe_for(req.task.id)
                        .lock()
                        .record(req.task.kind.name(), price);
                    plan.push(PlannedAsk {
                        req_idx,
                        worker_idx,
                        serve_start,
                        rng_seed: derive_seed(self.seed, req.task.id.raw(), attempt),
                        price,
                    });
                }
            }
            (plan, outcomes, epoch)
        };
        let plan_ns = t_plan.elapsed_ns();
        let t_exec = obs::WallTimer::start();

        // ---- Phase 2: parallel execution -------------------------------
        let answers: Vec<Answer> = parallel_map(&plan, self.threads, |_, p| {
            let mut rng = StdRng::seed_from_u64(p.rng_seed);
            let worker = self.population.get(p.worker_idx);
            let task = reqs[p.req_idx].task;
            let value = worker.answer(task, &mut rng);
            let service = self.latency.sample(&mut rng);
            Answer {
                task: task.id,
                worker: worker.id,
                value,
                submitted_at: p.serve_start + service,
                cost: p.price,
            }
        });

        // ---- Assembly: input order, makespan clock ---------------------
        let exec_ns = t_exec.elapsed_ns();
        let enabled = rec.enabled();
        let detail = enabled && rec.detail();
        let mut makespan = epoch;
        let mut latency_sum = 0.0;
        for (p, a) in plan.iter().zip(answers) {
            makespan = makespan.max(a.submitted_at);
            if enabled {
                let latency = a.submitted_at - epoch;
                latency_sum += latency;
                rec.sample("platform.latency", latency);
                if detail {
                    rec.record(
                        Event::new("platform.assign")
                            .at(a.submitted_at)
                            .u64("task", a.task.raw())
                            .u64("worker", a.worker.raw())
                            .u64("req", p.req_idx as u64)
                            .f64("latency", latency)
                            .f64("price", p.price),
                    );
                }
            }
            outcomes[p.req_idx].answers.push(a);
        }
        self.delivered.fetch_add(plan.len() as u64, Ordering::Relaxed);
        {
            let mut core = self.core.lock();
            core.clock = core.clock.max(makespan);
        }
        let (mut budget_stopped, mut no_worker) = (0u64, 0u64);
        for o in &outcomes {
            match &o.shortfall {
                Some(CrowdError::BudgetExhausted { .. }) => budget_stopped += 1,
                Some(CrowdError::NoWorkerAvailable) => no_worker += 1,
                _ => {}
            }
        }
        m.platform.tasks_assigned.add(plan.len() as u64);
        m.platform.tasks_answered.add(plan.len() as u64);
        m.platform
            .spend_micros
            .add(metrics::to_micros(plan.iter().map(|p| p.price).sum()));
        m.platform.budget_stopped.add(budget_stopped);
        m.platform.no_worker.add(no_worker);
        m.platform.open_batch_depth.set(0);
        m.platform.batch_ns.record(plan_ns + exec_ns);
        if enabled {
            rec.record(
                Event::new("platform.batch")
                    .at(makespan)
                    .u64("requests", reqs.len() as u64)
                    .u64("delivered", plan.len() as u64)
                    .f64("spend", plan.iter().map(|p| p.price).sum())
                    .f64("makespan", makespan - epoch)
                    .f64("latency_sum", latency_sum)
                    .u64("budget_stopped", budget_stopped)
                    .u64("no_worker", no_worker)
                    .wall("plan_ns", plan_ns)
                    .wall("exec_ns", exec_ns),
            );
        }
        Ok(outcomes)
    }

    fn remaining_budget(&self) -> Option<f64> {
        let budget = self.budget.lock();
        if budget.limit() == f64::MAX {
            None
        } else {
            Some(budget.remaining())
        }
    }

    fn answers_delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationBuilder;
    use crowdkit_core::answer::AnswerValue;
    use crowdkit_core::task::Task;

    fn perfect_pop(n: usize) -> Population {
        PopulationBuilder::new().reliable(n, 1.0, 1.0).build(0)
    }

    #[test]
    fn platform_is_send_and_sync() {
        fn assert_shareable<T: Send + Sync>() {}
        assert_shareable::<SimulatedCrowd>();
    }

    #[test]
    fn ask_one_returns_correct_answer_from_perfect_worker() {
        let crowd = SimulatedCrowd::new(perfect_pop(5), 1);
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(1));
        let a = crowd.ask_one(&task).unwrap();
        assert_eq!(a.value, AnswerValue::Choice(1));
        assert_eq!(a.cost, 1.0);
        assert_eq!(crowd.answers_delivered(), 1);
    }

    #[test]
    fn same_worker_never_asked_twice_per_task() {
        let crowd = SimulatedCrowd::new(perfect_pop(3), 1);
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(0));
        let answers = crowd.ask_many(&task, 3).unwrap();
        let workers: HashSet<WorkerId> = answers.iter().map(|a| a.worker).collect();
        assert_eq!(workers.len(), 3, "three distinct workers");
        // Fourth ask on same task: pool exhausted.
        let err = crowd.ask_one(&task).unwrap_err();
        assert_eq!(err, CrowdError::NoWorkerAvailable);
        // But a different task still works.
        let other = Task::binary(TaskId::new(1), "q2").with_truth(AnswerValue::Choice(0));
        assert!(crowd.ask_one(&other).is_ok());
    }

    #[test]
    fn budget_is_enforced_and_ledger_tracks_spend() {
        let pop = perfect_pop(10);
        let crowd = PlatformBuilder::new(pop).budget(Budget::new(2.0)).build();
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(0));
        assert!(crowd.ask_one(&task).is_ok());
        assert!(crowd.ask_one(&task).is_ok());
        let err = crowd.ask_one(&task).unwrap_err();
        assert!(matches!(err, CrowdError::BudgetExhausted { .. }));
        assert_eq!(crowd.ledger().entry("single_choice").unwrap().count, 2);
        assert_eq!(crowd.remaining_budget(), Some(0.0));
    }

    #[test]
    fn unlimited_budget_reports_none() {
        let crowd = SimulatedCrowd::new(perfect_pop(2), 0);
        assert_eq!(crowd.remaining_budget(), None);
    }

    #[test]
    fn clock_advances_with_latency() {
        let crowd = PlatformBuilder::new(perfect_pop(5))
            .latency(LatencyModel::Constant { secs: 10.0 })
            .build();
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(0));
        let a1 = crowd.ask_one(&task).unwrap();
        let a2 = crowd.ask_one(&task).unwrap();
        assert_eq!(a1.submitted_at, 10.0);
        assert_eq!(a2.submitted_at, 20.0);
        assert_eq!(crowd.now(), 20.0);
    }

    #[test]
    fn platform_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<(u64, AnswerValue)> {
            let pop = PopulationBuilder::new().reliable(20, 0.6, 0.9).build(3);
            let crowd = SimulatedCrowd::new(pop, seed);
            let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(1));
            crowd
                .ask_many(&task, 10)
                .unwrap()
                .into_iter()
                .map(|a| (a.worker.raw(), a.value))
                .collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn ask_many_partial_results_when_budget_dies_midway() {
        let crowd = PlatformBuilder::new(perfect_pop(10))
            .budget(Budget::new(3.0))
            .build();
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(0));
        let answers = crowd.ask_many(&task, 5).unwrap();
        assert_eq!(answers.len(), 3);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::population::PopulationBuilder;
    use crowdkit_core::answer::AnswerValue;
    use crowdkit_core::task::Task;

    fn pop(n: usize, quality: f64) -> Population {
        PopulationBuilder::new().reliable(n, quality, quality).build(0)
    }

    fn tasks(n: u64) -> Vec<Task> {
        (0..n)
            .map(|i| Task::binary(TaskId::new(i), "q").with_truth(AnswerValue::Choice(1)))
            .collect()
    }

    fn batch_of(tasks: &[Task], k: usize) -> Vec<AskRequest<'_>> {
        tasks
            .iter()
            .map(|t| AskRequest::new(t).with_redundancy(k))
            .collect()
    }

    #[test]
    fn batched_execution_overlaps_latency() {
        // Sequential: 12 answers × 10 s each = 120 s of simulated time.
        let seq = PlatformBuilder::new(pop(30, 1.0))
            .latency(LatencyModel::Constant { secs: 10.0 })
            .build();
        let ts = tasks(12);
        for t in &ts {
            seq.ask_one(t).unwrap();
        }
        assert_eq!(seq.now(), 120.0);

        // Batched: all 12 assignments start at the epoch and overlap, so
        // the clock advances by the makespan — one service time.
        let batched = PlatformBuilder::new(pop(30, 1.0))
            .latency(LatencyModel::Constant { secs: 10.0 })
            .build();
        let outs = batched.ask_batch(&batch_of(&ts, 1)).unwrap();
        assert!(outs.iter().all(|o| o.is_complete()));
        assert_eq!(batched.now(), 10.0);
        assert!(
            batched.now() * 2.0 <= seq.now(),
            "batched ({}) must be at least 2x faster than sequential ({})",
            batched.now(),
            seq.now()
        );
    }

    #[test]
    fn batch_results_are_identical_at_any_thread_count() {
        let run = |threads: usize| {
            let crowd = PlatformBuilder::new(pop(40, 0.7))
                .latency(LatencyModel::human_default())
                .seed(11)
                .threads(threads)
                .build();
            let ts = tasks(25);
            let outs = crowd.ask_batch(&batch_of(&ts, 5)).unwrap();
            let answers: Vec<(u64, u64, AnswerValue, f64)> = outs
                .iter()
                .flat_map(|o| o.answers.iter())
                .map(|a| (a.task.raw(), a.worker.raw(), a.value.clone(), a.submitted_at))
                .collect();
            (answers, crowd.now())
        };
        let (a1, c1) = run(1);
        let (a2, c2) = run(2);
        let (a8, c8) = run(8);
        assert_eq!(a1, a2, "1-thread and 2-thread runs diverge");
        assert_eq!(a1, a8, "1-thread and 8-thread runs diverge");
        assert_eq!(c1, c2);
        assert_eq!(c1, c8);
    }

    #[test]
    fn batch_budget_is_funded_in_request_order() {
        let crowd = PlatformBuilder::new(pop(10, 1.0))
            .budget(Budget::new(3.0))
            .build();
        let ts = tasks(3);
        let outs = crowd.ask_batch(&batch_of(&ts, 2)).unwrap();
        assert_eq!(outs[0].delivered(), 2);
        assert!(outs[0].is_complete());
        assert_eq!(outs[1].delivered(), 1);
        assert!(outs[1].stopped_by_budget());
        assert_eq!(outs[2].delivered(), 0);
        assert!(outs[2].stopped_by_budget());
        assert_eq!(crowd.budget().spent(), 3.0);
        assert_eq!(crowd.answers_delivered(), 3);
    }

    #[test]
    fn batch_honors_worker_exclusions() {
        let crowd = SimulatedCrowd::new(pop(4, 1.0), 2);
        let all: Vec<WorkerId> = crowd.population().workers().iter().map(|w| w.id).collect();
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(1));
        let req = AskRequest::new(&task)
            .with_redundancy(4)
            .without_worker(all[0])
            .without_worker(all[2]);
        let out = crowd.ask(&req).unwrap();
        assert_eq!(out.delivered(), 2, "only two non-excluded workers exist");
        assert!(matches!(out.shortfall, Some(CrowdError::NoWorkerAvailable)));
        for a in &out.answers {
            assert!(a.worker != all[0] && a.worker != all[2], "excluded worker assigned");
        }
    }

    #[test]
    fn batch_and_sequential_share_reservation_state() {
        let crowd = SimulatedCrowd::new(pop(3, 1.0), 5);
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(1));
        let first = crowd.ask_one(&task).unwrap();
        let out = crowd.ask(&AskRequest::new(&task).with_redundancy(3)).unwrap();
        assert_eq!(out.delivered(), 2, "only two workers left for this task");
        assert!(out.answers.iter().all(|a| a.worker != first.worker));
    }

    #[test]
    fn batch_prefers_online_workers_under_churn() {
        let churn = Churn {
            duty_cycle: 0.4,
            period: 600.0,
        };
        let crowd = PlatformBuilder::new(pop(30, 1.0)).churn(churn).seed(7).build();
        let ts = tasks(10);
        let outs = crowd.ask_batch(&batch_of(&ts, 2)).unwrap();
        for o in &outs {
            for a in &o.answers {
                // With 30 workers at 40% duty, someone is online at the
                // epoch for every pick, so nothing waits.
                assert!(
                    churn.online(a.worker, 7, 0.0),
                    "assigned worker {} offline at batch epoch",
                    a.worker
                );
            }
        }
    }

    #[test]
    fn batch_waits_for_arrival_when_everyone_is_offline() {
        let churn = Churn {
            duty_cycle: 0.05,
            period: 600.0,
        };
        // One worker with a tiny duty cycle: if the epoch falls outside the
        // online window the assignment must wait for the next arrival.
        let crowd = PlatformBuilder::new(pop(1, 1.0)).churn(churn).seed(3).build();
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(1));
        let out = crowd.ask(&AskRequest::new(&task)).unwrap();
        assert_eq!(out.delivered(), 1);
        let a = &out.answers[0];
        assert!(
            churn.online(a.worker, 3, a.submitted_at),
            "served at {} while offline",
            a.submitted_at
        );
    }

    #[test]
    fn concurrent_batches_never_overspend_budget() {
        use std::sync::Arc;
        let crowd = Arc::new(
            PlatformBuilder::new(pop(64, 1.0))
                .budget(Budget::new(100.0))
                .seed(13)
                .build(),
        );
        let delivered: u64 = std::thread::scope(|s| {
            (0..8u64)
                .map(|t| {
                    let crowd = Arc::clone(&crowd);
                    s.spawn(move || {
                        let ts: Vec<Task> = (0..10)
                            .map(|i| {
                                Task::binary(TaskId::new(t * 10 + i), "q")
                                    .with_truth(AnswerValue::Choice(1))
                            })
                            .collect();
                        let reqs: Vec<AskRequest<'_>> =
                            ts.iter().map(|x| AskRequest::new(x).with_redundancy(3)).collect();
                        let outs = crowd.ask_batch(&reqs).unwrap();
                        outs.iter().map(|o| o.delivered() as u64).sum::<u64>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(delivered, 100, "exactly the budget's worth was delivered");
        assert!(crowd.budget().spent() <= 100.0 + 1e-9);
        assert_eq!(crowd.answers_delivered(), 100);
    }
}

#[cfg(test)]
mod qualification_tests {
    use super::*;
    use crate::population::PopulationBuilder;
    use crowdkit_core::answer::AnswerValue;

    fn mixed_pop() -> Population {
        PopulationBuilder::new()
            .reliable(20, 0.95, 1.0)
            .spammers(20)
            .build(3)
    }

    #[test]
    fn qualification_filters_most_spammers() {
        let crowd = PlatformBuilder::new(mixed_pop())
            .qualification(Qualification {
                questions: 8,
                pass_fraction: 0.75,
                difficulty: 0.2,
            })
            .seed(3)
            .build();
        let qualities = crowd.population().true_qualities();
        let survivors = qualities.len();
        let good = qualities.iter().filter(|&&q| q > 0.9).count();
        assert!(survivors < 40, "screening rejected someone");
        assert!(
            good as f64 / survivors as f64 > 0.75,
            "pool is mostly reliable after screening: {good}/{survivors}"
        );
    }

    #[test]
    fn qualification_spends_budget_and_records_ledger() {
        let crowd = PlatformBuilder::new(mixed_pop())
            .qualification(Qualification {
                questions: 4,
                pass_fraction: 0.75,
                difficulty: 0.2,
            })
            .budget(Budget::new(1e6))
            .build();
        let entry = crowd.ledger().entry("qualification").unwrap();
        assert_eq!(entry.count, 40 * 4, "every worker screened with 4 questions");
        assert_eq!(crowd.budget().spent(), 160.0);
    }

    #[test]
    fn exhausted_budget_rejects_remaining_workers() {
        let crowd = PlatformBuilder::new(mixed_pop())
            .qualification(Qualification {
                questions: 4,
                pass_fraction: 0.5,
                difficulty: 0.2,
            })
            .budget(Budget::new(8.0)) // enough to screen two workers
            .build();
        assert!(crowd.population().len() <= 2);
    }

    #[test]
    fn screened_pool_answers_more_accurately() {
        let run = |screen: bool| -> f64 {
            let mut b = PlatformBuilder::new(mixed_pop()).seed(9);
            if screen {
                b = b.qualification(Qualification {
                    questions: 8,
                    pass_fraction: 0.75,
                    difficulty: 0.2,
                });
            }
            let crowd = b.build();
            let mut correct = 0;
            let total = 200;
            for i in 0..total {
                let task = Task::binary(TaskId::new(i), "q").with_truth(AnswerValue::Choice(1));
                if crowd.ask_one(&task).unwrap().value == AnswerValue::Choice(1) {
                    correct += 1;
                }
            }
            correct as f64 / total as f64
        };
        let unscreened = run(false);
        let screened = run(true);
        assert!(
            screened > unscreened + 0.1,
            "screened {screened:.2} vs unscreened {unscreened:.2}"
        );
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use crate::population::PopulationBuilder;
    use crowdkit_core::answer::AnswerValue;

    fn pop(n: usize) -> Population {
        PopulationBuilder::new().reliable(n, 1.0, 1.0).build(1)
    }

    fn crowd_with_churn(duty: f64, n: usize) -> SimulatedCrowd {
        PlatformBuilder::new(pop(n))
            .churn(Churn {
                duty_cycle: duty,
                period: 600.0,
            })
            .seed(4)
            .build()
    }

    #[test]
    fn full_duty_cycle_behaves_like_no_churn() {
        let a = crowd_with_churn(1.0, 10);
        let b = SimulatedCrowd::new(pop(10), 4);
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(1));
        let ra: Vec<u64> = a.ask_many(&task, 5).unwrap().iter().map(|x| x.worker.raw()).collect();
        let rb: Vec<u64> = b.ask_many(&task, 5).unwrap().iter().map(|x| x.worker.raw()).collect();
        assert_eq!(ra, rb, "duty 1.0 never filters or waits");
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn scarce_workers_make_the_platform_wait() {
        // One worker, tiny duty cycle: most asks must advance the clock to
        // the worker's next online window.
        let crowd = crowd_with_churn(0.05, 1);
        let mut last = 0.0;
        for t in 0..5u64 {
            let task = Task::binary(TaskId::new(t), "q").with_truth(AnswerValue::Choice(1));
            let a = crowd.ask_one(&task).unwrap();
            assert!(a.submitted_at >= last);
            last = a.submitted_at;
        }
        // With a 600 s period and 5% duty the clock cannot still be near 0
        // unless every ask happened inside one 30 s window — it advances
        // whenever the worker is offline. With zero service latency the
        // clock only moves by waiting, and the answers all landed inside
        // windows.
        assert!(crowd.now() >= 0.0);
        // Ask enough times across distinct tasks to be forced to wait at
        // least once past the first window.
        for t in 5..40u64 {
            let task = Task::binary(TaskId::new(t), "q").with_truth(AnswerValue::Choice(1));
            crowd.ask_one(&task).unwrap();
        }
        assert!(
            crowd.now() > 0.0,
            "a 5% duty cycle must eventually force waiting (clock {})",
            crowd.now()
        );
    }

    #[test]
    fn churn_never_serves_an_offline_worker() {
        let churn = Churn {
            duty_cycle: 0.3,
            period: 600.0,
        };
        let crowd = PlatformBuilder::new(pop(20)).churn(churn).seed(9).build();
        for t in 0..50u64 {
            let task = Task::binary(TaskId::new(t), "q").with_truth(AnswerValue::Choice(1));
            let before = crowd.now();
            let a = crowd.ask_one(&task).unwrap();
            // The serving time (clock right before the latency draw, which
            // is 0 here) must fall inside the worker's online window.
            assert!(
                churn.online(a.worker, 9, a.submitted_at),
                "worker {} served while offline at {} (asked at {before})",
                a.worker,
                a.submitted_at
            );
        }
    }

    #[test]
    fn lower_duty_cycles_cost_more_wall_clock() {
        // Non-zero service time pushes the clock through the online
        // windows, so scarce supply forces waits between answers.
        let elapsed = |duty: f64| -> f64 {
            let crowd = PlatformBuilder::new(pop(5))
                .churn(Churn {
                    duty_cycle: duty,
                    period: 600.0,
                })
                .latency(LatencyModel::Constant { secs: 20.0 })
                .seed(4)
                .build();
            for t in 0..60u64 {
                let task = Task::binary(TaskId::new(t), "q").with_truth(AnswerValue::Choice(1));
                crowd.ask_one(&task).unwrap();
            }
            crowd.now()
        };
        let busy = elapsed(0.9);
        let scarce = elapsed(0.1);
        assert!(
            scarce > busy,
            "10% duty ({scarce:.0}s) should take longer than 90% ({busy:.0}s)"
        );
    }

    #[test]
    fn exhausted_task_still_returns_no_worker() {
        let crowd = crowd_with_churn(0.5, 2);
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(1));
        assert!(crowd.ask_one(&task).is_ok());
        assert!(crowd.ask_one(&task).is_ok());
        assert_eq!(crowd.ask_one(&task).unwrap_err(), CrowdError::NoWorkerAvailable);
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn zero_duty_cycle_rejected() {
        let _ = PlatformBuilder::new(pop(1)).churn(Churn {
            duty_cycle: 0.0,
            period: 600.0,
        });
    }
}
