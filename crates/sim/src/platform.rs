//! The simulated crowdsourcing platform.
//!
//! [`SimulatedCrowd`] is the stand-in for Amazon Mechanical Turk: it owns a
//! worker [`Population`], a [`Budget`], a [`CostModel`] and a
//! [`LatencyModel`], and serves answers through the
//! [`CrowdOracle`] interface. Like a real platform it
//! never assigns the same worker to the same task twice, debits the budget
//! per answer, and timestamps answers on a simulated clock.

use std::collections::{HashMap, HashSet};

use crowdkit_core::answer::Answer;
use crowdkit_core::budget::{Budget, CostLedger, CostModel};
use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::ids::{TaskId, WorkerId};
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::latency::LatencyModel;
use crate::population::Population;

/// Builder for [`SimulatedCrowd`].
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    population: Population,
    budget: Budget,
    cost_model: CostModel,
    latency: LatencyModel,
    seed: u64,
    qualification: Option<Qualification>,
    churn: Option<Churn>,
}

/// Worker churn: workers are not always online. Each worker follows a
/// deterministic duty cycle (a per-worker phase offset over a shared
/// period); when no eligible worker is online, the platform *waits* —
/// advancing the simulated clock to the next arrival — before serving the
/// answer. This is the worker-supply component of crowd latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Churn {
    /// Fraction of time each worker is online, in `(0, 1]`.
    pub duty_cycle: f64,
    /// Length of one on/off cycle in simulated seconds.
    pub period: f64,
}

impl Churn {
    /// Deterministic phase offset of a worker within the period.
    fn phase(&self, worker: WorkerId, seed: u64) -> f64 {
        // Cheap splitmix-style hash → [0, 1).
        let mut x = worker.raw() ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        u * self.period
    }

    /// Whether the worker is online at simulated time `t`.
    fn online(&self, worker: WorkerId, seed: u64, t: f64) -> bool {
        let pos = (t + self.phase(worker, seed)).rem_euclid(self.period);
        pos < self.duty_cycle * self.period
    }

    /// The earliest time ≥ `t` at which the worker is online.
    fn next_online(&self, worker: WorkerId, seed: u64, t: f64) -> f64 {
        if self.online(worker, seed, t) {
            return t;
        }
        let pos = (t + self.phase(worker, seed)).rem_euclid(self.period);
        t + (self.period - pos)
    }
}

/// A qualification test gating entry to the worker pool: each worker
/// answers `questions` binary screening questions of the given difficulty;
/// only workers whose private score reaches `pass_fraction` may take real
/// tasks. Each administered question is paid at the platform's
/// single-choice price (qualification is not free — that is the trade-off
/// experiment E13 quantifies for gold injection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Qualification {
    /// Number of screening questions per worker.
    pub questions: u32,
    /// Minimum fraction answered correctly to pass (e.g. 0.7).
    pub pass_fraction: f64,
    /// Difficulty of the screening questions, in `[0, 1]`.
    pub difficulty: f64,
}

impl PlatformBuilder {
    /// Starts a builder over the given population with an unlimited budget,
    /// unit costs, constant zero latency, and seed 0.
    pub fn new(population: Population) -> Self {
        Self {
            population,
            budget: Budget::unlimited(),
            cost_model: CostModel::unit(),
            latency: LatencyModel::Constant { secs: 0.0 },
            seed: 0,
            qualification: None,
            churn: None,
        }
    }

    /// Enables worker churn; see [`Churn`].
    ///
    /// # Panics
    /// Panics if the duty cycle is not in `(0, 1]` or the period is not
    /// positive.
    pub fn churn(mut self, churn: Churn) -> Self {
        assert!(
            churn.duty_cycle > 0.0 && churn.duty_cycle <= 1.0,
            "duty cycle must be in (0, 1]"
        );
        assert!(churn.period > 0.0, "churn period must be positive");
        self.churn = Some(churn);
        self
    }

    /// Gates the pool behind a qualification test; see [`Qualification`].
    pub fn qualification(mut self, qualification: Qualification) -> Self {
        self.qualification = Some(qualification);
        self
    }

    /// Sets the budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the cost model.
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Sets the latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the RNG seed (answers, worker choice and latency draws are all
    /// deterministic functions of this seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finishes the build, administering the qualification test (if any)
    /// to every worker. Screening answers are paid from the budget and
    /// recorded in the ledger under `"qualification"`; if the budget dies
    /// mid-screening, the remaining workers are rejected unscreened.
    pub fn build(self) -> SimulatedCrowd {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut budget = self.budget;
        let mut ledger = CostLedger::new();
        let population = match self.qualification {
            None => self.population,
            Some(q) => {
                let screening = Task::binary(TaskId::new(u64::MAX), "qualification question")
                    .with_difficulty(q.difficulty)
                    .with_truth(crowdkit_core::answer::AnswerValue::Choice(1));
                let price = self.cost_model.price(&screening.kind);
                let passed: Vec<_> = self
                    .population
                    .workers()
                    .iter()
                    .filter(|w| {
                        let mut correct = 0u32;
                        for _ in 0..q.questions.max(1) {
                            if budget.debit(price).is_err() {
                                return false;
                            }
                            ledger.record("qualification", price);
                            if w.answer(&screening, &mut rng)
                                == crowdkit_core::answer::AnswerValue::Choice(1)
                            {
                                correct += 1;
                            }
                        }
                        correct as f64 / q.questions.max(1) as f64 >= q.pass_fraction
                    })
                    .cloned()
                    .collect();
                Population::from_profiles(passed)
            }
        };
        SimulatedCrowd {
            population,
            budget,
            cost_model: self.cost_model,
            latency: self.latency,
            rng,
            clock: 0.0,
            asked: HashMap::new(),
            ledger,
            delivered: 0,
            churn: self.churn,
            seed: self.seed,
        }
    }
}

/// The simulated platform; implements [`CrowdOracle`].
#[derive(Debug)]
pub struct SimulatedCrowd {
    population: Population,
    budget: Budget,
    cost_model: CostModel,
    latency: LatencyModel,
    rng: StdRng,
    clock: f64,
    /// Workers already assigned to each task (a worker answers a given task
    /// at most once, as on real platforms).
    asked: HashMap<TaskId, HashSet<WorkerId>>,
    ledger: CostLedger,
    delivered: u64,
    churn: Option<Churn>,
    seed: u64,
}

impl SimulatedCrowd {
    /// Convenience constructor with platform defaults; see
    /// [`PlatformBuilder::new`].
    pub fn new(population: Population, seed: u64) -> Self {
        PlatformBuilder::new(population).seed(seed).build()
    }

    /// The underlying population (e.g. to read true worker qualities when
    /// scoring an experiment).
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// The spend ledger, categorized by task kind.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Budget state.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Picks an eligible worker for `task` uniformly at random among those
    /// currently online (advancing the clock to the next arrival if nobody
    /// is), or `None` if every worker already answered it.
    fn pick_worker(&mut self, task: TaskId) -> Option<usize> {
        let asked = self.asked.entry(task).or_default();
        let eligible: Vec<usize> = self
            .population
            .workers()
            .iter()
            .enumerate()
            .filter(|(_, w)| !asked.contains(&w.id))
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let Some(churn) = self.churn else {
            return eligible.choose(&mut self.rng).copied();
        };
        let online: Vec<usize> = eligible
            .iter()
            .copied()
            .filter(|&i| churn.online(self.population.get(i).id, self.seed, self.clock))
            .collect();
        if let Some(&i) = online.choose(&mut self.rng) {
            return Some(i);
        }
        // Nobody online: wait for the earliest eligible arrival.
        let (next_i, next_t) = eligible
            .iter()
            .map(|&i| {
                (
                    i,
                    churn.next_online(self.population.get(i).id, self.seed, self.clock),
                )
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
            .expect("eligible is non-empty");
        self.clock = next_t;
        Some(next_i)
    }
}

impl CrowdOracle for SimulatedCrowd {
    fn ask_one(&mut self, task: &Task) -> Result<Answer> {
        let price = self.cost_model.price(&task.kind);
        if !self.budget.can_afford(price) {
            return Err(CrowdError::BudgetExhausted {
                requested: price,
                remaining: self.budget.remaining(),
            });
        }
        let widx = self.pick_worker(task.id).ok_or(CrowdError::NoWorkerAvailable)?;
        let worker = self.population.get(widx).clone();
        self.budget.debit(price)?;
        self.ledger.record(task.kind.name(), price);

        let value = worker.answer(task, &mut self.rng);
        let service = self.latency.sample(&mut self.rng);
        self.clock += service;
        self.asked.entry(task.id).or_default().insert(worker.id);
        self.delivered += 1;

        Ok(Answer {
            task: task.id,
            worker: worker.id,
            value,
            submitted_at: self.clock,
            cost: price,
        })
    }

    fn remaining_budget(&self) -> Option<f64> {
        if self.budget.limit() == f64::MAX {
            None
        } else {
            Some(self.budget.remaining())
        }
    }

    fn answers_delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationBuilder;
    use crowdkit_core::answer::AnswerValue;
    use crowdkit_core::task::Task;

    fn perfect_pop(n: usize) -> Population {
        PopulationBuilder::new().reliable(n, 1.0, 1.0).build(0)
    }

    #[test]
    fn ask_one_returns_correct_answer_from_perfect_worker() {
        let mut crowd = SimulatedCrowd::new(perfect_pop(5), 1);
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(1));
        let a = crowd.ask_one(&task).unwrap();
        assert_eq!(a.value, AnswerValue::Choice(1));
        assert_eq!(a.cost, 1.0);
        assert_eq!(crowd.answers_delivered(), 1);
    }

    #[test]
    fn same_worker_never_asked_twice_per_task() {
        let mut crowd = SimulatedCrowd::new(perfect_pop(3), 1);
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(0));
        let answers = crowd.ask_many(&task, 3).unwrap();
        let workers: HashSet<WorkerId> = answers.iter().map(|a| a.worker).collect();
        assert_eq!(workers.len(), 3, "three distinct workers");
        // Fourth ask on same task: pool exhausted.
        let err = crowd.ask_one(&task).unwrap_err();
        assert_eq!(err, CrowdError::NoWorkerAvailable);
        // But a different task still works.
        let other = Task::binary(TaskId::new(1), "q2").with_truth(AnswerValue::Choice(0));
        assert!(crowd.ask_one(&other).is_ok());
    }

    #[test]
    fn budget_is_enforced_and_ledger_tracks_spend() {
        let pop = perfect_pop(10);
        let mut crowd = PlatformBuilder::new(pop)
            .budget(Budget::new(2.0))
            .build();
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(0));
        assert!(crowd.ask_one(&task).is_ok());
        assert!(crowd.ask_one(&task).is_ok());
        let err = crowd.ask_one(&task).unwrap_err();
        assert!(matches!(err, CrowdError::BudgetExhausted { .. }));
        assert_eq!(crowd.ledger().entry("single_choice").unwrap().count, 2);
        assert_eq!(crowd.remaining_budget(), Some(0.0));
    }

    #[test]
    fn unlimited_budget_reports_none() {
        let crowd = SimulatedCrowd::new(perfect_pop(2), 0);
        assert_eq!(crowd.remaining_budget(), None);
    }

    #[test]
    fn clock_advances_with_latency() {
        let mut crowd = PlatformBuilder::new(perfect_pop(5))
            .latency(LatencyModel::Constant { secs: 10.0 })
            .build();
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(0));
        let a1 = crowd.ask_one(&task).unwrap();
        let a2 = crowd.ask_one(&task).unwrap();
        assert_eq!(a1.submitted_at, 10.0);
        assert_eq!(a2.submitted_at, 20.0);
        assert_eq!(crowd.now(), 20.0);
    }

    #[test]
    fn platform_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<(u64, AnswerValue)> {
            let pop = PopulationBuilder::new().reliable(20, 0.6, 0.9).build(3);
            let mut crowd = SimulatedCrowd::new(pop, seed);
            let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(1));
            crowd
                .ask_many(&task, 10)
                .unwrap()
                .into_iter()
                .map(|a| (a.worker.raw(), a.value))
                .collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn ask_many_partial_results_when_budget_dies_midway() {
        let mut crowd = PlatformBuilder::new(perfect_pop(10))
            .budget(Budget::new(3.0))
            .build();
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(0));
        let answers = crowd.ask_many(&task, 5).unwrap();
        assert_eq!(answers.len(), 3);
    }
}

#[cfg(test)]
mod qualification_tests {
    use super::*;
    use crate::population::PopulationBuilder;
    use crowdkit_core::answer::AnswerValue;

    fn mixed_pop() -> Population {
        PopulationBuilder::new()
            .reliable(20, 0.95, 1.0)
            .spammers(20)
            .build(3)
    }

    #[test]
    fn qualification_filters_most_spammers() {
        let crowd = PlatformBuilder::new(mixed_pop())
            .qualification(Qualification {
                questions: 8,
                pass_fraction: 0.75,
                difficulty: 0.2,
            })
            .seed(3)
            .build();
        let qualities = crowd.population().true_qualities();
        let survivors = qualities.len();
        let good = qualities.iter().filter(|&&q| q > 0.9).count();
        assert!(survivors < 40, "screening rejected someone");
        assert!(
            good as f64 / survivors as f64 > 0.75,
            "pool is mostly reliable after screening: {good}/{survivors}"
        );
    }

    #[test]
    fn qualification_spends_budget_and_records_ledger() {
        let crowd = PlatformBuilder::new(mixed_pop())
            .qualification(Qualification {
                questions: 4,
                pass_fraction: 0.75,
                difficulty: 0.2,
            })
            .budget(Budget::new(1e6))
            .build();
        let entry = crowd.ledger().entry("qualification").unwrap();
        assert_eq!(entry.count, 40 * 4, "every worker screened with 4 questions");
        assert_eq!(crowd.budget().spent(), 160.0);
    }

    #[test]
    fn exhausted_budget_rejects_remaining_workers() {
        let crowd = PlatformBuilder::new(mixed_pop())
            .qualification(Qualification {
                questions: 4,
                pass_fraction: 0.5,
                difficulty: 0.2,
            })
            .budget(Budget::new(8.0)) // enough to screen two workers
            .build();
        assert!(crowd.population().len() <= 2);
    }

    #[test]
    fn screened_pool_answers_more_accurately() {
        let run = |screen: bool| -> f64 {
            let mut b = PlatformBuilder::new(mixed_pop()).seed(9);
            if screen {
                b = b.qualification(Qualification {
                    questions: 8,
                    pass_fraction: 0.75,
                    difficulty: 0.2,
                });
            }
            let mut crowd = b.build();
            let mut correct = 0;
            let total = 200;
            for i in 0..total {
                let task = Task::binary(TaskId::new(i), "q").with_truth(AnswerValue::Choice(1));
                if crowd.ask_one(&task).unwrap().value == AnswerValue::Choice(1) {
                    correct += 1;
                }
            }
            correct as f64 / total as f64
        };
        let unscreened = run(false);
        let screened = run(true);
        assert!(
            screened > unscreened + 0.1,
            "screened {screened:.2} vs unscreened {unscreened:.2}"
        );
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use crate::population::PopulationBuilder;
    use crowdkit_core::answer::AnswerValue;

    fn pop(n: usize) -> Population {
        PopulationBuilder::new().reliable(n, 1.0, 1.0).build(1)
    }

    fn crowd_with_churn(duty: f64, n: usize) -> SimulatedCrowd {
        PlatformBuilder::new(pop(n))
            .churn(Churn {
                duty_cycle: duty,
                period: 600.0,
            })
            .seed(4)
            .build()
    }

    #[test]
    fn full_duty_cycle_behaves_like_no_churn() {
        let mut a = crowd_with_churn(1.0, 10);
        let mut b = SimulatedCrowd::new(pop(10), 4);
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(1));
        let ra: Vec<u64> = a.ask_many(&task, 5).unwrap().iter().map(|x| x.worker.raw()).collect();
        let rb: Vec<u64> = b.ask_many(&task, 5).unwrap().iter().map(|x| x.worker.raw()).collect();
        assert_eq!(ra, rb, "duty 1.0 never filters or waits");
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn scarce_workers_make_the_platform_wait() {
        // One worker, tiny duty cycle: most asks must advance the clock to
        // the worker's next online window.
        let mut crowd = crowd_with_churn(0.05, 1);
        let mut last = 0.0;
        for t in 0..5u64 {
            let task = Task::binary(TaskId::new(t), "q").with_truth(AnswerValue::Choice(1));
            let a = crowd.ask_one(&task).unwrap();
            assert!(a.submitted_at >= last);
            last = a.submitted_at;
        }
        // With a 600 s period and 5% duty the clock cannot still be near 0
        // unless every ask happened inside one 30 s window — it advances
        // whenever the worker is offline. With zero service latency the
        // clock only moves by waiting, and the answers all landed inside
        // windows.
        assert!(crowd.now() >= 0.0);
        // Ask enough times across distinct tasks to be forced to wait at
        // least once past the first window.
        for t in 5..40u64 {
            let task = Task::binary(TaskId::new(t), "q").with_truth(AnswerValue::Choice(1));
            crowd.ask_one(&task).unwrap();
        }
        assert!(
            crowd.now() > 0.0,
            "a 5% duty cycle must eventually force waiting (clock {})",
            crowd.now()
        );
    }

    #[test]
    fn churn_never_serves_an_offline_worker() {
        let churn = Churn {
            duty_cycle: 0.3,
            period: 600.0,
        };
        let mut crowd = PlatformBuilder::new(pop(20)).churn(churn).seed(9).build();
        for t in 0..50u64 {
            let task = Task::binary(TaskId::new(t), "q").with_truth(AnswerValue::Choice(1));
            let before = crowd.now();
            let a = crowd.ask_one(&task).unwrap();
            // The serving time (clock right before the latency draw, which
            // is 0 here) must fall inside the worker's online window.
            assert!(
                churn.online(a.worker, 9, a.submitted_at),
                "worker {} served while offline at {} (asked at {before})",
                a.worker,
                a.submitted_at
            );
        }
    }

    #[test]
    fn lower_duty_cycles_cost_more_wall_clock() {
        // Non-zero service time pushes the clock through the online
        // windows, so scarce supply forces waits between answers.
        let elapsed = |duty: f64| -> f64 {
            let mut crowd = PlatformBuilder::new(pop(5))
                .churn(Churn {
                    duty_cycle: duty,
                    period: 600.0,
                })
                .latency(LatencyModel::Constant { secs: 20.0 })
                .seed(4)
                .build();
            for t in 0..60u64 {
                let task = Task::binary(TaskId::new(t), "q").with_truth(AnswerValue::Choice(1));
                crowd.ask_one(&task).unwrap();
            }
            crowd.now()
        };
        let busy = elapsed(0.9);
        let scarce = elapsed(0.1);
        assert!(
            scarce > busy,
            "10% duty ({scarce:.0}s) should take longer than 90% ({busy:.0}s)"
        );
    }

    #[test]
    fn exhausted_task_still_returns_no_worker() {
        let mut crowd = crowd_with_churn(0.5, 2);
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(1));
        assert!(crowd.ask_one(&task).is_ok());
        assert!(crowd.ask_one(&task).is_ok());
        assert_eq!(crowd.ask_one(&task).unwrap_err(), CrowdError::NoWorkerAvailable);
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn zero_duty_cycle_rejected() {
        let _ = PlatformBuilder::new(pop(1)).churn(Churn {
            duty_cycle: 0.0,
            period: 600.0,
        });
    }
}
