//! Latency models and the round/straggler simulator.
//!
//! Latency control is the tutorial's third axis: crowd answers arrive in
//! minutes, not microseconds, and published systems fight it with round
//! organization, straggler re-issue, and retainer pools. This module
//! provides:
//!
//! * [`LatencyModel`] — per-answer service-time distributions.
//! * [`RoundSimulator`] — a discrete-event simulation of batched rounds
//!   with configurable straggler mitigation, which experiment E9 sweeps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::worker::gaussian;

/// Distribution of the time a worker takes to return one answer, seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Every answer takes exactly `secs` seconds (useful for tests).
    Constant {
        /// The fixed service time.
        secs: f64,
    },
    /// Exponential with the given mean — memoryless worker arrival.
    Exponential {
        /// Mean service time in seconds.
        mean: f64,
    },
    /// Log-normal: the empirical shape of human task latencies, with a long
    /// right tail of stragglers. `mu`/`sigma` are the parameters of the
    /// underlying normal.
    LogNormal {
        /// Location parameter of the underlying normal.
        mu: f64,
        /// Scale parameter of the underlying normal (σ > 0).
        sigma: f64,
    },
}

impl LatencyModel {
    /// The canonical "human micro-task" model: median ≈ 30 s with a heavy
    /// tail (lognormal μ=ln 30, σ=0.9).
    pub fn human_default() -> Self {
        LatencyModel::LogNormal {
            mu: 30.0f64.ln(),
            sigma: 0.9,
        }
    }

    /// Draws one service time.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match self {
            LatencyModel::Constant { secs } => *secs,
            LatencyModel::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -mean * u.ln()
            }
            LatencyModel::LogNormal { mu, sigma } => (mu + sigma * gaussian(rng)).exp(),
        }
    }

    /// The distribution's mean (exact, not sampled).
    pub fn mean(&self) -> f64 {
        match self {
            LatencyModel::Constant { secs } => *secs,
            LatencyModel::Exponential { mean } => *mean,
            LatencyModel::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
        }
    }
}

/// What to do about stragglers (answers still outstanding when most of a
/// round is done).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StragglerPolicy {
    /// Wait for every assignment to return.
    Wait,
    /// When `quantile` of the round's answers have returned, re-issue each
    /// outstanding assignment to a fresh worker and take whichever copy
    /// finishes first.
    Reissue {
        /// Completion quantile that triggers re-issue, e.g. `0.8`.
        quantile: f64,
    },
    /// Accept the round once `quantile` of answers returned, dropping
    /// stragglers entirely (the task gets fewer answers).
    Drop {
        /// Completion quantile that ends the round.
        quantile: f64,
    },
}

/// The outcome of simulating one batch of tasks through rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Total wall-clock seconds until the batch finished.
    pub total_time: f64,
    /// Number of rounds executed.
    pub rounds: usize,
    /// Total answers purchased, including duplicate re-issues.
    pub answers_bought: usize,
    /// Answers that were dropped (only under [`StragglerPolicy::Drop`]).
    pub answers_dropped: usize,
}

/// Simulates collecting `k` answers for each of `n_tasks` through rounds of
/// size `round_size` over a pool of `pool` parallel workers.
///
/// In each round, up to `round_size` task-assignments are issued; each
/// occupies a worker slot for a sampled service time. The round ends per
/// the straggler policy, and the next round starts. Wall-clock time is the
/// sum of round durations (rounds are sequential; assignments within a
/// round run in parallel subject to the worker-pool width).
#[derive(Debug, Clone)]
pub struct RoundSimulator {
    /// Latency distribution for a single answer.
    pub latency: LatencyModel,
    /// Concurrent worker slots available.
    pub pool: usize,
    /// Assignments issued per round.
    pub round_size: usize,
    /// Straggler handling.
    pub policy: StragglerPolicy,
}

impl RoundSimulator {
    /// Runs the simulation for `n_tasks` tasks × `k` answers each.
    ///
    /// # Panics
    /// Panics if `pool == 0` or `round_size == 0`.
    pub fn run(&self, n_tasks: usize, k: usize, seed: u64) -> RoundOutcome {
        assert!(self.pool > 0, "worker pool must be non-empty");
        assert!(self.round_size > 0, "round size must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let total_assignments = n_tasks * k;
        let mut remaining = total_assignments;
        let mut total_time = 0.0;
        let mut rounds = 0;
        let mut bought = 0;
        let mut dropped = 0;

        while remaining > 0 {
            rounds += 1;
            let batch = remaining.min(self.round_size);
            // Sample a service time per assignment; the round's parallel
            // makespan is computed by greedy multiprocessor scheduling over
            // `pool` slots (LPT is unnecessary: arrival order is arbitrary).
            let mut times: Vec<f64> = (0..batch).map(|_| self.latency.sample(&mut rng)).collect();
            bought += batch;

            let (round_time, finished) = match self.policy {
                StragglerPolicy::Wait => (makespan(&times, self.pool), batch),
                StragglerPolicy::Reissue { quantile } => {
                    let q = quantile.clamp(0.0, 1.0);
                    let cutoff_idx = ((batch as f64 * q).ceil() as usize).clamp(1, batch);
                    let mut sorted = times.clone();
                    sorted.sort_by(|a, b| a.total_cmp(b));
                    let cutoff = sorted[cutoff_idx - 1];
                    // Re-issue every assignment slower than the cutoff; the
                    // effective time of a re-issued assignment is
                    // cutoff + min(fresh draw, remaining original time).
                    let mut extra = 0usize;
                    for t in times.iter_mut() {
                        if *t > cutoff {
                            extra += 1;
                            let fresh = self.latency.sample(&mut rng);
                            *t = cutoff + fresh.min(*t - cutoff);
                        }
                    }
                    bought += extra;
                    (makespan(&times, self.pool), batch)
                }
                StragglerPolicy::Drop { quantile } => {
                    let q = quantile.clamp(0.0, 1.0);
                    let keep = ((batch as f64 * q).ceil() as usize).clamp(1, batch);
                    times.sort_by(|a, b| a.total_cmp(b));
                    dropped += batch - keep;
                    (makespan(&times[..keep], self.pool), batch)
                }
            };

            total_time += round_time;
            remaining -= finished;
        }

        RoundOutcome {
            total_time,
            rounds,
            answers_bought: bought,
            answers_dropped: dropped,
        }
    }
}

/// Parallel makespan of jobs with the given durations over `slots`
/// identical machines, list-scheduled in input order.
fn makespan(durations: &[f64], slots: usize) -> f64 {
    if durations.is_empty() {
        return 0.0;
    }
    let mut finish = vec![0.0f64; slots.min(durations.len())];
    for &d in durations {
        // Assign to the machine that frees up first.
        let (idx, _) = finish
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one slot"); // crowdkit-lint: allow(PANIC001) — durations checked non-empty above and the pool width is asserted > 0
        finish[idx] += d;
    }
    finish.iter().cloned().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_is_exact() {
        let m = LatencyModel::Constant { secs: 7.0 };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.sample(&mut rng), 7.0);
        assert_eq!(m.mean(), 7.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let m = LatencyModel::Exponential { mean: 10.0 };
        let mut rng = StdRng::seed_from_u64(0);
        let n = 50_000;
        let avg: f64 = (0..n).map(|_| m.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((avg - 10.0).abs() < 0.3, "empirical mean {avg}");
    }

    #[test]
    fn lognormal_is_positive_and_heavy_tailed() {
        let m = LatencyModel::human_default();
        let mut rng = StdRng::seed_from_u64(0);
        let xs: Vec<f64> = (0..20_000).map(|_| m.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[xs.len() / 2];
        assert!(mean > median, "heavy tail: mean {mean} > median {median}");
        assert!((median - 30.0).abs() < 3.0, "median {median} ≈ 30");
    }

    #[test]
    fn makespan_respects_parallelism() {
        // 4 unit jobs on 2 machines → 2.0; on 4 machines → 1.0.
        assert_eq!(makespan(&[1.0, 1.0, 1.0, 1.0], 2), 2.0);
        assert_eq!(makespan(&[1.0, 1.0, 1.0, 1.0], 4), 1.0);
        assert_eq!(makespan(&[], 3), 0.0);
        // One long job dominates.
        assert_eq!(makespan(&[5.0, 1.0, 1.0], 3), 5.0);
    }

    #[test]
    fn wait_policy_buys_exactly_n_times_k() {
        let sim = RoundSimulator {
            latency: LatencyModel::Constant { secs: 1.0 },
            pool: 10,
            round_size: 10,
            policy: StragglerPolicy::Wait,
        };
        let out = sim.run(10, 3, 0);
        assert_eq!(out.answers_bought, 30);
        assert_eq!(out.answers_dropped, 0);
        assert_eq!(out.rounds, 3);
        assert_eq!(out.total_time, 3.0);
    }

    #[test]
    fn reissue_reduces_makespan_under_heavy_tail() {
        let base = RoundSimulator {
            latency: LatencyModel::human_default(),
            pool: 50,
            round_size: 50,
            policy: StragglerPolicy::Wait,
        };
        let mitigated = RoundSimulator {
            policy: StragglerPolicy::Reissue { quantile: 0.8 },
            ..base.clone()
        };
        // Average over seeds to avoid flaky single draws.
        let avg = |s: &RoundSimulator| -> f64 {
            (0..20).map(|seed| s.run(100, 3, seed).total_time).sum::<f64>() / 20.0
        };
        let t_wait = avg(&base);
        let t_reissue = avg(&mitigated);
        assert!(
            t_reissue < t_wait,
            "re-issue ({t_reissue:.1}s) should beat waiting ({t_wait:.1}s)"
        );
    }

    #[test]
    fn reissue_buys_extra_answers() {
        let sim = RoundSimulator {
            latency: LatencyModel::human_default(),
            pool: 50,
            round_size: 50,
            policy: StragglerPolicy::Reissue { quantile: 0.8 },
        };
        let out = sim.run(100, 3, 1);
        assert!(out.answers_bought > 300, "bought {}", out.answers_bought);
    }

    #[test]
    fn drop_policy_records_dropped_answers() {
        let sim = RoundSimulator {
            latency: LatencyModel::human_default(),
            pool: 50,
            round_size: 100,
            policy: StragglerPolicy::Drop { quantile: 0.9 },
        };
        let out = sim.run(100, 3, 1);
        assert!(out.answers_dropped > 0);
        assert_eq!(out.answers_bought, 300);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let sim = RoundSimulator {
            latency: LatencyModel::human_default(),
            pool: 20,
            round_size: 40,
            policy: StragglerPolicy::Reissue { quantile: 0.75 },
        };
        assert_eq!(sim.run(50, 2, 9), sim.run(50, 2, 9));
    }

    #[test]
    fn smaller_rounds_cost_more_wall_clock() {
        // With a fixed pool, many small sequential rounds waste parallelism.
        let mk = |round_size| RoundSimulator {
            latency: LatencyModel::Exponential { mean: 10.0 },
            pool: 50,
            round_size,
            policy: StragglerPolicy::Wait,
        };
        let avg = |s: &RoundSimulator| -> f64 {
            (0..10).map(|seed| s.run(100, 3, seed).total_time).sum::<f64>() / 10.0
        };
        let small = avg(&mk(10));
        let large = avg(&mk(100));
        assert!(small > large, "round=10 ({small:.0}s) vs round=100 ({large:.0}s)");
    }
}
