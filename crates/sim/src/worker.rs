//! Worker answer-generation models.
//!
//! Each [`WorkerProfile`] pairs a [`WorkerModel`] with an id and generates
//! answers for tasks whose latent ground truth is attached to the task
//! (see `crowdkit_core::task` docs). The models are the ones the
//! truth-inference literature assumes:
//!
//! * [`WorkerModel::Reliable`] — the one-coin model: correct with a fixed
//!   probability `p`, otherwise a uniformly random wrong label.
//! * [`WorkerModel::Confusion`] — the Dawid–Skene model: a full
//!   per-worker confusion matrix.
//! * [`WorkerModel::Ability`] — the GLAD model: probability of a correct
//!   answer is `σ(ability · inverse_difficulty)`.
//! * [`WorkerModel::Spammer`] — answers uniformly at random, ignoring the
//!   task (label spammers are the dominant noise source on real platforms).
//! * [`WorkerModel::Adversarial`] — deliberately answers incorrectly with
//!   probability `p`.
//! * [`WorkerModel::Numeric`] — unbiased/biased Gaussian noise around the
//!   true value, for numeric estimation tasks.

use crowdkit_core::answer::AnswerValue;
use crowdkit_core::ids::WorkerId;
use crowdkit_core::task::{Task, TaskKind};
use rand::Rng;

/// The statistical behaviour of one worker.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerModel {
    /// One-coin worker: answers correctly with probability `accuracy`,
    /// otherwise picks uniformly among the wrong options.
    Reliable {
        /// Probability of a correct answer, in `[0, 1]`.
        accuracy: f64,
    },
    /// Dawid–Skene worker: `matrix[t][l]` is the probability of answering
    /// `l` when the true label is `t`. Rows must sum to 1.
    Confusion {
        /// Row-stochastic confusion matrix, `k × k`.
        matrix: Vec<Vec<f64>>,
    },
    /// GLAD worker: correct with probability
    /// `1 / (1 + exp(-ability · β(task)))` where
    /// `β(task) = exp(2 · (0.5 − difficulty))` is the task's inverse
    /// difficulty (β ≈ 2.7 for trivially easy tasks, ≈ 0.37 for very hard
    /// ones). Wrong answers are uniform among the wrong options.
    Ability {
        /// Worker ability; positive = better than chance on easy tasks,
        /// near zero = coin flips, negative = systematically wrong.
        ability: f64,
    },
    /// Spammer: uniform over all options regardless of truth.
    Spammer,
    /// Adversarial worker: answers *incorrectly* with probability
    /// `malice`, otherwise correctly.
    Adversarial {
        /// Probability of a deliberately wrong answer.
        malice: f64,
    },
    /// Numeric estimator: returns `truth · (1 + bias) + N(0, noise·range)`
    /// clamped to the task range. For non-numeric tasks falls back to
    /// one-coin behaviour with accuracy 0.8.
    Numeric {
        /// Multiplicative bias (0 = unbiased, 0.1 = overestimates by 10 %).
        bias: f64,
        /// Noise as a fraction of the task's value range.
        noise: f64,
    },
}

impl WorkerModel {
    /// The worker's marginal probability of answering a *binary* task of
    /// average difficulty correctly — the scalar "true quality" used when
    /// evaluating worker-quality estimation (experiment E2).
    pub fn true_quality(&self) -> f64 {
        match self {
            WorkerModel::Reliable { accuracy } => *accuracy,
            WorkerModel::Confusion { matrix } => {
                // Average of the diagonal: the expected accuracy under a
                // uniform prior over true labels.
                let k = matrix.len().max(1);
                matrix
                    .iter()
                    .enumerate()
                    .map(|(i, row)| row.get(i).copied().unwrap_or(0.0))
                    .sum::<f64>()
                    / k as f64
            }
            WorkerModel::Ability { ability } => sigmoid(*ability),
            WorkerModel::Spammer => 0.5,
            WorkerModel::Adversarial { malice } => 1.0 - malice,
            WorkerModel::Numeric { .. } => 0.8,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Inverse difficulty β for the GLAD model; see [`WorkerModel::Ability`].
fn inverse_difficulty(difficulty: f64) -> f64 {
    (2.0 * (0.5 - difficulty)).exp()
}

/// A worker: an id plus a behaviour model.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerProfile {
    /// The worker's id on the platform.
    pub id: WorkerId,
    /// How the worker answers.
    pub model: WorkerModel,
}

impl WorkerProfile {
    /// Creates a profile.
    pub fn new(id: WorkerId, model: WorkerModel) -> Self {
        Self { id, model }
    }

    /// Generates this worker's answer value for `task`.
    ///
    /// Tasks must carry their latent ground truth; the simulator cannot
    /// fabricate plausible noise around an unknown truth.
    ///
    /// # Panics
    /// Panics if the task has no ground truth, or the truth's type does not
    /// match the task kind (both indicate test/dataset construction bugs).
    pub fn answer<R: Rng>(&self, task: &Task, rng: &mut R) -> AnswerValue {
        let truth = task
            .truth
            .as_ref()
            .expect("simulated workers require tasks with ground truth"); // crowdkit-lint: allow(PANIC001) — documented contract: simulated tasks always carry ground truth
        match (&task.kind, truth) {
            (TaskKind::SingleChoice { labels }, AnswerValue::Choice(t)) => {
                AnswerValue::Choice(self.answer_choice(*t, labels.len() as u32, task.difficulty, rng))
            }
            (TaskKind::Pairwise { .. }, AnswerValue::Prefer(p)) => {
                // A pairwise comparison is a 2-option choice; reuse the
                // categorical machinery with truth index 0 = keep, 1 = flip.
                let keep = self.answer_choice(0, 2, task.difficulty, rng) == 0;
                AnswerValue::Prefer(if keep { *p } else { p.flip() })
            }
            (TaskKind::Numeric { min, max }, AnswerValue::Number(v)) => {
                AnswerValue::Number(self.answer_numeric(*v, *min, *max, rng))
            }
            (TaskKind::OpenText, AnswerValue::Text(t))
            | (TaskKind::Fill { .. }, AnswerValue::Text(t)) => {
                AnswerValue::Text(self.answer_text(t, task.difficulty, rng))
            }
            (TaskKind::Collection, AnswerValue::Items(pool)) => {
                AnswerValue::Items(self.answer_collection(pool, rng))
            }
            // crowdkit-lint: allow(PANIC001) — documented contract: a kind/truth mismatch is a dataset construction bug
            (kind, truth) => panic!(
                "task kind {} has incompatible ground truth {truth:?}",
                kind.name()
            ),
        }
    }

    /// Categorical answer: returns a label index in `0..k` given the true
    /// label `t`.
    fn answer_choice<R: Rng>(&self, t: u32, k: u32, difficulty: f64, rng: &mut R) -> u32 {
        debug_assert!(k >= 2, "choice tasks need at least 2 options");
        match &self.model {
            WorkerModel::Reliable { accuracy } => {
                coin_answer(t, k, *accuracy, rng)
            }
            WorkerModel::Confusion { matrix } => {
                let row = &matrix[t as usize];
                sample_categorical(row, rng) as u32
            }
            WorkerModel::Ability { ability } => {
                let p = sigmoid(ability * inverse_difficulty(difficulty));
                coin_answer(t, k, p, rng)
            }
            WorkerModel::Spammer => rng.gen_range(0..k),
            WorkerModel::Adversarial { malice } => {
                if rng.gen_bool(malice.clamp(0.0, 1.0)) {
                    wrong_label(t, k, rng)
                } else {
                    t
                }
            }
            WorkerModel::Numeric { .. } => coin_answer(t, k, 0.8, rng),
        }
    }

    fn answer_numeric<R: Rng>(&self, truth: f64, min: f64, max: f64, rng: &mut R) -> f64 {
        let range = (max - min).max(f64::EPSILON);
        let v = match &self.model {
            WorkerModel::Numeric { bias, noise } => {
                truth * (1.0 + bias) + gaussian(rng) * noise * range
            }
            WorkerModel::Spammer => min + rng.gen::<f64>() * range,
            WorkerModel::Adversarial { malice } => {
                // Pull the estimate toward the wrong end of the range.
                let wrong_end = if truth - min > max - truth { min } else { max };
                truth + (wrong_end - truth) * malice + gaussian(rng) * 0.02 * range
            }
            // Reliability p shrinks the noise: perfect workers (p=1) are
            // exact; coin-flippers (p=0.5) wander across half the range.
            WorkerModel::Reliable { accuracy } => {
                truth + gaussian(rng) * (1.0 - accuracy) * range
            }
            WorkerModel::Ability { ability } => {
                let p = sigmoid(*ability);
                truth + gaussian(rng) * (1.0 - p) * range
            }
            WorkerModel::Confusion { .. } => truth + gaussian(rng) * 0.05 * range,
        };
        v.clamp(min, max)
    }

    fn answer_text<R: Rng>(&self, truth: &str, difficulty: f64, rng: &mut R) -> String {
        let p_correct = match &self.model {
            WorkerModel::Reliable { accuracy } => *accuracy,
            WorkerModel::Ability { ability } => sigmoid(ability * inverse_difficulty(difficulty)),
            WorkerModel::Spammer => 0.0,
            WorkerModel::Adversarial { malice } => 1.0 - malice,
            _ => 0.8,
        };
        if rng.gen_bool(p_correct.clamp(0.0, 1.0)) {
            truth.to_owned()
        } else {
            corrupt_text(truth, rng)
        }
    }

    /// Contributes up to 5 items sampled (without replacement per answer)
    /// from the latent pool with a head-heavy (Zipf-like) distribution —
    /// modelling that workers name common items first.
    fn answer_collection<R: Rng>(&self, pool: &[String], rng: &mut R) -> Vec<String> {
        if pool.is_empty() {
            return Vec::new();
        }
        let batch = rng.gen_range(1..=5usize.min(pool.len()));
        let skew = match &self.model {
            // Spammers contribute noise items not in the pool at all.
            WorkerModel::Spammer => {
                return (0..batch).map(|i| format!("junk-{}", rng.gen_range(0..1000) + i)).collect();
            }
            WorkerModel::Reliable { accuracy } => 2.0 - accuracy, // better workers dig deeper
            _ => 1.5,
        };
        let mut chosen = Vec::with_capacity(batch);
        let mut guard = 0;
        while chosen.len() < batch && guard < 100 {
            guard += 1;
            let idx = zipf_index(pool.len(), skew, rng);
            let item = &pool[idx];
            if !chosen.contains(item) {
                chosen.push(item.clone());
            }
        }
        chosen
    }
}

/// One-coin categorical answer: true label with probability `p`, otherwise
/// uniform among the `k − 1` wrong labels.
fn coin_answer<R: Rng>(t: u32, k: u32, p: f64, rng: &mut R) -> u32 {
    if rng.gen_bool(p.clamp(0.0, 1.0)) {
        t
    } else {
        wrong_label(t, k, rng)
    }
}

/// A uniformly random label different from `t`.
fn wrong_label<R: Rng>(t: u32, k: u32, rng: &mut R) -> u32 {
    let w = rng.gen_range(0..k - 1);
    if w >= t {
        w + 1
    } else {
        w
    }
}

/// Samples an index from an (unnormalized) discrete distribution.
fn sample_categorical<R: Rng>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "confusion-matrix row must have positive mass");
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Standard normal via Box–Muller (the `rand` crate alone ships no normal
/// distribution; `rand_distr` is outside the sanctioned dependency set).
pub(crate) fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples an index in `0..n` with probability ∝ `1 / (i+1)^s`.
pub(crate) fn zipf_index<R: Rng>(n: usize, s: f64, rng: &mut R) -> usize {
    debug_assert!(n > 0);
    // For the small n used in collection pools a linear scan is fine.
    let total: f64 = (1..=n).map(|i| (i as f64).powf(-s)).sum();
    let mut x = rng.gen::<f64>() * total;
    for i in 1..=n {
        x -= (i as f64).powf(-s);
        if x <= 0.0 {
            return i - 1;
        }
    }
    n - 1
}

/// Introduces a small typo into `text`: swap, drop, or duplicate one
/// character (or append one for empty/1-char strings). Used for open-text
/// noise and entity-resolution dataset generation.
pub(crate) fn corrupt_text<R: Rng>(text: &str, rng: &mut R) -> String {
    let chars: Vec<char> = text.chars().collect();
    if chars.len() < 2 {
        return format!("{text}x");
    }
    let i = rng.gen_range(0..chars.len() - 1);
    let mut out = chars.clone();
    match rng.gen_range(0..3u8) {
        0 => out.swap(i, i + 1),
        1 => {
            out.remove(i);
        }
        _ => out.insert(i, chars[i]),
    }
    let s: String = out.into_iter().collect();
    if s == text {
        format!("{s}x")
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::answer::Preference;
    use crowdkit_core::ids::{ItemId, TaskId};
    use crowdkit_core::task::Task;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn binary_task(truth: u32) -> Task {
        Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(truth))
    }

    /// Empirical accuracy of a profile over n trials of a binary task.
    fn empirical_accuracy(model: WorkerModel, truth: u32, difficulty: f64, n: usize) -> f64 {
        let profile = WorkerProfile::new(WorkerId::new(0), model);
        let task = binary_task(truth).with_difficulty(difficulty);
        let mut r = rng();
        let mut correct = 0;
        for _ in 0..n {
            if profile.answer(&task, &mut r) == AnswerValue::Choice(truth) {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    }

    #[test]
    fn reliable_worker_matches_nominal_accuracy() {
        let acc = empirical_accuracy(WorkerModel::Reliable { accuracy: 0.8 }, 1, 0.5, 20_000);
        assert!((acc - 0.8).abs() < 0.02, "empirical {acc} vs nominal 0.8");
    }

    #[test]
    fn spammer_is_at_chance() {
        let acc = empirical_accuracy(WorkerModel::Spammer, 0, 0.5, 20_000);
        assert!((acc - 0.5).abs() < 0.02, "empirical {acc} vs chance 0.5");
    }

    #[test]
    fn adversarial_worker_is_below_chance() {
        let acc = empirical_accuracy(WorkerModel::Adversarial { malice: 0.9 }, 1, 0.5, 20_000);
        assert!((acc - 0.1).abs() < 0.02, "empirical {acc} vs nominal 0.1");
    }

    #[test]
    fn ability_worker_degrades_with_difficulty() {
        let easy = empirical_accuracy(WorkerModel::Ability { ability: 2.0 }, 1, 0.1, 20_000);
        let hard = empirical_accuracy(WorkerModel::Ability { ability: 2.0 }, 1, 0.9, 20_000);
        assert!(
            easy > hard + 0.1,
            "easy tasks ({easy}) should be answered much better than hard ones ({hard})"
        );
    }

    #[test]
    fn confusion_matrix_worker_follows_rows() {
        // Worker always says label 1 whatever the truth.
        let model = WorkerModel::Confusion {
            matrix: vec![vec![0.0, 1.0], vec![0.0, 1.0]],
        };
        let profile = WorkerProfile::new(WorkerId::new(0), model);
        let mut r = rng();
        for truth in 0..2u32 {
            let task = binary_task(truth);
            for _ in 0..100 {
                assert_eq!(profile.answer(&task, &mut r), AnswerValue::Choice(1));
            }
        }
    }

    #[test]
    fn numeric_worker_stays_in_range_and_near_truth() {
        let profile = WorkerProfile::new(
            WorkerId::new(0),
            WorkerModel::Numeric {
                bias: 0.0,
                noise: 0.05,
            },
        );
        let task = Task::new(
            TaskId::new(0),
            TaskKind::Numeric { min: 0.0, max: 100.0 },
            "how many",
        )
        .with_truth(AnswerValue::Number(40.0));
        let mut r = rng();
        let mut sum = 0.0;
        for _ in 0..5_000 {
            let v = profile.answer(&task, &mut r).as_number().unwrap();
            assert!((0.0..=100.0).contains(&v));
            sum += v;
        }
        let mean = sum / 5_000.0;
        assert!((mean - 40.0).abs() < 1.0, "unbiased worker mean {mean} ≈ 40");
    }

    #[test]
    fn pairwise_answers_flip_with_error() {
        let profile = WorkerProfile::new(WorkerId::new(0), WorkerModel::Reliable { accuracy: 1.0 });
        let task = Task::pairwise(TaskId::new(0), ItemId::new(0), ItemId::new(1))
            .with_truth(AnswerValue::Prefer(Preference::Left));
        let mut r = rng();
        assert_eq!(
            profile.answer(&task, &mut r),
            AnswerValue::Prefer(Preference::Left)
        );
        let bad = WorkerProfile::new(WorkerId::new(1), WorkerModel::Adversarial { malice: 1.0 });
        assert_eq!(
            bad.answer(&task, &mut r),
            AnswerValue::Prefer(Preference::Right)
        );
    }

    #[test]
    fn text_worker_corrupts_when_wrong() {
        let profile = WorkerProfile::new(WorkerId::new(0), WorkerModel::Reliable { accuracy: 0.0 });
        let task = Task::new(TaskId::new(0), TaskKind::OpenText, "capital of France?")
            .with_truth(AnswerValue::Text("Paris".into()));
        let mut r = rng();
        let v = profile.answer(&task, &mut r);
        let text = v.as_text().unwrap();
        assert_ne!(text, "Paris", "always-wrong worker must not return truth");
    }

    #[test]
    fn collection_worker_draws_from_pool() {
        let pool: Vec<String> = (0..20).map(|i| format!("item{i}")).collect();
        let profile = WorkerProfile::new(WorkerId::new(0), WorkerModel::Reliable { accuracy: 0.9 });
        let task = Task::new(TaskId::new(0), TaskKind::Collection, "name items")
            .with_truth(AnswerValue::Items(pool.clone()));
        let mut r = rng();
        for _ in 0..50 {
            let items = profile.answer(&task, &mut r);
            let items = items.as_items().unwrap();
            assert!(!items.is_empty() && items.len() <= 5);
            for it in items {
                assert!(pool.contains(it));
            }
        }
    }

    #[test]
    fn spammer_collection_answers_are_junk() {
        let pool: Vec<String> = (0..5).map(|i| format!("item{i}")).collect();
        let profile = WorkerProfile::new(WorkerId::new(0), WorkerModel::Spammer);
        let task = Task::new(TaskId::new(0), TaskKind::Collection, "name items")
            .with_truth(AnswerValue::Items(pool.clone()));
        let mut r = rng();
        let items = profile.answer(&task, &mut r);
        for it in items.as_items().unwrap() {
            assert!(!pool.contains(it));
        }
    }

    #[test]
    fn true_quality_reflects_models() {
        assert_eq!(WorkerModel::Reliable { accuracy: 0.7 }.true_quality(), 0.7);
        assert_eq!(WorkerModel::Spammer.true_quality(), 0.5);
        assert!((WorkerModel::Adversarial { malice: 0.8 }.true_quality() - 0.2).abs() < 1e-12);
        let cm = WorkerModel::Confusion {
            matrix: vec![vec![0.9, 0.1], vec![0.3, 0.7]],
        };
        assert!((cm.true_quality() - 0.8).abs() < 1e-12);
        assert!(WorkerModel::Ability { ability: 2.0 }.true_quality() > 0.8);
    }

    #[test]
    fn gaussian_has_roughly_standard_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| gaussian(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut r = rng();
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf_index(10, 1.5, &mut r)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "head {} tail {}", counts[0], counts[9]);
    }

    #[test]
    fn corrupt_text_always_differs() {
        let mut r = rng();
        for s in ["Paris", "ab", "a", ""] {
            for _ in 0..50 {
                assert_ne!(corrupt_text(s, &mut r), s);
            }
        }
    }
}
