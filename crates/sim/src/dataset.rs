//! Synthetic ground-truth dataset generators.
//!
//! Published crowdsourcing evaluations use proprietary datasets (product
//! pairs, image labels, tweet collections). These generators are the
//! substitution: they produce datasets with *controlled* ground truth and
//! the same statistical knobs the published results depend on — label
//! skew, task difficulty spread, entity-cluster sizes with typo noise,
//! latent total orders, and Zipf-distributed open worlds.

use crowdkit_core::answer::{AnswerValue, Preference};
use crowdkit_core::ids::{IdGen, ItemId, TaskId};
use crowdkit_core::label::LabelSpace;
use crowdkit_core::task::{Task, TaskKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::worker::corrupt_text;

// ---------------------------------------------------------------------------
// Labeling datasets (experiments E1, E2, E5, E8)
// ---------------------------------------------------------------------------

/// A batch of classification tasks with known truth.
#[derive(Debug, Clone)]
pub struct LabelingDataset {
    /// The tasks, with ground truth attached.
    pub tasks: Vec<Task>,
    /// The true label per task (aligned with `tasks`).
    pub truths: Vec<u32>,
    /// The shared label space.
    pub labels: LabelSpace,
}

impl LabelingDataset {
    /// Generates `n` single-choice tasks over `k` labels.
    ///
    /// * True labels are drawn from a categorical distribution with the
    ///   first label carrying `skew` of the mass and the rest uniform
    ///   (`skew = 1/k` → uniform labels).
    /// * Difficulties are drawn uniformly from `difficulty`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `k < 2`.
    pub fn generate(n: usize, k: usize, skew: f64, difficulty: (f64, f64), seed: u64) -> Self {
        assert!(n > 0, "need at least one task");
        assert!(k >= 2, "need at least two labels");
        let mut rng = StdRng::seed_from_u64(seed);
        let labels = LabelSpace::anonymous(k);
        let mut ids = IdGen::new();
        let mut tasks = Vec::with_capacity(n);
        let mut truths = Vec::with_capacity(n);
        let rest = ((1.0 - skew) / (k - 1) as f64).max(0.0);
        for i in 0..n {
            let u: f64 = rng.gen();
            let truth = if u < skew {
                0u32
            } else {
                let mut x = u - skew;
                let mut lbl = 1u32;
                while lbl < (k - 1) as u32 && x >= rest {
                    x -= rest;
                    lbl += 1;
                }
                lbl
            };
            let (dlo, dhi) = difficulty;
            let d = if (dhi - dlo).abs() < f64::EPSILON {
                dlo
            } else {
                rng.gen_range(dlo.min(dhi)..=dlo.max(dhi))
            };
            let task = Task::new(
                ids.next_task(),
                TaskKind::SingleChoice {
                    labels: labels.clone(),
                },
                format!("classify item #{i}"),
            )
            .with_difficulty(d)
            .with_truth(AnswerValue::Choice(truth));
            tasks.push(task);
            truths.push(truth);
        }
        Self {
            tasks,
            truths,
            labels,
        }
    }

    /// Uniform-label binary dataset with mid-range difficulty — the default
    /// workload of the truth-inference experiments.
    pub fn binary(n: usize, seed: u64) -> Self {
        Self::generate(n, 2, 0.5, (0.3, 0.7), seed)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the dataset has no tasks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Entity-resolution datasets (experiments E3, E12)
// ---------------------------------------------------------------------------

/// One record in an entity-resolution dataset: a dirty textual description
/// of some underlying entity.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityRecord {
    /// The record's id.
    pub id: ItemId,
    /// The latent entity this record refers to (ground truth).
    pub entity: usize,
    /// The record's dirty text.
    pub text: String,
}

/// A dataset of records referring to duplicated entities.
#[derive(Debug, Clone)]
pub struct EntityDataset {
    /// All records.
    pub records: Vec<EntityRecord>,
    /// Number of distinct latent entities.
    pub num_entities: usize,
}

impl EntityDataset {
    /// Generates records over `num_entities` entities; each entity gets
    /// `1..=max_dups` records. Each record is the entity's canonical name
    /// with `typos` independent corruption passes applied.
    ///
    /// Canonical names are multi-token ("brand-{e} model-{e} v{e%7}") so
    /// token-based blocking behaves like it does on product data.
    ///
    /// # Panics
    /// Panics if `num_entities == 0` or `max_dups == 0`.
    pub fn generate(num_entities: usize, max_dups: usize, typos: usize, seed: u64) -> Self {
        assert!(num_entities > 0, "need at least one entity");
        assert!(max_dups > 0, "need at least one record per entity");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids = IdGen::new();
        let mut records = Vec::new();
        for e in 0..num_entities {
            let canonical = format!("brand{} model{} v{}", e % 17, e, e % 7);
            let dups = rng.gen_range(1..=max_dups);
            for _ in 0..dups {
                let mut text = canonical.clone();
                for _ in 0..typos {
                    if rng.gen_bool(0.5) {
                        text = corrupt_text(&text, &mut rng);
                    }
                }
                records.push(EntityRecord {
                    id: ids.next_item(),
                    entity: e,
                    text,
                });
            }
        }
        Self {
            records,
            num_entities,
        }
    }

    /// Ground-truth cluster id per record, aligned with `records`.
    pub fn truth_clusters(&self) -> Vec<usize> {
        self.records.iter().map(|r| r.entity).collect()
    }

    /// Whether two record indices refer to the same entity.
    pub fn same_entity(&self, a: usize, b: usize) -> bool {
        self.records[a].entity == self.records[b].entity
    }
}

// ---------------------------------------------------------------------------
// Ranking datasets (experiment E4)
// ---------------------------------------------------------------------------

/// Items with a latent total order, for sort/top-k experiments.
#[derive(Debug, Clone)]
pub struct RankingDataset {
    /// Item ids `0..n`.
    pub items: Vec<ItemId>,
    /// Latent score per item (higher = ranks higher); aligned with `items`.
    pub scores: Vec<f64>,
}

impl RankingDataset {
    /// Generates `n` items with distinct latent scores drawn uniformly from
    /// `(0, 1)` (ties broken by construction: scores are strictly ordered
    /// after adding a small per-index offset).
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn generate(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "ranking needs at least two items");
        let mut rng = StdRng::seed_from_u64(seed);
        let items: Vec<ItemId> = (0..n as u64).map(ItemId::new).collect();
        let scores: Vec<f64> = (0..n)
            .map(|i| rng.gen::<f64>() + i as f64 * 1e-12)
            .collect();
        Self { items, scores }
    }

    /// Builds the pairwise comparison task between items at indices `a` and
    /// `b`, with ground truth derived from the latent scores and difficulty
    /// derived from the score gap (close scores = hard comparisons).
    pub fn comparison_task(&self, task_id: TaskId, a: usize, b: usize) -> Task {
        let truth = if self.scores[a] > self.scores[b] {
            Preference::Left
        } else {
            Preference::Right
        };
        let gap = (self.scores[a] - self.scores[b]).abs();
        // Gap 0 → difficulty 0.95 (near coin-flip); gap 1 → difficulty 0.05.
        let difficulty = (0.95 - 0.9 * gap.min(1.0)).clamp(0.0, 1.0);
        Task::pairwise(task_id, self.items[a], self.items[b])
            .with_difficulty(difficulty)
            .with_truth(AnswerValue::Prefer(truth))
    }

    /// The true ranking as positions: `position[i]` = rank of item `i`
    /// (0 = best).
    pub fn true_positions(&self) -> Vec<usize> {
        let n = self.items.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&x, &y| self.scores[y].total_cmp(&self.scores[x]));
        let mut pos = vec![0usize; n];
        for (rank, &item) in order.iter().enumerate() {
            pos[item] = rank;
        }
        pos
    }

    /// Index of the true maximum item.
    pub fn true_max(&self) -> usize {
        self.scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty by construction") // crowdkit-lint: allow(PANIC001) — constructor asserts n >= 2, so scores is never empty
    }
}

// ---------------------------------------------------------------------------
// Open-world collection pools (experiment E7)
// ---------------------------------------------------------------------------

/// A latent open world of distinct items for enumeration experiments.
#[derive(Debug, Clone)]
pub struct CollectionPool {
    /// The full latent pool (the "species" in species-estimation terms).
    pub items: Vec<String>,
}

impl CollectionPool {
    /// Generates a pool of `n` distinct items.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn generate(n: usize, _seed: u64) -> Self {
        assert!(n > 0, "pool must be non-empty");
        Self {
            items: (0..n).map(|i| format!("species-{i:04}")).collect(),
        }
    }

    /// The collection task whose latent truth is this pool. Workers sample
    /// head-heavily from the pool (see `WorkerProfile::answer`), so rare
    /// items take many answers to surface — exactly the regime species
    /// estimators are built for.
    pub fn task(&self, id: TaskId) -> Task {
        Task::new(id, TaskKind::Collection, "enumerate the items")
            .with_truth(AnswerValue::Items(self.items.clone()))
    }

    /// True species richness.
    pub fn richness(&self) -> usize {
        self.items.len()
    }
}

// ---------------------------------------------------------------------------
// Numeric estimation datasets (experiment E6)
// ---------------------------------------------------------------------------

/// A population of binary ground-truth facts for sampling-based COUNT
/// estimation ("how many of these 10 000 photos contain a dog?").
#[derive(Debug, Clone)]
pub struct CountingDataset {
    /// Per-item boolean ground truth.
    pub flags: Vec<bool>,
    /// Tasks asking the crowd to verify individual items (binary label:
    /// 1 = positive).
    pub tasks: Vec<Task>,
}

impl CountingDataset {
    /// Generates `n` items, each positive with probability `prevalence`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `prevalence` is outside `[0, 1]`.
    pub fn generate(n: usize, prevalence: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!((0.0..=1.0).contains(&prevalence), "prevalence must be a probability");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids = IdGen::new();
        let mut flags = Vec::with_capacity(n);
        let mut tasks = Vec::with_capacity(n);
        for i in 0..n {
            let positive = rng.gen_bool(prevalence);
            flags.push(positive);
            tasks.push(
                Task::binary(ids.next_task(), format!("does item #{i} qualify?"))
                    .with_truth(AnswerValue::Choice(positive as u32)),
            );
        }
        Self { flags, tasks }
    }

    /// The true count of positive items.
    pub fn true_count(&self) -> usize {
        self.flags.iter().filter(|&&f| f).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeling_dataset_has_valid_truths_and_difficulties() {
        let d = LabelingDataset::generate(200, 4, 0.25, (0.2, 0.8), 1);
        assert_eq!(d.len(), 200);
        for (task, &truth) in d.tasks.iter().zip(&d.truths) {
            assert!(truth < 4);
            assert!((0.2..=0.8).contains(&task.difficulty));
            assert_eq!(task.truth, Some(AnswerValue::Choice(truth)));
        }
    }

    #[test]
    fn labeling_skew_shifts_mass_to_first_label() {
        let d = LabelingDataset::generate(5_000, 3, 0.8, (0.5, 0.5), 2);
        let zero = d.truths.iter().filter(|&&t| t == 0).count() as f64 / 5_000.0;
        assert!((zero - 0.8).abs() < 0.03, "label-0 share {zero}");
    }

    #[test]
    fn labeling_dataset_deterministic_per_seed() {
        let a = LabelingDataset::binary(100, 9);
        let b = LabelingDataset::binary(100, 9);
        assert_eq!(a.truths, b.truths);
    }

    #[test]
    fn entity_dataset_clusters_and_noise() {
        let d = EntityDataset::generate(50, 4, 2, 3);
        assert!(d.records.len() >= 50);
        assert_eq!(d.num_entities, 50);
        // Ids are dense and unique.
        for (i, r) in d.records.iter().enumerate() {
            assert_eq!(r.id.index(), i);
        }
        // Every entity referenced at least once.
        let mut seen = [false; 50];
        for r in &d.records {
            seen[r.entity] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(d.truth_clusters().len(), d.records.len());
    }

    #[test]
    fn entity_same_entity_agrees_with_truth() {
        let d = EntityDataset::generate(10, 3, 1, 4);
        for i in 0..d.records.len() {
            for j in 0..d.records.len() {
                assert_eq!(
                    d.same_entity(i, j),
                    d.records[i].entity == d.records[j].entity
                );
            }
        }
    }

    #[test]
    fn ranking_dataset_positions_invert_scores() {
        let d = RankingDataset::generate(20, 5);
        let pos = d.true_positions();
        // The best item has position 0 and the max score.
        let best = pos.iter().position(|&p| p == 0).unwrap();
        assert_eq!(best, d.true_max());
        // Positions are a permutation.
        let mut sorted = pos.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn comparison_task_truth_and_difficulty() {
        let d = RankingDataset {
            items: vec![ItemId::new(0), ItemId::new(1)],
            scores: vec![0.9, 0.1],
        };
        let t = d.comparison_task(TaskId::new(0), 0, 1);
        assert_eq!(t.truth, Some(AnswerValue::Prefer(Preference::Left)));
        // Gap 0.8 → difficulty 0.95 − 0.72 = 0.23.
        assert!((t.difficulty - 0.23).abs() < 1e-9);
        let t2 = d.comparison_task(TaskId::new(1), 1, 0);
        assert_eq!(t2.truth, Some(AnswerValue::Prefer(Preference::Right)));
    }

    #[test]
    fn collection_pool_task_carries_full_pool() {
        let p = CollectionPool::generate(30, 0);
        assert_eq!(p.richness(), 30);
        let t = p.task(TaskId::new(0));
        assert_eq!(t.truth.as_ref().unwrap().as_items().unwrap().len(), 30);
    }

    #[test]
    fn counting_dataset_prevalence_matches() {
        let d = CountingDataset::generate(10_000, 0.3, 7);
        let frac = d.true_count() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "prevalence {frac}");
        // Tasks' truths agree with flags.
        for (task, &flag) in d.tasks.iter().zip(&d.flags) {
            assert_eq!(task.truth, Some(AnswerValue::Choice(flag as u32)));
        }
    }
}
