//! Property-based tests for the concurrent batch engine: thread-count
//! invariance of end-to-end inference, and budget safety when batches are
//! submitted from several OS threads at once.

use crowdkit_core::ask::AskRequest;
use crowdkit_core::budget::Budget;
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::{PlatformBuilder, SimulatedCrowd};
use crowdkit_truth::mv::MajorityVote;
use crowdkit_truth::pipeline::label_tasks;
use proptest::prelude::*;

fn crowd(seed: u64, n_workers: usize, threads: usize) -> SimulatedCrowd {
    let pop = PopulationBuilder::new()
        .reliable(n_workers, 0.6, 0.95)
        .build(seed);
    PlatformBuilder::new(pop).seed(seed).threads(threads).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The worker-pool size never leaks into results: running the same
    /// labeling pipeline on the same seed must produce byte-identical
    /// inference output whether the platform executes batches on 1, 2 or
    /// 8 threads.
    #[test]
    fn inference_results_are_identical_at_1_2_and_8_threads(
        seed in 0u64..500,
        n_tasks in 1usize..25,
        k in 1usize..4,
    ) {
        let data = LabelingDataset::binary(n_tasks, seed);
        let run = |threads: usize| {
            let oracle = crowd(seed, 12, threads);
            let out = label_tasks(&oracle, &data.tasks, k, &MajorityVote)
                .expect("unlimited budget");
            (
                out.answers_bought,
                format!("{:?}", out.inference),
                // The matrix's id-lookup maps debug-print in hash order;
                // compare the order-stable observation log instead.
                format!("{:?}", out.matrix.observations()),
            )
        };
        let one = run(1);
        prop_assert_eq!(&one, &run(2));
        prop_assert_eq!(&one, &run(8));
    }

    /// However many OS threads hammer `ask_batch` concurrently, the
    /// platform never sells more answers than the budget covers.
    #[test]
    fn concurrent_batches_never_overspend_the_budget(
        seed in 0u64..500,
        limit in 0u32..40,
        n_threads in 2usize..5,
        reqs_per_thread in 1usize..8,
        redundancy in 1usize..4,
    ) {
        let pop = PopulationBuilder::new().reliable(10, 0.8, 0.9).build(seed);
        let crowd = PlatformBuilder::new(pop)
            .budget(Budget::new(limit as f64))
            .seed(seed)
            .threads(4)
            .build();

        let tasks: Vec<Vec<Task>> = (0..n_threads)
            .map(|t| {
                LabelingDataset::binary(reqs_per_thread, seed ^ (t as u64) << 32).tasks
            })
            .collect();
        let delivered: usize = std::thread::scope(|s| {
            let handles: Vec<_> = tasks
                .iter()
                .map(|ts| {
                    let crowd = &crowd;
                    s.spawn(move || {
                        let reqs: Vec<AskRequest<'_>> = ts
                            .iter()
                            .map(|t| AskRequest::new(t).with_redundancy(redundancy))
                            .collect();
                        crowd
                            .ask_batch(&reqs)
                            .expect("exhaustion is a shortfall, not an error")
                            .iter()
                            .map(|o| o.delivered())
                            .sum::<usize>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });

        prop_assert!(
            delivered as u32 <= limit,
            "sold {} answers against a budget of {}",
            delivered,
            limit
        );
        prop_assert_eq!(delivered as u64, crowd.answers_delivered());
        prop_assert!(crowd.budget().remaining() >= 0.0);
    }
}
