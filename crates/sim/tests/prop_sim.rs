//! Property-based tests for the platform simulator: determinism, budget
//! safety, and statistical sanity of worker models.

use crowdkit_core::answer::AnswerValue;
use crowdkit_core::budget::Budget;
use crowdkit_core::ids::TaskId;
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use crowdkit_sim::dataset::LabelingDataset;
use crowdkit_sim::latency::{LatencyModel, RoundSimulator, StragglerPolicy};
use crowdkit_sim::population::PopulationBuilder;
use crowdkit_sim::{PlatformBuilder, SimulatedCrowd};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical seeds produce identical answer streams; different seeds
    /// are allowed to differ (and practically always do).
    #[test]
    fn platform_is_deterministic(seed in 0u64..1000, n_workers in 3usize..20) {
        let run = |s: u64| {
            let pop = PopulationBuilder::new().reliable(n_workers, 0.6, 0.95).build(s);
            let crowd = SimulatedCrowd::new(pop, s);
            let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(1));
            crowd
                .ask_many(&task, n_workers.min(5))
                .unwrap()
                .into_iter()
                .map(|a| (a.worker.raw(), format!("{:?}", a.value)))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// The platform never delivers more answers than the budget allows,
    /// and never assigns a worker twice to one task.
    #[test]
    fn budget_and_assignment_invariants(
        limit in 0u32..30,
        asks in 1usize..40,
        n_workers in 2usize..12,
    ) {
        let pop = PopulationBuilder::new().reliable(n_workers, 0.8, 0.9).build(1);
        let crowd = PlatformBuilder::new(pop)
            .budget(Budget::new(limit as f64))
            .build();
        let task = Task::binary(TaskId::new(0), "q").with_truth(AnswerValue::Choice(0));
        let mut workers = std::collections::HashSet::new();
        let mut delivered = 0u32;
        for _ in 0..asks {
            match crowd.ask_one(&task) {
                Ok(a) => {
                    delivered += 1;
                    prop_assert!(workers.insert(a.worker), "worker reused on one task");
                }
                Err(e) => prop_assert!(e.is_resource_exhaustion()),
            }
        }
        prop_assert!(delivered <= limit.min(n_workers as u32));
        prop_assert_eq!(crowd.answers_delivered(), delivered as u64);
    }

    /// Dataset generators are deterministic per seed and honour their
    /// parameters.
    #[test]
    fn labeling_dataset_determinism(n in 1usize..100, k in 2usize..5, seed in 0u64..100) {
        let a = LabelingDataset::generate(n, k, 1.0 / k as f64, (0.2, 0.8), seed);
        let b = LabelingDataset::generate(n, k, 1.0 / k as f64, (0.2, 0.8), seed);
        prop_assert_eq!(&a.truths, &b.truths);
        prop_assert_eq!(a.len(), n);
        prop_assert!(a.truths.iter().all(|&t| (t as usize) < k));
    }

    /// Latency samples are non-negative and finite for every model.
    #[test]
    fn latency_samples_are_sane(seed in 0u64..200, mean in 0.1f64..100.0) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for model in [
            LatencyModel::Constant { secs: mean },
            LatencyModel::Exponential { mean },
            LatencyModel::LogNormal { mu: mean.ln(), sigma: 0.8 },
        ] {
            for _ in 0..50 {
                let x = model.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "{model:?} sampled {x}");
            }
            prop_assert!(model.mean().is_finite() && model.mean() > 0.0);
        }
    }

    /// The round simulator conserves answers: bought − dropped ≥ the
    /// requested n×k under Wait/Reissue; rounds are positive.
    #[test]
    fn round_simulator_accounting(
        n_tasks in 1usize..40,
        k in 1usize..4,
        round_size in 1usize..80,
        seed in 0u64..50,
    ) {
        for policy in [
            StragglerPolicy::Wait,
            StragglerPolicy::Reissue { quantile: 0.8 },
            StragglerPolicy::Drop { quantile: 0.9 },
        ] {
            let sim = RoundSimulator {
                latency: LatencyModel::Exponential { mean: 10.0 },
                pool: 16,
                round_size,
                policy,
            };
            let out = sim.run(n_tasks, k, seed);
            prop_assert!(out.rounds >= 1);
            prop_assert!(out.total_time >= 0.0 && out.total_time.is_finite());
            prop_assert!(out.answers_bought >= n_tasks * k);
            if matches!(policy, StragglerPolicy::Wait) {
                prop_assert_eq!(out.answers_bought, n_tasks * k);
                prop_assert_eq!(out.answers_dropped, 0);
            }
        }
    }
}
