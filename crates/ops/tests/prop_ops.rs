//! Property-based tests for operator invariants: constraint clustering is
//! checked against a naive reference implementation, blocking against the
//! quadratic scan, and the species estimators against their bounds.

use std::collections::HashSet;

use crowdkit_ops::collect::{chao1, chao92, good_turing_coverage, ItemCounts};
use crowdkit_ops::join::blocking::{all_pairs_count, candidate_pairs, jaccard, tokenize};
use crowdkit_ops::join::ConstraintClustering;
use crowdkit_ops::sort::rankers::{borda, bradley_terry, copeland, elo};
use crowdkit_ops::sort::{sample_pairs, ComparisonGraph};
use proptest::prelude::*;

/// Naive reference for must-link/cannot-link closure: explicit transitive
/// closure of "same" plus propagation of "different" across clusters.
#[derive(Debug, Clone)]
struct NaiveClustering {
    n: usize,
    same: Vec<(usize, usize)>,
    diff: Vec<(usize, usize)>,
}

impl NaiveClustering {
    fn new(n: usize) -> Self {
        Self {
            n,
            same: Vec::new(),
            diff: Vec::new(),
        }
    }

    fn cluster_of(&self, x: usize) -> HashSet<usize> {
        // BFS over "same" edges.
        let mut seen: HashSet<usize> = [x].into();
        let mut queue = vec![x];
        while let Some(cur) = queue.pop() {
            for &(a, b) in &self.same {
                for (u, v) in [(a, b), (b, a)] {
                    if u == cur && seen.insert(v) {
                        queue.push(v);
                    }
                }
            }
        }
        seen
    }

    fn known_same(&self, a: usize, b: usize) -> bool {
        self.cluster_of(a).contains(&b)
    }

    fn known_different(&self, a: usize, b: usize) -> bool {
        let ca = self.cluster_of(a);
        let cb = self.cluster_of(b);
        self.diff
            .iter()
            .any(|&(x, y)| (ca.contains(&x) && cb.contains(&y)) || (ca.contains(&y) && cb.contains(&x)))
    }

    fn record_same(&mut self, a: usize, b: usize) -> bool {
        if self.known_different(a, b) {
            return false;
        }
        self.same.push((a, b));
        true
    }

    fn record_different(&mut self, a: usize, b: usize) -> bool {
        if self.known_same(a, b) {
            return false;
        }
        self.diff.push((a, b));
        true
    }

    fn labels(&self) -> Vec<usize> {
        let mut labels = vec![usize::MAX; self.n];
        let mut next = 0;
        for i in 0..self.n {
            if labels[i] != usize::MAX {
                continue;
            }
            for j in self.cluster_of(i) {
                labels[j] = next;
            }
            next += 1;
        }
        labels
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn constraint_clustering_matches_naive_reference(
        ops in prop::collection::vec((0usize..8, 0usize..8, prop::bool::ANY), 0..40)
    ) {
        let n = 8;
        let mut fast = ConstraintClustering::new(n);
        let mut naive = NaiveClustering::new(n);
        for (a, b, same) in ops {
            if a == b {
                continue;
            }
            let (fa, na) = if same {
                (fast.record_same(a, b), naive.record_same(a, b))
            } else {
                (fast.record_different(a, b), naive.record_different(a, b))
            };
            prop_assert_eq!(fa, na, "accept/reject disagreement on ({}, {}, same={})", a, b, same);
        }
        for a in 0..n {
            for b in 0..n {
                if a == b { continue; }
                prop_assert_eq!(
                    fast.known_same(a, b),
                    naive.known_same(a, b),
                    "known_same({},{}) disagrees", a, b
                );
                prop_assert_eq!(
                    fast.known_different(a, b),
                    naive.known_different(a, b),
                    "known_different({},{}) disagrees", a, b
                );
            }
        }
        // Cluster labelings induce the same partition.
        let fl = fast.labels();
        let nl = naive.labels();
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(fl[a] == fl[b], nl[a] == nl[b]);
            }
        }
    }

    #[test]
    fn blocking_matches_quadratic_reference(
        texts in prop::collection::vec("[a-d]{1,3}( [a-d]{1,3}){0,2}", 2..12),
        threshold in 0.05f64..1.0,
    ) {
        let pairs = candidate_pairs(&texts, threshold);
        // Reference: quadratic scan.
        let sets: Vec<_> = texts.iter().map(|t| tokenize(t)).collect();
        let mut expected = HashSet::new();
        for a in 0..texts.len() {
            for b in (a + 1)..texts.len() {
                let sim = jaccard(&sets[a], &sets[b]);
                if sim >= threshold && sim > 0.0 {
                    expected.insert((a, b));
                }
            }
        }
        let got: HashSet<(usize, usize)> = pairs.iter().map(|p| (p.a, p.b)).collect();
        prop_assert_eq!(got, expected);
        // Sorted descending by similarity.
        prop_assert!(pairs.windows(2).all(|w| w[0].similarity >= w[1].similarity));
    }

    #[test]
    fn sample_pairs_is_a_subset_of_the_pair_space(
        n in 2usize..20,
        budget in 0usize..100,
        seed in 0u64..50,
    ) {
        let pairs = sample_pairs(n, budget, seed);
        prop_assert!(pairs.len() <= budget.min(all_pairs_count(n)));
        let mut seen = HashSet::new();
        for (a, b) in pairs {
            prop_assert!(a < b && b < n);
            prop_assert!(seen.insert((a, b)));
        }
    }

    #[test]
    fn rankers_always_return_finite_scores(
        results in prop::collection::vec((0usize..6, 0usize..6), 1..60)
    ) {
        let mut g = ComparisonGraph::new(6);
        for (w, l) in results {
            if w != l {
                g.record(w, l);
            }
        }
        for scores in [borda(&g), copeland(&g), elo(&g, 32.0, 2), bradley_terry(&g, 50, 1e-8)] {
            prop_assert_eq!(scores.len(), 6);
            prop_assert!(scores.iter().all(|s| s.is_finite()), "scores {:?}", scores);
        }
    }

    #[test]
    fn species_estimators_respect_bounds(
        contributions in prop::collection::vec(0usize..30, 1..300)
    ) {
        let mut counts = ItemCounts::new();
        for c in &contributions {
            counts.record(&format!("item{c}"));
        }
        let observed = counts.distinct() as f64;
        let c1 = chao1(&counts);
        let c92 = chao92(&counts);
        let cov = good_turing_coverage(&counts);
        prop_assert!(c1 >= observed, "chao1 {c1} < observed {observed}");
        prop_assert!(c92 >= observed - 1e-9, "chao92 {c92} < observed {observed}");
        prop_assert!((0.0..=1.0).contains(&cov));
        prop_assert!(c1.is_finite() && c92.is_finite());
    }
}
