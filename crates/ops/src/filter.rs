//! Crowd selection / filtering.
//!
//! `SELECT * FROM photos WHERE crowd("contains a dog", photo)` — each item
//! becomes a binary task; the operator buys votes per item until a
//! [`StoppingRule`] fires, then keeps items whose majority label is
//! positive. The stopping rule is the cost/accuracy dial: fixed-k spends
//! uniformly, margin and SPRT rules bail out of easy items early
//! (CrowdScreen-style) and spend the savings on contested ones.
//!
//! Votes are purchased in *waves*: each round sends one batched request
//! covering every undecided item through [`CrowdOracle::ask_batch`], so a
//! platform that overlaps assignments (like the simulator) pays one round
//! of latency per wave instead of one per vote.

use crowdkit_core::ask::AskRequest;
use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::task::Task;
use crowdkit_core::traits::{CrowdOracle, StoppingRule};

/// The per-item decision of a filter run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterDecision {
    /// Whether the item passed the predicate (majority said yes).
    pub keep: bool,
    /// Votes for "no" (label 0).
    pub no_votes: u32,
    /// Votes for "yes" (label 1).
    pub yes_votes: u32,
}

/// The outcome of filtering a batch of items.
#[derive(Debug, Clone)]
pub struct FilterOutcome {
    /// One decision per input task, in input order. `None` if the item got
    /// no answers before the budget died.
    pub decisions: Vec<Option<FilterDecision>>,
    /// Total answers purchased.
    pub questions_asked: usize,
}

impl FilterOutcome {
    /// Indices of items that passed.
    pub fn kept_indices(&self) -> Vec<usize> {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d, Some(d) if d.keep))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Filters `items` (binary tasks: label 1 = keep) against the crowd.
///
/// Votes are purchased in batched waves across all undecided items so
/// early stopping redistributes budget and independent items share one
/// round of crowd latency. Collection halts per item when `rule` fires (or
/// `max_answers` is hit) and entirely when the oracle's budget/pool is
/// exhausted.
///
/// Items must be binary single-choice tasks.
pub fn crowd_filter<O, R>(
    oracle: &O,
    items: &[Task],
    rule: &R,
    max_answers: u32,
) -> Result<FilterOutcome>
where
    O: CrowdOracle + ?Sized,
    R: StoppingRule + ?Sized,
{
    for t in items {
        if t.num_labels() != Some(2) {
            return Err(CrowdError::Unsupported(
                "crowd_filter requires binary single-choice tasks",
            ));
        }
    }
    let mut votes: Vec<[u32; 2]> = vec![[0, 0]; items.len()];
    let mut open: Vec<usize> = (0..items.len()).collect();
    let mut asked = 0usize;

    while !open.is_empty() {
        let reqs: Vec<AskRequest<'_>> = open.iter().map(|&i| AskRequest::new(&items[i])).collect();
        let outcomes = oracle.ask_batch(&reqs)?;
        let mut next_open = Vec::with_capacity(open.len());
        let mut exhausted = false;
        for (&i, out) in open.iter().zip(&outcomes) {
            for a in &out.answers {
                if let Some(l) = a.value.as_choice() {
                    votes[i][(l == 1) as usize] += 1;
                    asked += 1;
                }
            }
            match &out.shortfall {
                Some(e) if e.is_resource_exhaustion() => exhausted = true,
                Some(e) => return Err(e.clone()),
                None => {}
            }
            if !rule.should_stop(&votes[i], max_answers) {
                next_open.push(i);
            }
        }
        if exhausted {
            break;
        }
        open = next_open;
    }

    let decisions = votes
        .iter()
        .map(|&[no, yes]| {
            if no + yes == 0 {
                None
            } else {
                Some(FilterDecision {
                    keep: yes > no,
                    no_votes: no,
                    yes_votes: yes,
                })
            }
        })
        .collect();

    Ok(FilterOutcome {
        decisions,
        questions_asked: asked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::answer::{Answer, AnswerValue};
    use crowdkit_core::budget::Budget;
    use crowdkit_core::ids::{TaskId, WorkerId};
    use crowdkit_truth::sequential::{FixedK, MajorityMargin};
    use std::cell::{Cell, RefCell};

    /// Oracle answering the task truth, optionally budget-capped.
    struct TruthfulOracle {
        budget: RefCell<Budget>,
        next_worker: Cell<u64>,
        delivered: Cell<u64>,
    }

    impl TruthfulOracle {
        fn new(limit: f64) -> Self {
            Self {
                budget: RefCell::new(Budget::new(limit)),
                next_worker: Cell::new(0),
                delivered: Cell::new(0),
            }
        }
    }

    impl CrowdOracle for TruthfulOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            self.budget.borrow_mut().debit(1.0)?;
            let w = WorkerId::new(self.next_worker.get());
            self.next_worker.set(self.next_worker.get() + 1);
            self.delivered.set(self.delivered.get() + 1);
            Ok(Answer::bare(task.id, w, task.truth.clone().unwrap()))
        }
        fn remaining_budget(&self) -> Option<f64> {
            Some(self.budget.borrow().remaining())
        }
        fn answers_delivered(&self) -> u64 {
            self.delivered.get()
        }
    }

    fn items(flags: &[bool]) -> Vec<Task> {
        flags
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                Task::binary(TaskId::new(i as u64), format!("item {i}"))
                    .with_truth(AnswerValue::Choice(f as u32))
            })
            .collect()
    }

    #[test]
    fn fixed_k_keeps_positive_items() {
        let ts = items(&[true, false, true]);
        let oracle = TruthfulOracle::new(1e9);
        let out = crowd_filter(&oracle, &ts, &FixedK { k: 3 }, 3).unwrap();
        assert_eq!(out.kept_indices(), vec![0, 2]);
        assert_eq!(out.questions_asked, 9);
        let d = out.decisions[0].unwrap();
        assert_eq!((d.no_votes, d.yes_votes), (0, 3));
    }

    #[test]
    fn margin_rule_stops_after_two_unanimous_votes() {
        let ts = items(&[true; 5]);
        let oracle = TruthfulOracle::new(1e9);
        let out = crowd_filter(&oracle, &ts, &MajorityMargin { margin: 2 }, 9).unwrap();
        assert_eq!(out.questions_asked, 10, "2 votes × 5 items");
        assert_eq!(out.kept_indices().len(), 5);
    }

    #[test]
    fn budget_exhaustion_leaves_undecided_items() {
        let ts = items(&[true; 4]);
        let oracle = TruthfulOracle::new(2.0);
        let out = crowd_filter(&oracle, &ts, &FixedK { k: 3 }, 3).unwrap();
        assert_eq!(out.questions_asked, 2);
        let undecided = out.decisions.iter().filter(|d| d.is_none()).count();
        assert_eq!(undecided, 2);
    }

    #[test]
    fn rejects_non_binary_tasks() {
        let t = vec![Task::multiclass(TaskId::new(0), 3, "which?")
            .with_truth(AnswerValue::Choice(0))];
        let oracle = TruthfulOracle::new(10.0);
        let err = crowd_filter(&oracle, &t, &FixedK { k: 1 }, 1).unwrap_err();
        assert!(matches!(err, CrowdError::Unsupported(_)));
    }

    #[test]
    fn tie_votes_do_not_keep() {
        // Manually construct a decision tie via max_answers = 2 and an
        // oracle that alternates answers.
        struct Alternating {
            n: Cell<u64>,
        }
        impl CrowdOracle for Alternating {
            fn ask_one(&self, task: &Task) -> Result<Answer> {
                let n = self.n.get() + 1;
                self.n.set(n);
                Ok(Answer::bare(
                    task.id,
                    WorkerId::new(n),
                    AnswerValue::Choice((n % 2) as u32),
                ))
            }
            fn remaining_budget(&self) -> Option<f64> {
                None
            }
            fn answers_delivered(&self) -> u64 {
                self.n.get()
            }
        }
        let ts = items(&[true]);
        let oracle = Alternating { n: Cell::new(0) };
        let out = crowd_filter(&oracle, &ts, &FixedK { k: 2 }, 2).unwrap();
        let d = out.decisions[0].unwrap();
        assert_eq!((d.no_votes, d.yes_votes), (1, 1));
        assert!(!d.keep, "ties are conservative: do not keep");
    }
}
