//! Crowd FILL: completing missing cells of a table.
//!
//! CrowdDB's `CROWD` columns and the CrowdFill line of work let a query
//! reference attributes the database does not have — "the phone number of
//! this restaurant" — and buy them at query time. Each missing cell
//! becomes an open-text task; `k` answers are reconciled by normalized
//! plurality with a confidence score, and unresolved cells (no plurality)
//! are reported rather than guessed. All cells go to the platform as one
//! batch, so independent cells share one round of crowd latency.

use std::collections::{BTreeMap, HashMap};

use crowdkit_core::ask::AskRequest;
use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::ids::{IdGen, TaskId};
use crowdkit_core::task::{Task, TaskKind};
use crowdkit_core::traits::CrowdOracle;

/// A cell to be filled: which row (by caller-chosen key) and attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellRef {
    /// Caller's row key (e.g. primary key rendering).
    pub row: String,
    /// Attribute name being filled.
    pub attribute: String,
}

/// One reconciled cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FilledCell {
    /// The winning value (normalized form as given by the plurality
    /// winner's first occurrence).
    pub value: String,
    /// Fraction of answers agreeing with the winner.
    pub support: f64,
    /// All answers received (normalized), with counts.
    pub answers: Vec<(String, u32)>,
}

/// The outcome of a fill run.
#[derive(Debug, Clone, Default)]
pub struct FillOutcome {
    /// Cells successfully reconciled (strict plurality existed).
    pub filled: HashMap<CellRef, FilledCell>,
    /// Cells whose answers tied or that got no answers.
    pub unresolved: Vec<CellRef>,
    /// Crowd answers purchased.
    pub questions_asked: usize,
}

/// Buys `k` open-text answers for each cell (one batched platform request
/// covering every cell) and reconciles by normalized plurality (trim +
/// lowercase). A cell is `unresolved` when the top two normalized values
/// tie or no answers arrived before exhaustion.
///
/// `prompt_for` renders the worker-facing question for a cell; in
/// simulation it also attaches the latent truth.
pub fn crowd_fill<O, F>(
    oracle: &O,
    cells: &[CellRef],
    k: u32,
    mut prompt_for: F,
) -> Result<FillOutcome>
where
    O: CrowdOracle + ?Sized,
    F: FnMut(TaskId, &CellRef) -> Task,
{
    if cells.is_empty() {
        return Err(CrowdError::EmptyInput("cells"));
    }
    let mut ids = IdGen::new();
    let tasks: Vec<Task> = cells.iter().map(|c| prompt_for(ids.next_task(), c)).collect();
    for task in &tasks {
        debug_assert!(
            matches!(task.kind, TaskKind::Fill { .. } | TaskKind::OpenText),
            "fill tasks must accept text answers"
        );
    }
    let reqs: Vec<AskRequest<'_>> = tasks
        .iter()
        .map(|t| AskRequest::new(t).with_redundancy(k.max(1) as usize))
        .collect();
    let outcomes = oracle.ask_batch(&reqs)?;

    let mut out = FillOutcome::default();
    for (idx, (cell, outcome)) in cells.iter().zip(&outcomes).enumerate() {
        if let Some(e) = &outcome.shortfall {
            if !e.is_resource_exhaustion() {
                return Err(e.clone());
            }
            if outcome.answers.is_empty() {
                // Budget dead and nothing bought: remaining cells will not
                // fare better.
                for rest in &cells[idx..] {
                    out.unresolved.push(rest.clone());
                }
                break;
            }
        }
        // Key-ordered: the plurality fold below iterates these maps.
        let mut counts: BTreeMap<String, u32> = BTreeMap::new();
        let mut first_form: BTreeMap<String, String> = BTreeMap::new();
        let mut got = 0u32;
        for a in &outcome.answers {
            if let Some(text) = a.value.as_text() {
                let norm = text.trim().to_lowercase();
                if norm.is_empty() {
                    continue;
                }
                first_form.entry(norm.clone()).or_insert_with(|| text.trim().to_owned());
                *counts.entry(norm).or_insert(0) += 1;
                got += 1;
                out.questions_asked += 1;
            }
        }

        // Plurality with tie detection.
        let mut tallies: Vec<(&String, u32)> = counts.iter().map(|(v, &c)| (v, c)).collect();
        tallies.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        match tallies.as_slice() {
            [] => out.unresolved.push(cell.clone()),
            [(top, c), rest @ ..] => {
                let tied = rest.first().map(|(_, c2)| c2 == c).unwrap_or(false);
                if tied {
                    out.unresolved.push(cell.clone());
                } else {
                    let answers: Vec<(String, u32)> = tallies
                        .iter()
                        .map(|(v, c)| ((*v).clone(), *c))
                        .collect();
                    out.filled.insert(
                        cell.clone(),
                        FilledCell {
                            value: first_form[*top].clone(),
                            support: *c as f64 / got as f64,
                            answers,
                        },
                    );
                }
            }
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::answer::{Answer, AnswerValue};
    use crowdkit_core::budget::Budget;
    use crowdkit_core::ids::WorkerId;
    use std::cell::{Cell, RefCell};

    fn cell(row: &str, attr: &str) -> CellRef {
        CellRef {
            row: row.into(),
            attribute: attr.into(),
        }
    }

    fn fill_task(id: TaskId, c: &CellRef, truth: &str) -> Task {
        Task::new(
            id,
            TaskKind::Fill {
                attribute: c.attribute.clone(),
            },
            format!("{} of {}", c.attribute, c.row),
        )
        .with_truth(AnswerValue::Text(truth.into()))
    }

    /// Oracle answering fill tasks with their truth, with optional per-call
    /// scripted overrides.
    struct ScriptedOracle {
        budget: RefCell<Budget>,
        script: Vec<Option<String>>, // per-call override; None = truth
        call: Cell<usize>,
        delivered: Cell<u64>,
    }

    impl ScriptedOracle {
        fn truthful(limit: f64) -> Self {
            Self::scripted(limit, Vec::new())
        }

        fn scripted(limit: f64, script: Vec<Option<String>>) -> Self {
            Self {
                budget: RefCell::new(Budget::new(limit)),
                script,
                call: Cell::new(0),
                delivered: Cell::new(0),
            }
        }
    }

    impl CrowdOracle for ScriptedOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            self.budget.borrow_mut().debit(1.0)?;
            let i = self.call.get();
            self.call.set(i + 1);
            self.delivered.set(self.delivered.get() + 1);
            let value = match self.script.get(i).cloned().flatten() {
                Some(text) => AnswerValue::Text(text),
                None => task.truth.clone().unwrap(),
            };
            Ok(Answer::bare(task.id, WorkerId::new(i as u64), value))
        }
        fn remaining_budget(&self) -> Option<f64> {
            Some(self.budget.borrow().remaining())
        }
        fn answers_delivered(&self) -> u64 {
            self.delivered.get()
        }
    }

    #[test]
    fn unanimous_answers_fill_with_full_support() {
        let cells = vec![cell("france", "capital"), cell("japan", "capital")];
        let oracle = ScriptedOracle::truthful(1e9);
        let out = crowd_fill(&oracle, &cells, 3, |id, c| {
            fill_task(id, c, if c.row == "france" { "Paris" } else { "Tokyo" })
        })
        .unwrap();
        assert_eq!(out.filled[&cells[0]].value, "Paris");
        assert_eq!(out.filled[&cells[1]].value, "Tokyo");
        assert_eq!(out.filled[&cells[0]].support, 1.0);
        assert!(out.unresolved.is_empty());
        assert_eq!(out.questions_asked, 6);
    }

    #[test]
    fn plurality_wins_over_noise_and_case() {
        let cells = vec![cell("france", "capital")];
        let oracle = ScriptedOracle::scripted(
            1e9,
            vec![
                Some("  PARIS ".into()),
                Some("paris".into()),
                Some("Lyon".into()),
            ],
        );
        let out = crowd_fill(&oracle, &cells, 3, |id, c| fill_task(id, c, "Paris")).unwrap();
        let f = &out.filled[&cells[0]];
        assert_eq!(f.value, "PARIS", "first seen surface form of the winner");
        assert!((f.support - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ties_are_unresolved_not_guessed() {
        let cells = vec![cell("x", "y")];
        let oracle = ScriptedOracle::scripted(1e9, vec![Some("a".into()), Some("b".into())]);
        let out = crowd_fill(&oracle, &cells, 2, |id, c| fill_task(id, c, "a")).unwrap();
        assert!(out.filled.is_empty());
        assert_eq!(out.unresolved, cells);
    }

    #[test]
    fn budget_death_marks_remaining_cells_unresolved() {
        let cells = vec![cell("a", "x"), cell("b", "x"), cell("c", "x")];
        let oracle = ScriptedOracle::truthful(4.0);
        let out = crowd_fill(&oracle, &cells, 3, |id, c| fill_task(id, c, "v")).unwrap();
        // Cell a: 3 answers. Cell b: 1 answer (then exhausted, still
        // reconciles from the single answer). Cell c: unresolved.
        assert!(out.filled.contains_key(&cells[0]));
        assert!(out.filled.contains_key(&cells[1]));
        assert_eq!(out.unresolved, vec![cells[2].clone()]);
        assert_eq!(out.questions_asked, 4);
    }

    #[test]
    fn empty_cell_list_is_an_error() {
        let oracle = ScriptedOracle::truthful(10.0);
        assert!(crowd_fill(&oracle, &[], 3, |id, c| fill_task(id, c, "v")).is_err());
    }
}
