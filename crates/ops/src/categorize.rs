//! Crowd categorization into a taxonomy.
//!
//! Placing items into a category tree ("electronics → phones → android")
//! is harder than flat labeling because the label space is structured:
//! workers may agree on the coarse branch while disagreeing on the leaf.
//! Hierarchy-aware aggregation credits a vote for a leaf to *every
//! ancestor* on its path and returns the deepest node whose support clears
//! a threshold — so coarse consensus survives fine disagreement instead of
//! being split by it.

use crowdkit_core::ask::AskRequest;
use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::ids::{IdGen, TaskId};
use crowdkit_core::label::LabelSpace;
use crowdkit_core::task::{Task, TaskKind};
use crowdkit_core::traits::CrowdOracle;

/// A category tree. Node 0 is the root.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    names: Vec<String>,
    parent: Vec<Option<usize>>,
}

impl Taxonomy {
    /// Creates a taxonomy with the given root name.
    pub fn new(root: impl Into<String>) -> Self {
        Self {
            names: vec![root.into()],
            parent: vec![None],
        }
    }

    /// Adds a child of `parent` and returns its node id.
    ///
    /// # Panics
    /// Panics if `parent` is not an existing node.
    pub fn add_child(&mut self, parent: usize, name: impl Into<String>) -> usize {
        assert!(parent < self.names.len(), "unknown parent node {parent}");
        let id = self.names.len();
        self.names.push(name.into());
        self.parent.push(Some(parent));
        id
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Never empty (the root always exists).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Name of a node.
    pub fn name(&self, node: usize) -> &str {
        &self.names[node]
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, node: usize) -> Option<usize> {
        self.parent[node]
    }

    /// Nodes on the path from the root to `node`, inclusive.
    pub fn path(&self, node: usize) -> Vec<usize> {
        let mut p = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            p.push(n);
            cur = self.parent[n];
        }
        p.reverse();
        p
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, node: usize) -> usize {
        self.path(node).len() - 1
    }

    /// Leaf nodes (no children), in id order.
    pub fn leaves(&self) -> Vec<usize> {
        let mut has_child = vec![false; self.len()];
        for p in self.parent.iter().flatten() {
            has_child[*p] = true;
        }
        (0..self.len()).filter(|&n| !has_child[n]).collect()
    }

    /// The label space of the leaves, for building crowd tasks.
    pub fn leaf_label_space(&self) -> LabelSpace {
        LabelSpace::new(self.leaves().iter().map(|&n| self.names[n].clone()))
    }
}

/// The categorization verdict for one item.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryDecision {
    /// The chosen node (deepest with sufficient support).
    pub node: usize,
    /// Support of that node (fraction of votes whose path includes it).
    pub support: f64,
    /// Votes received.
    pub votes: u32,
}

/// Categorizes one item: buys `k` leaf-choice votes and returns the
/// deepest taxonomy node whose path-support is at least `threshold`.
///
/// The task presented to workers is a single choice over the taxonomy's
/// leaves; `make_task` builds it (attaching latent truth in simulation).
/// The root always has support 1.0, so a decision always exists when at
/// least one vote arrives.
pub fn crowd_categorize<O, F>(
    oracle: &O,
    taxonomy: &Taxonomy,
    k: u32,
    threshold: f64,
    mut make_task: F,
) -> Result<CategoryDecision>
where
    O: CrowdOracle + ?Sized,
    F: FnMut(TaskId, &LabelSpace) -> Task,
{
    let leaves = taxonomy.leaves();
    let space = taxonomy.leaf_label_space();
    let mut ids = IdGen::new();
    let task = make_task(ids.next_task(), &space);
    if !matches!(&task.kind, TaskKind::SingleChoice { labels } if labels.len() == leaves.len()) {
        return Err(CrowdError::Unsupported(
            "categorize tasks must be single-choice over the taxonomy's leaves",
        ));
    }

    let mut node_votes = vec![0u32; taxonomy.len()];
    let mut total = 0u32;
    let out = oracle.ask(&AskRequest::new(&task).with_redundancy(k.max(1) as usize))?;
    if let Some(e) = &out.shortfall {
        if !e.is_resource_exhaustion() {
            return Err(e.clone());
        }
    }
    for a in &out.answers {
        if let Some(choice) = a.value.as_choice() {
            let leaf = leaves[choice as usize];
            for n in taxonomy.path(leaf) {
                node_votes[n] += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        return Err(CrowdError::EmptyInput("no categorization votes received"));
    }

    // Deepest node clearing the threshold; ties at equal depth go to the
    // higher-support node, then the smaller id.
    let mut best = 0usize; // root: support 1.0 by construction
    for n in 1..taxonomy.len() {
        let support = node_votes[n] as f64 / total as f64;
        if support + 1e-12 < threshold {
            continue;
        }
        let (bd, bs) = (taxonomy.depth(best), node_votes[best]);
        let (nd, ns) = (taxonomy.depth(n), node_votes[n]);
        if nd > bd || (nd == bd && ns > bs) {
            best = n;
        }
    }

    Ok(CategoryDecision {
        node: best,
        support: node_votes[best] as f64 / total as f64,
        votes: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::answer::{Answer, AnswerValue};
    use crowdkit_core::ids::WorkerId;

    /// electronics(0) → phones(1) → { android(2), ios(3) }; laptops(4).
    fn taxonomy() -> Taxonomy {
        let mut t = Taxonomy::new("electronics");
        let phones = t.add_child(0, "phones");
        t.add_child(phones, "android");
        t.add_child(phones, "ios");
        t.add_child(0, "laptops");
        t
    }

    #[test]
    fn structure_queries_work() {
        let t = taxonomy();
        assert_eq!(t.len(), 5);
        assert_eq!(t.leaves(), vec![2, 3, 4]);
        assert_eq!(t.path(2), vec![0, 1, 2]);
        assert_eq!(t.depth(2), 2);
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.leaf_label_space().len(), 3);
        assert_eq!(t.name(4), "laptops");
    }

    /// Oracle voting a scripted sequence of leaf-space label indices.
    struct VoteOracle {
        votes: Vec<u32>,
        i: std::cell::Cell<usize>,
    }

    impl VoteOracle {
        fn new(votes: Vec<u32>) -> Self {
            Self {
                votes,
                i: std::cell::Cell::new(0),
            }
        }
    }

    impl CrowdOracle for VoteOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            let i = self.i.get();
            if i >= self.votes.len() {
                return Err(CrowdError::BudgetExhausted {
                    requested: 1.0,
                    remaining: 0.0,
                });
            }
            let v = self.votes[i];
            self.i.set(i + 1);
            Ok(Answer::bare(
                task.id,
                WorkerId::new((i + 1) as u64),
                AnswerValue::Choice(v),
            ))
        }
        fn remaining_budget(&self) -> Option<f64> {
            Some((self.votes.len() - self.i.get()) as f64)
        }
        fn answers_delivered(&self) -> u64 {
            self.i.get() as u64
        }
    }

    fn leaf_task(id: TaskId, space: &LabelSpace) -> Task {
        Task::new(
            id,
            TaskKind::SingleChoice {
                labels: space.clone(),
            },
            "categorize this product",
        )
    }

    #[test]
    fn unanimous_leaf_vote_picks_the_leaf() {
        // Leaf space order: [android(2), ios(3), laptops(4)].
        let oracle = VoteOracle::new(vec![0, 0, 0]);
        let d = crowd_categorize(&oracle, &taxonomy(), 3, 0.6, leaf_task).unwrap();
        assert_eq!(d.node, 2, "android leaf");
        assert_eq!(d.support, 1.0);
    }

    #[test]
    fn split_leaves_fall_back_to_their_common_parent() {
        // 2 votes android, 2 votes ios: neither leaf clears 0.6, but
        // "phones" has support 1.0.
        let oracle = VoteOracle::new(vec![0, 1, 0, 1]);
        let d = crowd_categorize(&oracle, &taxonomy(), 4, 0.6, leaf_task).unwrap();
        assert_eq!(d.node, 1, "phones");
        assert_eq!(d.support, 1.0);
    }

    #[test]
    fn cross_branch_disagreement_falls_to_root() {
        // 1 android, 1 ios, 2 laptops: laptops has 0.5 < 0.6; phones 0.5;
        // root 1.0.
        let oracle = VoteOracle::new(vec![0, 1, 2, 2]);
        let d = crowd_categorize(&oracle, &taxonomy(), 4, 0.6, leaf_task).unwrap();
        assert_eq!(d.node, 0, "root");
    }

    #[test]
    fn lower_threshold_commits_deeper() {
        // 1 android, 2 laptops: with threshold 0.6 laptops (2/3 ≈ 0.67)
        // wins; with threshold 0.7 nothing below the root clears.
        let votes = vec![0, 2, 2];
        let oracle = VoteOracle::new(votes.clone());
        let d = crowd_categorize(&oracle, &taxonomy(), 3, 0.6, leaf_task).unwrap();
        assert_eq!(d.node, 4, "laptops clears a 0.6 threshold with 2/3");
        let oracle = VoteOracle::new(votes);
        let d = crowd_categorize(&oracle, &taxonomy(), 3, 0.7, leaf_task).unwrap();
        assert_eq!(d.node, 0, "higher threshold falls back to the root");
    }

    #[test]
    fn partial_votes_still_decide() {
        let oracle = VoteOracle::new(vec![0, 0]);
        // Asks for 5 votes but only 2 exist.
        let d = crowd_categorize(&oracle, &taxonomy(), 5, 0.6, leaf_task).unwrap();
        assert_eq!(d.votes, 2);
        assert_eq!(d.node, 2);
    }

    #[test]
    fn no_votes_is_an_error() {
        let oracle = VoteOracle::new(vec![]);
        assert!(crowd_categorize(&oracle, &taxonomy(), 3, 0.6, leaf_task).is_err());
    }

    #[test]
    fn wrong_task_shape_is_rejected() {
        let oracle = VoteOracle::new(vec![0]);
        let err = crowd_categorize(&oracle, &taxonomy(), 1, 0.6, |id, _| {
            Task::binary(id, "yes/no?")
        })
        .unwrap_err();
        assert!(matches!(err, CrowdError::Unsupported(_)));
    }
}
