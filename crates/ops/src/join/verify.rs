//! Crowd verification of candidate pairs with transitivity deduction.

use std::collections::HashSet;

use crowdkit_core::ask::AskRequest;
use crowdkit_core::error::Result;
use crowdkit_core::ids::{IdGen, TaskId};
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::blocking::CandidatePair;
use super::cluster::ConstraintClustering;

/// In what order candidate pairs are put to the crowd. Order is the lever
/// of experiment E12: similarity-descending order front-loads likely
/// matches, which creates clusters early and lets transitivity answer the
/// rest for free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AskOrder {
    /// As produced by blocking (descending similarity).
    SimilarityDesc,
    /// Uniformly shuffled with the given seed.
    Random(u64),
    /// Exactly the order given in the input slice.
    Input,
}

/// Configuration of a crowd join run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinConfig {
    /// Crowd votes purchased per asked pair; the pair verdict is the
    /// majority (ties → non-match, the conservative call).
    pub votes_per_pair: u32,
    /// Whether to deduce answers via transitivity instead of asking.
    pub use_transitivity: bool,
    /// Ask order.
    pub order: AskOrder,
}

impl Default for JoinConfig {
    fn default() -> Self {
        Self {
            votes_per_pair: 3,
            use_transitivity: true,
            order: AskOrder::SimilarityDesc,
        }
    }
}

/// The outcome of a crowd join.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// Cluster label per record (dense, deterministic).
    pub clusters: Vec<usize>,
    /// Pairs actually put to the crowd.
    pub pairs_asked: usize,
    /// Pairs answered "same" by positive transitivity (never asked).
    pub deduced_same: usize,
    /// Pairs answered "different" by negative transitivity (never asked).
    pub deduced_different: usize,
    /// Crowd answers purchased in total.
    pub questions_asked: usize,
    /// Pairs whose crowd verdict contradicted an existing constraint and
    /// was discarded (noisy-crowd bookkeeping).
    pub contradictions: usize,
}

/// Resolves entities among `n_records` records by crowd-verifying
/// `candidates`.
///
/// Verification is batched in *waves*: each wave takes, in ask order, every
/// pair that is not yet deducible and whose two current clusters are
/// untouched by earlier pairs of the same wave, and submits them as one
/// platform batch. Cluster-disjointness makes the wave's verdicts mutually
/// independent, so batching preserves the exact transitivity-deduction
/// semantics of asking one pair at a time — while independent pairs
/// overlap in crowd latency. (With transitivity off, all pairs form one
/// wave.)
///
/// `make_task` builds the binary verification task for a record pair
/// (label 1 = "same entity"); in simulation it attaches the latent truth,
/// against a live platform it would render the two records side by side.
pub fn crowd_join<O, F>(
    oracle: &O,
    n_records: usize,
    candidates: &[CandidatePair],
    mut make_task: F,
    config: &JoinConfig,
) -> Result<JoinOutcome>
where
    O: CrowdOracle + ?Sized,
    F: FnMut(TaskId, usize, usize) -> Task,
{
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    match config.order {
        AskOrder::SimilarityDesc => {
            order.sort_by(|&x, &y| {
                candidates[y]
                    .similarity
                    .total_cmp(&candidates[x].similarity)
                    .then_with(|| (candidates[x].a, candidates[x].b).cmp(&(candidates[y].a, candidates[y].b)))
            });
        }
        AskOrder::Random(seed) => {
            order.shuffle(&mut StdRng::seed_from_u64(seed));
        }
        AskOrder::Input => {}
    }

    let mut clustering = ConstraintClustering::new(n_records);
    let mut ids = IdGen::new();
    let mut pairs_asked = 0usize;
    let mut deduced_same = 0usize;
    let mut deduced_different = 0usize;
    let mut questions = 0usize;
    let mut contradictions = 0usize;

    let mut pending = order;
    'waves: while !pending.is_empty() {
        // Select the next wave: skip deducible pairs, defer pairs whose
        // clusters were already touched this wave (their answer could
        // become deducible from a verdict in flight).
        let mut wave: Vec<usize> = Vec::new();
        let mut touched: HashSet<usize> = HashSet::new();
        let mut deferred: Vec<usize> = Vec::new();
        for &idx in &pending {
            let CandidatePair { a, b, .. } = candidates[idx];
            if config.use_transitivity {
                if clustering.known_same(a, b) {
                    deduced_same += 1;
                    continue;
                }
                if clustering.known_different(a, b) {
                    deduced_different += 1;
                    continue;
                }
                let (ra, rb) = (clustering.find(a), clustering.find(b));
                if touched.contains(&ra) || touched.contains(&rb) {
                    deferred.push(idx);
                    continue;
                }
                touched.insert(ra);
                touched.insert(rb);
            }
            wave.push(idx);
        }
        if wave.is_empty() {
            break;
        }

        let tasks: Vec<Task> = wave
            .iter()
            .map(|&idx| {
                let CandidatePair { a, b, .. } = candidates[idx];
                make_task(ids.next_task(), a, b)
            })
            .collect();
        let reqs: Vec<AskRequest<'_>> = tasks
            .iter()
            .map(|t| AskRequest::new(t).with_redundancy(config.votes_per_pair.max(1) as usize))
            .collect();
        let outcomes = oracle.ask_batch(&reqs)?;

        for (&idx, out) in wave.iter().zip(&outcomes) {
            if let Some(e) = &out.shortfall {
                if !e.is_resource_exhaustion() {
                    return Err(e.clone());
                }
            }
            if out.answers.is_empty() {
                // Nothing bought for this pair: the budget is dead; stop.
                break 'waves;
            }
            let mut yes = 0u32;
            let mut no = 0u32;
            for answer in &out.answers {
                questions += 1;
                match answer.value.as_choice() {
                    Some(1) => yes += 1,
                    _ => no += 1,
                }
            }
            pairs_asked += 1;

            let CandidatePair { a, b, .. } = candidates[idx];
            let verdict_same = yes > no;
            let applied = if verdict_same {
                clustering.record_same(a, b)
            } else {
                clustering.record_different(a, b)
            };
            if !applied {
                contradictions += 1;
            }
        }
        pending = deferred;
    }

    Ok(JoinOutcome {
        clusters: clustering.labels(),
        pairs_asked,
        deduced_same,
        deduced_different,
        questions_asked: questions,
        contradictions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::answer::{Answer, AnswerValue};
    use crowdkit_core::budget::Budget;
    use crowdkit_core::error::CrowdError;
    use crowdkit_core::ids::WorkerId;
    use std::cell::{Cell, RefCell};

    /// Oracle answering each pair task with its attached truth.
    struct TruthfulOracle {
        budget: RefCell<Budget>,
        next_worker: Cell<u64>,
        delivered: Cell<u64>,
    }

    impl TruthfulOracle {
        fn new(limit: f64) -> Self {
            Self {
                budget: RefCell::new(Budget::new(limit)),
                next_worker: Cell::new(0),
                delivered: Cell::new(0),
            }
        }
    }

    impl CrowdOracle for TruthfulOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            self.budget.borrow_mut().debit(1.0)?;
            self.delivered.set(self.delivered.get() + 1);
            let w = WorkerId::new(self.next_worker.get());
            self.next_worker.set(self.next_worker.get() + 1);
            Ok(Answer::bare(task.id, w, task.truth.clone().unwrap()))
        }
        fn remaining_budget(&self) -> Option<f64> {
            Some(self.budget.borrow().remaining())
        }
        fn answers_delivered(&self) -> u64 {
            self.delivered.get()
        }
    }

    /// Ground truth: records 0,1,2 are entity X; records 3,4 are entity Y.
    fn entity_of(r: usize) -> usize {
        if r <= 2 {
            0
        } else {
            1
        }
    }

    fn make_task_factory() -> impl FnMut(TaskId, usize, usize) -> Task {
        |id, a, b| {
            Task::binary(id, format!("same? {a} vs {b}"))
                .with_truth(AnswerValue::Choice((entity_of(a) == entity_of(b)) as u32))
        }
    }

    fn pairs(all: &[(usize, usize)]) -> Vec<CandidatePair> {
        all.iter()
            .map(|&(a, b)| CandidatePair {
                a,
                b,
                similarity: 0.5,
            })
            .collect()
    }

    /// All 10 pairs over 5 records, in an order that lets transitivity
    /// shine when enabled.
    fn all_pairs() -> Vec<CandidatePair> {
        let mut v = Vec::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                v.push(CandidatePair {
                    a,
                    b,
                    similarity: if entity_of(a) == entity_of(b) { 0.9 } else { 0.1 },
                });
            }
        }
        v
    }

    #[test]
    fn clusters_match_ground_truth_with_truthful_crowd() {
        let oracle = TruthfulOracle::new(1e9);
        let out = crowd_join(
            &oracle,
            5,
            &all_pairs(),
            make_task_factory(),
            &JoinConfig::default(),
        )
        .unwrap();
        assert_eq!(out.clusters[0], out.clusters[1]);
        assert_eq!(out.clusters[1], out.clusters[2]);
        assert_eq!(out.clusters[3], out.clusters[4]);
        assert_ne!(out.clusters[0], out.clusters[3]);
        assert_eq!(out.contradictions, 0);
    }

    #[test]
    fn transitivity_reduces_pairs_asked() {
        let run = |use_transitivity: bool| -> JoinOutcome {
            let oracle = TruthfulOracle::new(1e9);
            crowd_join(
                &oracle,
                5,
                &all_pairs(),
                make_task_factory(),
                &JoinConfig {
                    use_transitivity,
                    votes_per_pair: 1,
                    order: AskOrder::SimilarityDesc,
                },
            )
            .unwrap()
        };
        let with = run(true);
        let without = run(false);
        assert_eq!(without.pairs_asked, 10);
        assert!(
            with.pairs_asked < without.pairs_asked,
            "transitivity asked {} vs {}",
            with.pairs_asked,
            without.pairs_asked
        );
        assert!(with.deduced_same + with.deduced_different > 0);
        // Same clustering either way.
        assert_eq!(with.clusters, without.clusters);
    }

    #[test]
    fn similarity_order_maximizes_deductions_on_this_instance() {
        // With similarity-desc order, the 4 intra-entity pairs (sim 0.9)
        // come first: 0-1, 0-2 asked, 1-2 deduced, 3-4 asked. Then one
        // cross pair fixes cluster-vs-cluster, and the remaining 5 cross
        // pairs are all deduced negative.
        let oracle = TruthfulOracle::new(1e9);
        let out = crowd_join(
            &oracle,
            5,
            &all_pairs(),
            make_task_factory(),
            &JoinConfig {
                votes_per_pair: 1,
                use_transitivity: true,
                order: AskOrder::SimilarityDesc,
            },
        )
        .unwrap();
        assert_eq!(out.pairs_asked, 4, "3 must-links + 1 cross ask");
        assert_eq!(out.deduced_same, 1);
        assert_eq!(out.deduced_different, 5);
    }

    #[test]
    fn votes_per_pair_multiplies_cost() {
        let oracle = TruthfulOracle::new(1e9);
        let out = crowd_join(
            &oracle,
            5,
            &pairs(&[(0, 1), (3, 4)]),
            make_task_factory(),
            &JoinConfig {
                votes_per_pair: 5,
                use_transitivity: true,
                order: AskOrder::Input,
            },
        )
        .unwrap();
        assert_eq!(out.pairs_asked, 2);
        assert_eq!(out.questions_asked, 10);
    }

    #[test]
    fn budget_exhaustion_stops_gracefully() {
        let oracle = TruthfulOracle::new(3.0);
        let out = crowd_join(
            &oracle,
            5,
            &all_pairs(),
            make_task_factory(),
            &JoinConfig {
                votes_per_pair: 1,
                use_transitivity: true,
                order: AskOrder::SimilarityDesc,
            },
        )
        .unwrap();
        assert_eq!(out.questions_asked, 3);
        // Clustering is whatever was learned so far — still a valid labeling.
        assert_eq!(out.clusters.len(), 5);
    }

    #[test]
    fn lying_crowd_on_one_pair_yields_contradiction_bookkeeping() {
        // Oracle answers truth except for pair (0,2), where it lies "no".
        struct LyingOracle {
            n: Cell<u64>,
        }
        impl CrowdOracle for LyingOracle {
            fn ask_one(&self, task: &Task) -> Result<Answer> {
                let n = self.n.get() + 1;
                self.n.set(n);
                let lie = task.prompt.contains("0 vs 2");
                let truth = task.truth.clone().unwrap();
                let value = if lie { AnswerValue::Choice(0) } else { truth };
                Ok(Answer::bare(task.id, WorkerId::new(n), value))
            }
            fn remaining_budget(&self) -> Option<f64> {
                None
            }
            fn answers_delivered(&self) -> u64 {
                self.n.get()
            }
        }
        // Input order chosen so 0-1 and 1-2 merge first; the lying answer
        // on 0-2 then contradicts positive transitivity. Transitivity off
        // so the pair actually gets asked.
        let cand = pairs(&[(0, 1), (1, 2), (0, 2)]);
        let oracle = LyingOracle { n: Cell::new(0) };
        let out = crowd_join(
            &oracle,
            3,
            &cand,
            make_task_factory(),
            &JoinConfig {
                votes_per_pair: 1,
                use_transitivity: false,
                order: AskOrder::Input,
            },
        )
        .unwrap();
        assert_eq!(out.contradictions, 1);
        // The cluster stays merged (first verdicts win).
        assert_eq!(out.clusters[0], out.clusters[2]);
    }

    #[test]
    fn propagates_non_resource_errors() {
        struct BrokenOracle;
        impl CrowdOracle for BrokenOracle {
            fn ask_one(&self, _: &Task) -> Result<Answer> {
                Err(CrowdError::Execution("wire fault".into()))
            }
            fn remaining_budget(&self) -> Option<f64> {
                None
            }
            fn answers_delivered(&self) -> u64 {
                0
            }
        }
        let oracle = BrokenOracle;
        let err = crowd_join(
            &oracle,
            3,
            &pairs(&[(0, 1)]),
            make_task_factory(),
            &JoinConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CrowdError::Execution(_)));
    }
}
