//! HIT batching for crowd joins (CrowdER-style).
//!
//! Showing workers one pair per HIT wastes money: a HIT that displays `h`
//! records lets one worker judge all `h·(h−1)/2` pairs among them at once.
//! CrowdER (Wang et al., 2012) contrasts two batching schemes:
//!
//! * **Pair-based** — pack `b` candidate pairs per HIT; cost is
//!   `⌈|pairs| / b⌉` HITs.
//! * **Cluster-based** — choose *record groups* of size ≤ `h` such that
//!   every candidate pair appears together in some group. Because
//!   candidate pairs cluster around duplicate entities, a good grouping
//!   covers many pairs per HIT; finding the minimum grouping is NP-hard
//!   and CrowdER uses a greedy heuristic, reproduced here.
//!
//! Experiment E13 sweeps both against the HIT size.

use std::collections::{HashMap, HashSet};

use super::blocking::CandidatePair;

/// One cluster-based HIT: a group of records shown together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordHit {
    /// The records shown in this HIT (sorted, deduplicated).
    pub records: Vec<usize>,
}

impl RecordHit {
    /// The unordered record pairs this HIT lets a worker judge.
    pub fn covered_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, &a) in self.records.iter().enumerate() {
            for &b in &self.records[i + 1..] {
                out.push((a.min(b), a.max(b)));
            }
        }
        out
    }
}

/// Packs candidate pairs into HITs of `pairs_per_hit` pairs each, in the
/// given order. Returns the chunks.
///
/// # Panics
/// Panics if `pairs_per_hit == 0`.
pub fn pair_based_hits(
    pairs: &[CandidatePair],
    pairs_per_hit: usize,
) -> Vec<Vec<(usize, usize)>> {
    assert!(pairs_per_hit > 0, "HITs must hold at least one pair");
    pairs
        .chunks(pairs_per_hit)
        .map(|chunk| chunk.iter().map(|p| (p.a, p.b)).collect())
        .collect()
}

/// Greedy cluster-based HIT generation: repeatedly grow a record group of
/// size ≤ `records_per_hit`, always adding the record that covers the most
/// still-uncovered candidate pairs with the group (ties → smallest id),
/// until every candidate pair is covered by some HIT.
///
/// # Panics
/// Panics if `records_per_hit < 2` (a group of one covers nothing).
pub fn cluster_based_hits(pairs: &[CandidatePair], records_per_hit: usize) -> Vec<RecordHit> {
    assert!(records_per_hit >= 2, "groups must hold at least two records");
    // Adjacency over candidate pairs. Hash-ordered containers are safe
    // here: every greedy selection below (seed, best addition, reseed) is
    // resolved by a total order — (gain, smallest id) — so enumeration
    // order cannot reach the output (determinism contract, DET001).
    let mut adjacency: HashMap<usize, HashSet<usize>> = HashMap::new();
    let mut uncovered: HashSet<(usize, usize)> = HashSet::new();
    for p in pairs {
        let key = (p.a.min(p.b), p.a.max(p.b));
        if uncovered.insert(key) {
            adjacency.entry(key.0).or_default().insert(key.1);
            adjacency.entry(key.1).or_default().insert(key.0);
        }
    }

    let uncovered_degree = |r: usize, uncovered: &HashSet<(usize, usize)>,
                            adjacency: &HashMap<usize, HashSet<usize>>|
     -> usize {
        adjacency
            .get(&r)
            .map(|ns| {
                ns.iter()
                    .filter(|&&n| uncovered.contains(&(r.min(n), r.max(n))))
                    .count()
            })
            .unwrap_or(0)
    };

    let mut hits = Vec::new();
    while !uncovered.is_empty() {
        // Seed: the record touching the most uncovered pairs.
        let &seed = adjacency
            .keys()
            .max_by_key(|&&r| (uncovered_degree(r, &uncovered, &adjacency), std::cmp::Reverse(r)))
            .expect("uncovered pairs imply records"); // crowdkit-lint: allow(PANIC001) — adjacency indexes every record of every uncovered pair, so it is non-empty here
        let mut group: Vec<usize> = vec![seed];
        let mut group_set: HashSet<usize> = [seed].into();

        while group.len() < records_per_hit {
            // Candidate additions: neighbours of the group.
            let mut best: Option<(usize, usize)> = None; // (gain, record)
            let mut seen: HashSet<usize> = HashSet::new();
            for &g in &group {
                if let Some(ns) = adjacency.get(&g) {
                    for &n in ns {
                        if group_set.contains(&n) || !seen.insert(n) {
                            continue;
                        }
                        let gain = group
                            .iter()
                            .filter(|&&m| uncovered.contains(&(n.min(m), n.max(m))))
                            .count();
                        if gain > 0 {
                            let better = match best {
                                None => true,
                                Some((bg, br)) => gain > bg || (gain == bg && n < br),
                            };
                            if better {
                                best = Some((gain, n));
                            }
                        }
                    }
                }
            }
            match best {
                Some((_, r)) => {
                    group.push(r);
                    group_set.insert(r);
                }
                None => {
                    // No neighbour adds coverage: if space remains (at
                    // least 2 slots), pack another cluster into the same
                    // HIT by reseeding from the remaining uncovered pairs
                    // (CrowdER packs multiple small clusters per HIT).
                    if group.len() + 2 > records_per_hit {
                        break;
                    }
                    let reseed = adjacency
                        .keys()
                        .filter(|r| !group_set.contains(r))
                        .map(|&r| (uncovered_degree(r, &uncovered, &adjacency), r))
                        .filter(|&(d, _)| d > 0)
                        .max_by_key(|&(d, r)| (d, std::cmp::Reverse(r)));
                    match reseed {
                        Some((_, r)) => {
                            group.push(r);
                            group_set.insert(r);
                        }
                        None => break,
                    }
                }
            }
        }

        group.sort_unstable();
        // Mark everything inside the group covered.
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                uncovered.remove(&(a.min(b), a.max(b)));
            }
        }
        hits.push(RecordHit { records: group });
    }
    hits
}

/// True if every candidate pair appears together in at least one HIT.
pub fn hits_cover_all(pairs: &[CandidatePair], hits: &[RecordHit]) -> bool {
    let mut covered: HashSet<(usize, usize)> = HashSet::new();
    for h in hits {
        covered.extend(h.covered_pairs());
    }
    pairs
        .iter()
        .all(|p| covered.contains(&(p.a.min(p.b), p.a.max(p.b))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(ps: &[(usize, usize)]) -> Vec<CandidatePair> {
        ps.iter()
            .map(|&(a, b)| CandidatePair {
                a,
                b,
                similarity: 0.5,
            })
            .collect()
    }

    #[test]
    fn pair_based_chunks_exactly() {
        let ps = pairs(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let hits = pair_based_hits(&ps, 2);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0], vec![(0, 1), (1, 2)]);
        assert_eq!(hits[2], vec![(4, 5)]);
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn pair_based_rejects_zero() {
        let _ = pair_based_hits(&[], 0);
    }

    #[test]
    fn cluster_based_covers_everything() {
        // A 4-clique of candidates (records 0-3 all pairwise similar) plus
        // an isolated pair (7, 8).
        let mut ps = Vec::new();
        for a in 0..4usize {
            for b in (a + 1)..4 {
                ps.push((a, b));
            }
        }
        ps.push((7, 8));
        let cands = pairs(&ps);
        let hits = cluster_based_hits(&cands, 4);
        assert!(hits_cover_all(&cands, &hits));
        // The clique fits in one HIT of 4 records; the pair takes another.
        assert_eq!(hits.len(), 2, "hits: {hits:?}");
    }

    #[test]
    fn cluster_based_beats_pair_based_on_cliquey_data() {
        // Candidates around duplicate groups: three 4-cliques.
        let mut ps = Vec::new();
        for g in 0..3usize {
            let base = g * 4;
            for a in 0..4 {
                for b in (a + 1)..4 {
                    ps.push((base + a, base + b));
                }
            }
        }
        let cands = pairs(&ps); // 18 pairs
        let cluster = cluster_based_hits(&cands, 4);
        // Pair-based with the same *display capacity*: a 4-record HIT shows
        // 6 pairs, so compare against 6 pairs/HIT.
        let pairwise = pair_based_hits(&cands, 6);
        assert!(hits_cover_all(&cands, &cluster));
        assert!(cluster.len() <= pairwise.len());
        assert_eq!(cluster.len(), 3, "one HIT per clique");
    }

    #[test]
    fn cluster_based_respects_group_size() {
        let mut ps = Vec::new();
        for a in 0..10usize {
            for b in (a + 1)..10 {
                ps.push((a, b));
            }
        }
        let cands = pairs(&ps);
        let hits = cluster_based_hits(&cands, 3);
        assert!(hits.iter().all(|h| h.records.len() <= 3));
        assert!(hits_cover_all(&cands, &hits));
    }

    #[test]
    fn cluster_based_handles_chains() {
        // A path graph: 0-1-2-3-4. Groups of 3 cover two path edges each;
        // non-candidate pairs inside a group are harmless.
        let cands = pairs(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let hits = cluster_based_hits(&cands, 3);
        assert!(hits_cover_all(&cands, &hits));
        assert!(hits.len() <= 3);
    }

    #[test]
    fn empty_input_produces_no_hits() {
        assert!(cluster_based_hits(&[], 4).is_empty());
        assert!(pair_based_hits(&[], 5).is_empty());
        assert!(hits_cover_all(&[], &[]));
    }

    #[test]
    #[should_panic(expected = "at least two records")]
    fn cluster_based_rejects_tiny_groups() {
        let _ = cluster_based_hits(&[], 1);
    }

    #[test]
    fn covered_pairs_enumerates_the_group() {
        let h = RecordHit {
            records: vec![1, 4, 7],
        };
        assert_eq!(h.covered_pairs(), vec![(1, 4), (1, 7), (4, 7)]);
    }

    #[test]
    fn duplicate_candidate_pairs_are_deduplicated() {
        let cands = pairs(&[(0, 1), (1, 0), (0, 1)]);
        let hits = cluster_based_hits(&cands, 2);
        assert_eq!(hits.len(), 1);
        assert!(hits_cover_all(&cands, &hits));
    }
}
