//! Union-find with cannot-link constraints — the data structure behind
//! transitivity deduction in crowd entity resolution.
//!
//! Matches are must-link edges (union); non-matches are cannot-link edges
//! between cluster representatives. Both relations are closed under the
//! deduction rules:
//!
//! * `same(a, b) ∧ same(b, c) ⇒ same(a, c)` — free via union-find.
//! * `same(a, b) ∧ diff(b, c) ⇒ diff(a, c)` — maintained by merging
//!   cannot-link adjacency sets on union.

use std::collections::{HashMap, HashSet};

/// Union-find over `n` items with cannot-link tracking.
#[derive(Debug, Clone)]
pub struct ConstraintClustering {
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// Cannot-link adjacency between *representatives*.
    different: HashMap<usize, HashSet<usize>>,
}

impl ConstraintClustering {
    /// Creates `n` singleton clusters with no constraints.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
            different: HashMap::new(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if there are no items.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `i`'s cluster (with path compression).
    pub fn find(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = i;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Whether `a` and `b` are known to be the same entity.
    pub fn known_same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Whether `a` and `b` are known to be different entities.
    pub fn known_different(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.different
            .get(&ra)
            .map(|s| s.contains(&rb))
            .unwrap_or(false)
    }

    /// Records that `a` and `b` match, merging their clusters and the
    /// cannot-link sets of both representatives.
    ///
    /// Returns `false` (and does nothing) if the union would contradict a
    /// known cannot-link constraint — the caller decides how to handle the
    /// inconsistency (with noisy crowds, contradictions do happen).
    pub fn record_same(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return true;
        }
        if self.known_different(ra, rb) {
            return false;
        }
        // Union by rank.
        let (winner, loser) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        if self.rank[winner] == self.rank[loser] {
            self.rank[winner] += 1;
        }
        self.parent[loser] = winner;

        // Merge the loser's cannot-link set into the winner's and repoint
        // third-party references.
        if let Some(loser_diffs) = self.different.remove(&loser) {
            for other in loser_diffs {
                if let Some(set) = self.different.get_mut(&other) {
                    set.remove(&loser);
                    set.insert(winner);
                }
                self.different.entry(winner).or_default().insert(other);
            }
        }
        true
    }

    /// Records that `a` and `b` are different entities.
    ///
    /// Returns `false` (and does nothing) if they are already known to be
    /// the same.
    pub fn record_different(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.different.entry(ra).or_default().insert(rb);
        self.different.entry(rb).or_default().insert(ra);
        true
    }

    /// Dense cluster labels: items in the same cluster share a label, and
    /// labels are assigned by first appearance (so output is deterministic).
    pub fn labels(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut label_of_root: HashMap<usize, usize> = HashMap::new();
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let r = self.find(i);
            let next = label_of_root.len();
            let l = *label_of_root.entry(r).or_insert(next);
            labels.push(l);
        }
        labels
    }

    /// Number of clusters.
    pub fn num_clusters(&mut self) -> usize {
        let n = self.len();
        let mut roots = HashSet::new();
        for i in 0..n {
            roots.insert(self.find(i));
        }
        roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_unrelated() {
        let mut c = ConstraintClustering::new(3);
        assert!(!c.known_same(0, 1));
        assert!(!c.known_different(0, 1));
        assert_eq!(c.num_clusters(), 3);
    }

    #[test]
    fn positive_transitivity() {
        let mut c = ConstraintClustering::new(4);
        assert!(c.record_same(0, 1));
        assert!(c.record_same(1, 2));
        assert!(c.known_same(0, 2), "a=b ∧ b=c ⇒ a=c");
        assert!(!c.known_same(0, 3));
        assert_eq!(c.num_clusters(), 2);
    }

    #[test]
    fn negative_transitivity() {
        let mut c = ConstraintClustering::new(3);
        assert!(c.record_same(0, 1));
        assert!(c.record_different(1, 2));
        assert!(c.known_different(0, 2), "a=b ∧ b≠c ⇒ a≠c");
    }

    #[test]
    fn negative_transitivity_after_union() {
        // diff recorded first, union second: constraint must follow the
        // merged representative.
        let mut c = ConstraintClustering::new(4);
        assert!(c.record_different(0, 3));
        assert!(c.record_same(0, 1));
        assert!(c.record_same(1, 2));
        assert!(c.known_different(2, 3), "constraint survives two unions");
    }

    #[test]
    fn contradictions_are_rejected_not_applied() {
        let mut c = ConstraintClustering::new(3);
        assert!(c.record_different(0, 1));
        assert!(!c.record_same(0, 1), "cannot merge cannot-linked items");
        assert!(!c.known_same(0, 1));

        let mut c2 = ConstraintClustering::new(2);
        assert!(c2.record_same(0, 1));
        assert!(!c2.record_different(0, 1), "cannot split merged items");
    }

    #[test]
    fn labels_are_dense_and_consistent() {
        let mut c = ConstraintClustering::new(5);
        c.record_same(0, 2);
        c.record_same(3, 4);
        let labels = c.labels();
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[3]);
        // Dense labels start at 0.
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
    }

    #[test]
    fn self_pairs_are_trivially_same() {
        let mut c = ConstraintClustering::new(2);
        assert!(c.known_same(1, 1));
        assert!(!c.known_different(1, 1));
        assert!(c.record_same(1, 1));
    }

    #[test]
    fn big_chain_of_unions_stays_correct() {
        let n = 1000;
        let mut c = ConstraintClustering::new(n);
        for i in 0..n - 1 {
            assert!(c.record_same(i, i + 1));
        }
        assert!(c.known_same(0, n - 1));
        assert_eq!(c.num_clusters(), 1);
    }
}
