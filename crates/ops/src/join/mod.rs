//! Crowd join / entity resolution.
//!
//! The canonical crowd-powered operator (CrowdER, Wang et al. 2012; the
//! transitivity line of work, Wang/Vondrák et al. 2013–14). Resolving which
//! records refer to the same real-world entity is machine-hard but
//! crowd-easy — at a price of one question per candidate pair. The cost
//! ladder the literature climbs, and this module implements:
//!
//! 1. **All pairs** — ask the crowd about every `n·(n−1)/2` pair.
//! 2. **Blocking** ([`blocking`]) — only pairs whose machine similarity
//!    clears a threshold reach the crowd.
//! 3. **Transitivity deduction** ([`verify`]) — answers already given imply
//!    others: `a=b ∧ b=c ⇒ a=c` (positive) and `a=b ∧ b≠c ⇒ a≠c`
//!    (negative), so those pairs are never asked. Ask order matters:
//!    asking high-similarity (likely-match) pairs first maximizes the
//!    deduction yield — experiment E12 ablates exactly this.
//!
//! [`cluster`] provides the union-find with "cannot-link" constraint
//! tracking that powers the deduction.

pub mod batching;
pub mod blocking;
pub mod cluster;
pub mod verify;

pub use batching::{cluster_based_hits, hits_cover_all, pair_based_hits, RecordHit};
pub use blocking::{all_pairs_count, candidate_pairs, jaccard, tokenize, CandidatePair};
pub use cluster::ConstraintClustering;
pub use verify::{crowd_join, AskOrder, JoinConfig, JoinOutcome};
