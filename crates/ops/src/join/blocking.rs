//! Machine-side blocking: cheap similarity pruning before the crowd sees
//! any pair.
//!
//! Records are tokenized to lowercase word sets; candidate generation uses
//! an inverted token index so only pairs sharing at least one token are
//! scored, then keeps pairs whose Jaccard similarity clears the threshold.
//! On realistic dirty-duplicate data this removes well over 90 % of the
//! quadratic pair space — the first rung of the crowd-join cost ladder.

use std::collections::{HashMap, HashSet};

/// A machine-scored candidate pair of record indices (`a < b`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidatePair {
    /// Smaller record index.
    pub a: usize,
    /// Larger record index.
    pub b: usize,
    /// Jaccard similarity of the two records' token sets, in `[0, 1]`.
    pub similarity: f64,
}

/// Splits text into a set of lowercase alphanumeric tokens.
pub fn tokenize(text: &str) -> HashSet<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Jaccard similarity of two token sets (1.0 when both are empty: two
/// blank records are indistinguishable).
pub fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Generates candidate pairs with `similarity ≥ threshold`, using an
/// inverted token index so disjoint records are never compared.
///
/// Returned pairs are sorted by descending similarity (the ask order that
/// maximizes transitivity deductions downstream), ties broken by `(a, b)`
/// for determinism.
pub fn candidate_pairs(texts: &[String], threshold: f64) -> Vec<CandidatePair> {
    let token_sets: Vec<HashSet<String>> = texts.iter().map(|t| tokenize(t)).collect();

    // Inverted index: token → records containing it. Hash order cannot
    // reach the output: pairs are deduplicated by key and fully sorted
    // (similarity desc, then ids) before returning (DET001).
    let mut index: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, set) in token_sets.iter().enumerate() {
        for tok in set {
            index.entry(tok.as_str()).or_default().push(i);
        }
    }

    // Collect distinct co-occurring pairs.
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut pairs = Vec::new();
    for postings in index.values() {
        for (x, &i) in postings.iter().enumerate() {
            for &j in &postings[x + 1..] {
                let key = if i < j { (i, j) } else { (j, i) };
                if !seen.insert(key) {
                    continue;
                }
                let sim = jaccard(&token_sets[key.0], &token_sets[key.1]);
                if sim >= threshold {
                    pairs.push(CandidatePair {
                        a: key.0,
                        b: key.1,
                        similarity: sim,
                    });
                }
            }
        }
    }

    pairs.sort_by(|p, q| {
        q.similarity
            .total_cmp(&p.similarity)
            .then_with(|| (p.a, p.b).cmp(&(q.a, q.b)))
    });
    pairs
}

/// Number of pairs in the full quadratic space, for cost-reduction
/// reporting.
pub fn all_pairs_count(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        let t = tokenize("Apple iPhone-12, 64GB!");
        let expect: HashSet<String> = ["apple", "iphone", "12", "64gb"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(t, expect);
    }

    #[test]
    fn jaccard_basics() {
        let a = tokenize("red apple");
        let b = tokenize("green apple");
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        let empty = HashSet::new();
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(jaccard(&a, &empty), 0.0);
    }

    #[test]
    fn candidates_only_include_similar_pairs() {
        let texts = vec![
            "apple iphone 12".to_string(),
            "apple iphone12 black".to_string(),
            "samsung galaxy s20".to_string(),
            "galaxy s20 samsung".to_string(),
        ];
        let pairs = candidate_pairs(&texts, 0.3);
        let keys: Vec<(usize, usize)> = pairs.iter().map(|p| (p.a, p.b)).collect();
        assert!(keys.contains(&(2, 3)), "identical token sets pair up");
        assert!(!keys.contains(&(0, 2)), "disjoint products never pair");
    }

    #[test]
    fn candidates_sorted_by_descending_similarity() {
        let texts = vec![
            "a b c d".to_string(),
            "a b c d".to_string(), // sim 1.0 with 0
            "a b x y".to_string(), // sim 1/3 with 0
        ];
        let pairs = candidate_pairs(&texts, 0.0);
        assert!(pairs.windows(2).all(|w| w[0].similarity >= w[1].similarity));
        assert_eq!((pairs[0].a, pairs[0].b), (0, 1));
    }

    #[test]
    fn disjoint_records_never_scored() {
        let texts = vec!["aaa".to_string(), "bbb".to_string(), "ccc".to_string()];
        let pairs = candidate_pairs(&texts, 0.0);
        assert!(pairs.is_empty(), "no shared token → no candidate");
    }

    #[test]
    fn threshold_prunes() {
        let texts = vec![
            "alpha beta gamma".to_string(),
            "alpha beta delta".to_string(),
        ];
        assert_eq!(candidate_pairs(&texts, 0.9).len(), 0);
        assert_eq!(candidate_pairs(&texts, 0.4).len(), 1);
    }

    #[test]
    fn all_pairs_count_formula() {
        assert_eq!(all_pairs_count(0), 0);
        assert_eq!(all_pairs_count(1), 0);
        assert_eq!(all_pairs_count(4), 6);
        assert_eq!(all_pairs_count(100), 4950);
    }
}
