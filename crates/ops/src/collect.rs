//! Open-world enumeration (crowd COLLECT) with species-richness
//! estimation.
//!
//! "List all restaurants in this neighbourhood" has no closed item set: the
//! operator keeps buying contributions, deduplicates, and must decide when
//! the unseen tail is small enough to stop. The tutorial's treatment leans
//! on species estimation from ecology (the CrowdDB open-world result and
//! Trushkowsky et al.'s CHAO92-based enumeration): the frequency histogram
//! of observed items tells you how much is missing.
//!
//! * [`good_turing_coverage`] — fraction of the answer mass already seen.
//! * [`chao1`] / [`chao92`] — richness estimators (how many distinct items
//!   exist, seen or not).
//! * [`crowd_collect`] — the buying loop with an accumulation curve and
//!   coverage-based stopping.

use std::collections::BTreeMap;

use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;

/// Frequency histogram of collected items.
#[derive(Debug, Clone, Default)]
pub struct ItemCounts {
    // Key-ordered so [`ItemCounts::items`] iterates deterministically.
    counts: BTreeMap<String, u32>,
    total: u64,
}

impl ItemCounts {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one contribution of `item` (normalized: trimmed,
    /// lowercased).
    pub fn record(&mut self, item: &str) {
        let norm = item.trim().to_lowercase();
        if norm.is_empty() {
            return;
        }
        *self.counts.entry(norm).or_insert(0) += 1;
        self.total += 1;
    }

    /// Distinct items observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total contributions recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of items observed exactly `k` times (`f_k`).
    pub fn freq_of_freq(&self, k: u32) -> usize {
        self.counts.values().filter(|&&c| c == k).count()
    }

    /// The observed items, in item order.
    pub fn items(&self) -> impl Iterator<Item = (&str, u32)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

/// Good–Turing sample coverage: `C = 1 − f1 / n`, the estimated
/// probability that the next contribution is an already-seen item.
/// Returns 0 for an empty histogram.
pub fn good_turing_coverage(counts: &ItemCounts) -> f64 {
    let n = counts.total() as f64;
    if n == 0.0 {
        return 0.0;
    }
    (1.0 - counts.freq_of_freq(1) as f64 / n).max(0.0)
}

/// Chao1 richness estimate: `S_obs + f1² / (2·f2)` (bias-corrected form
/// `f1·(f1−1) / (2·(f2+1))` when `f2 = 0`).
pub fn chao1(counts: &ItemCounts) -> f64 {
    let s_obs = counts.distinct() as f64;
    let f1 = counts.freq_of_freq(1) as f64;
    let f2 = counts.freq_of_freq(2) as f64;
    if f2 > 0.0 {
        s_obs + f1 * f1 / (2.0 * f2)
    } else {
        s_obs + f1 * (f1 - 1.0).max(0.0) / 2.0
    }
}

/// Chao92 (coverage-based) richness estimate, the estimator used for
/// crowd enumeration: `Ŝ = S_obs / C + n·(1−C)/C · γ²` where `C` is
/// Good–Turing coverage and `γ²` the squared coefficient of variation of
/// item frequencies (skewed worlds hide more of their tail).
///
/// Falls back to [`chao1`] when coverage is zero (every item seen once).
pub fn chao92(counts: &ItemCounts) -> f64 {
    let n = counts.total() as f64;
    let s_obs = counts.distinct() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let c = good_turing_coverage(counts);
    if c <= 0.0 {
        return chao1(counts);
    }
    let s_over_c = s_obs / c;
    // Squared coefficient of variation (Chao & Lee 1992, eq. 2.13).
    let sum_k: f64 = (1..=u32::MAX)
        .take_while(|&k| counts.freq_of_freq(k) > 0 || k <= 32)
        .map(|k| {
            let fk = counts.freq_of_freq(k) as f64;
            (k as f64) * (k as f64 - 1.0) * fk
        })
        .sum();
    let gamma_sq = ((s_over_c * sum_k) / (n * (n - 1.0)).max(1.0) - 1.0).max(0.0);
    s_over_c + n * (1.0 - c) / c * gamma_sq
}

/// One point of the accumulation curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccumulationPoint {
    /// Contributions bought so far.
    pub answers: u64,
    /// Distinct items observed so far.
    pub distinct: usize,
    /// Chao92 richness estimate at this point.
    pub chao92_estimate: f64,
    /// Good–Turing coverage at this point.
    pub coverage: f64,
}

/// The outcome of an enumeration run.
#[derive(Debug, Clone)]
pub struct CollectOutcome {
    /// Final item histogram.
    pub counts: ItemCounts,
    /// Accumulation curve, one point per crowd answer.
    pub curve: Vec<AccumulationPoint>,
    /// Crowd answers purchased.
    pub questions_asked: usize,
    /// Whether the coverage target stopped collection (vs. the answer cap
    /// or budget).
    pub stopped_by_coverage: bool,
}

/// Buys collection answers for `task` until Good–Turing coverage reaches
/// `coverage_target`, up to `max_answers` contributions.
///
/// The task must be of kind `Collection`; each answer contributes a batch
/// of items.
pub fn crowd_collect<O>(
    oracle: &O,
    task: &Task,
    coverage_target: f64,
    max_answers: u32,
) -> Result<CollectOutcome>
where
    O: CrowdOracle + ?Sized,
{
    if max_answers == 0 {
        return Err(CrowdError::EmptyInput("max_answers must be positive"));
    }
    let mut counts = ItemCounts::new();
    let mut curve = Vec::new();
    let mut asked = 0usize;
    let mut stopped_by_coverage = false;

    while (asked as u32) < max_answers {
        match oracle.ask_one(task) {
            Ok(answer) => {
                asked += 1;
                if let Some(items) = answer.value.as_items() {
                    for item in items {
                        counts.record(item);
                    }
                }
                let coverage = good_turing_coverage(&counts);
                curve.push(AccumulationPoint {
                    answers: asked as u64,
                    distinct: counts.distinct(),
                    chao92_estimate: chao92(&counts),
                    coverage,
                });
                // Require a minimal amount of evidence before trusting
                // coverage (one answer with unique items reads as C = 0,
                // but one answer of duplicates would read C ≈ 1).
                if asked >= 5 && coverage >= coverage_target {
                    stopped_by_coverage = true;
                    break;
                }
            }
            Err(e) if e.is_resource_exhaustion() => break,
            Err(e) => return Err(e),
        }
    }

    Ok(CollectOutcome {
        counts,
        curve,
        questions_asked: asked,
        stopped_by_coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::answer::{Answer, AnswerValue};
    use crowdkit_core::ids::{TaskId, WorkerId};
    use crowdkit_core::task::TaskKind;

    fn hist(pairs: &[(&str, u32)]) -> ItemCounts {
        let mut c = ItemCounts::new();
        for &(item, n) in pairs {
            for _ in 0..n {
                c.record(item);
            }
        }
        c
    }

    #[test]
    fn histogram_normalizes_and_counts() {
        let mut c = ItemCounts::new();
        c.record(" Paris ");
        c.record("paris");
        c.record("Lyon");
        c.record("");
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.total(), 3);
        assert_eq!(c.freq_of_freq(1), 1); // lyon
        assert_eq!(c.freq_of_freq(2), 1); // paris
    }

    #[test]
    fn coverage_zero_when_everything_is_a_singleton() {
        let c = hist(&[("a", 1), ("b", 1)]);
        assert_eq!(good_turing_coverage(&c), 0.0);
    }

    #[test]
    fn coverage_one_when_no_singletons() {
        let c = hist(&[("a", 3), ("b", 2)]);
        assert_eq!(good_turing_coverage(&c), 1.0);
    }

    #[test]
    fn chao1_textbook_value() {
        // S_obs = 3, f1 = 2, f2 = 1 → 3 + 4/2 = 5.
        let c = hist(&[("a", 1), ("b", 1), ("c", 2)]);
        assert_eq!(chao1(&c), 5.0);
    }

    #[test]
    fn chao1_bias_corrected_when_no_doubletons() {
        // S_obs = 2, f1 = 2, f2 = 0 → 2 + 2·1/2 = 3.
        let c = hist(&[("a", 1), ("b", 1)]);
        assert_eq!(chao1(&c), 3.0);
    }

    #[test]
    fn chao92_at_least_observed_richness() {
        let c = hist(&[("a", 5), ("b", 3), ("c", 1), ("d", 1)]);
        assert!(chao92(&c) >= c.distinct() as f64);
    }

    #[test]
    fn chao92_shrinks_toward_observed_as_coverage_grows() {
        let low_cov = hist(&[("a", 1), ("b", 1), ("c", 1), ("d", 2)]);
        let high_cov = hist(&[("a", 5), ("b", 5), ("c", 5), ("d", 5)]);
        let gap = |c: &ItemCounts| chao92(c) - c.distinct() as f64;
        assert!(gap(&low_cov) > gap(&high_cov));
        assert!((chao92(&high_cov) - 4.0).abs() < 1e-9);
    }

    /// Oracle cycling deterministic batches from a fixed pool.
    struct PoolOracle {
        pool: Vec<String>,
        cursor: std::cell::Cell<usize>,
    }

    impl PoolOracle {
        fn new(pool: Vec<String>) -> Self {
            Self {
                pool,
                cursor: std::cell::Cell::new(0),
            }
        }
    }

    impl CrowdOracle for PoolOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            // Head-heavy: batch i returns items [0, i % len, (i*3) % len].
            let n = self.pool.len();
            let i = self.cursor.get();
            self.cursor.set(i + 1);
            let items = vec![
                self.pool[0].clone(),
                self.pool[i % n].clone(),
                self.pool[(i * 3) % n].clone(),
            ];
            Ok(Answer::bare(
                task.id,
                WorkerId::new(i as u64),
                AnswerValue::Items(items),
            ))
        }
        fn remaining_budget(&self) -> Option<f64> {
            None
        }
        fn answers_delivered(&self) -> u64 {
            self.cursor.get() as u64
        }
    }

    fn collection_task() -> Task {
        Task::new(TaskId::new(0), TaskKind::Collection, "enumerate")
    }

    #[test]
    fn collect_accumulates_distinct_items_monotonically() {
        let oracle = PoolOracle::new((0..20).map(|i| format!("item{i}")).collect());
        let out = crowd_collect(&oracle, &collection_task(), 2.0, 30).unwrap();
        assert_eq!(out.questions_asked, 30, "unreachable coverage target runs to cap");
        assert!(!out.stopped_by_coverage);
        assert!(out
            .curve
            .windows(2)
            .all(|w| w[1].distinct >= w[0].distinct));
    }

    #[test]
    fn coverage_stopping_ends_early_on_repetitive_answers() {
        // A pool of 2 items saturates almost immediately.
        let oracle = PoolOracle::new(vec!["a".into(), "b".into()]);
        let out = crowd_collect(&oracle, &collection_task(), 0.9, 100).unwrap();
        assert!(out.stopped_by_coverage);
        assert!(out.questions_asked < 100);
        assert_eq!(out.counts.distinct(), 2);
    }

    #[test]
    fn zero_cap_is_an_error() {
        let oracle = PoolOracle::new(vec!["a".into()]);
        assert!(crowd_collect(&oracle, &collection_task(), 0.9, 0).is_err());
    }
}
