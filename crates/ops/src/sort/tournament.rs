//! Max / top-k via elimination tournaments.
//!
//! When only the best item(s) matter, buying the full comparison graph is
//! wasteful: a single-elimination bracket finds a max candidate in `n − 1`
//! matches, and repeating it on the survivors yields top-k in
//! `O(n + k log n)` matches — the crowd-max strategy of the Qurk/"crowd
//! max" line of work. Each match takes `votes` crowd judgements and is
//! decided by majority, so per-match noise can be suppressed independently
//! of bracket depth. All matches of a bracket round are independent, so
//! they are submitted as one batch and overlap in crowd latency: a round
//! costs one round-trip, not one per match.

use crowdkit_core::answer::Preference;
use crowdkit_core::ask::AskRequest;
use crowdkit_core::error::Result;
use crowdkit_core::ids::{IdGen, TaskId};
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;

/// Outcome of a tournament run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TournamentOutcome {
    /// The winners, best-first (length = requested `k`, or fewer if the
    /// budget died).
    pub winners: Vec<usize>,
    /// Matches played.
    pub matches: usize,
    /// Crowd answers purchased.
    pub questions_asked: usize,
}

/// Single-elimination max over `items` (indices `0..n`).
///
/// Returns the champion plus cost accounting. If the budget dies mid-way,
/// the current bracket leader is returned (best effort).
pub fn crowd_max<O, F>(
    oracle: &O,
    n: usize,
    votes: u32,
    mut make_task: F,
) -> Result<TournamentOutcome>
where
    O: CrowdOracle + ?Sized,
    F: FnMut(TaskId, usize, usize) -> Task,
{
    assert!(n >= 1, "max of zero items is undefined");
    let candidates: Vec<usize> = (0..n).collect();
    let mut ids = IdGen::new();
    let (winner, matches, questions) =
        run_bracket(oracle, &mut ids, candidates, votes, &mut make_task)?;
    Ok(TournamentOutcome {
        winners: vec![winner],
        matches,
        questions_asked: questions,
    })
}

/// Top-k by repeated brackets: find the max, remove it, repeat.
pub fn crowd_top_k<O, F>(
    oracle: &O,
    n: usize,
    k: usize,
    votes: u32,
    mut make_task: F,
) -> Result<TournamentOutcome>
where
    O: CrowdOracle + ?Sized,
    F: FnMut(TaskId, usize, usize) -> Task,
{
    assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n");
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut ids = IdGen::new();
    let mut winners = Vec::with_capacity(k);
    let mut matches = 0usize;
    let mut questions = 0usize;
    for _ in 0..k {
        if remaining.is_empty() {
            break;
        }
        if remaining.len() == 1 {
            winners.push(remaining[0]);
            break;
        }
        let before = oracle.answers_delivered();
        let (winner, m, q) = run_bracket(oracle, &mut ids, remaining.clone(), votes, &mut make_task)?;
        matches += m;
        questions += q;
        winners.push(winner);
        remaining.retain(|&x| x != winner);
        // If the bracket could not buy a single answer, stop asking.
        if oracle.answers_delivered() == before && m > 0 && q == 0 {
            break;
        }
    }
    Ok(TournamentOutcome {
        winners,
        matches,
        questions_asked: questions,
    })
}

/// Runs one single-elimination bracket, batching each round's matches into
/// a single platform request; returns (champion, matches, questions).
///
/// A match whose outcome delivered no answers (budget dead) is a walkover
/// for the left slot, deterministically. Ties also favour the left slot.
fn run_bracket<O, F>(
    oracle: &O,
    ids: &mut IdGen,
    mut round: Vec<usize>,
    votes: u32,
    make_task: &mut F,
) -> Result<(usize, usize, usize)>
where
    O: CrowdOracle + ?Sized,
    F: FnMut(TaskId, usize, usize) -> Task,
{
    let mut matches = 0usize;
    let mut questions = 0usize;
    while round.len() > 1 {
        let mut pairs = Vec::with_capacity(round.len() / 2);
        let mut i = 0;
        while i + 1 < round.len() {
            pairs.push((round[i], round[i + 1]));
            i += 2;
        }
        let bye = (i < round.len()).then(|| round[i]);

        let tasks: Vec<Task> = pairs
            .iter()
            .map(|&(a, b)| make_task(ids.next_task(), a, b))
            .collect();
        let reqs: Vec<AskRequest<'_>> = tasks
            .iter()
            .map(|t| AskRequest::new(t).with_redundancy(votes.max(1) as usize))
            .collect();
        let outcomes = oracle.ask_batch(&reqs)?;

        let mut next = Vec::with_capacity(pairs.len() + 1);
        for (&(a, b), out) in pairs.iter().zip(&outcomes) {
            if let Some(e) = &out.shortfall {
                if !e.is_resource_exhaustion() {
                    return Err(e.clone());
                }
            }
            if out.answers.is_empty() {
                // Budget dead: advance `a` by walkover.
                next.push(a);
                continue;
            }
            let mut left = 0u32;
            let mut right = 0u32;
            for answer in &out.answers {
                match answer.value.as_preference() {
                    Some(Preference::Left) => left += 1,
                    Some(Preference::Right) => right += 1,
                    None => {}
                }
            }
            matches += 1;
            questions += out.answers.len();
            next.push(if right > left { b } else { a });
        }
        if let Some(x) = bye {
            next.push(x);
        }
        round = next;
    }
    Ok((round[0], matches, questions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::answer::{Answer, AnswerValue};
    use crowdkit_core::budget::Budget;
    use crowdkit_core::ids::{ItemId, WorkerId};
    use std::cell::{Cell, RefCell};

    /// Oracle answering pairwise tasks per attached truth.
    struct TruthfulOracle {
        budget: RefCell<Budget>,
        next_worker: Cell<u64>,
        delivered: Cell<u64>,
    }

    impl TruthfulOracle {
        fn new(limit: f64) -> Self {
            Self {
                budget: RefCell::new(Budget::new(limit)),
                next_worker: Cell::new(0),
                delivered: Cell::new(0),
            }
        }
    }

    impl CrowdOracle for TruthfulOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            self.budget.borrow_mut().debit(1.0)?;
            self.delivered.set(self.delivered.get() + 1);
            let w = WorkerId::new(self.next_worker.get());
            self.next_worker.set(self.next_worker.get() + 1);
            Ok(Answer::bare(task.id, w, task.truth.clone().unwrap()))
        }
        fn remaining_budget(&self) -> Option<f64> {
            Some(self.budget.borrow().remaining())
        }
        fn answers_delivered(&self) -> u64 {
            self.delivered.get()
        }
    }

    /// Item index IS its latent strength: higher index beats lower.
    fn make_task(id: TaskId, a: usize, b: usize) -> Task {
        let pref = if a > b { Preference::Left } else { Preference::Right };
        Task::pairwise(id, ItemId::new(a as u64), ItemId::new(b as u64))
            .with_truth(AnswerValue::Prefer(pref))
    }

    #[test]
    fn crowd_max_finds_the_strongest_item() {
        let oracle = TruthfulOracle::new(1e9);
        let out = crowd_max(&oracle, 16, 1, make_task).unwrap();
        assert_eq!(out.winners, vec![15]);
        assert_eq!(out.matches, 15, "single elimination plays n−1 matches");
        assert_eq!(out.questions_asked, 15);
    }

    #[test]
    fn crowd_max_with_odd_field_and_votes() {
        let oracle = TruthfulOracle::new(1e9);
        let out = crowd_max(&oracle, 7, 3, make_task).unwrap();
        assert_eq!(out.winners, vec![6]);
        assert_eq!(out.matches, 6);
        assert_eq!(out.questions_asked, 18);
    }

    #[test]
    fn top_k_returns_best_first() {
        let oracle = TruthfulOracle::new(1e9);
        let out = crowd_top_k(&oracle, 8, 3, 1, make_task).unwrap();
        assert_eq!(out.winners, vec![7, 6, 5]);
    }

    #[test]
    fn top_k_equals_n_returns_full_order() {
        let oracle = TruthfulOracle::new(1e9);
        let out = crowd_top_k(&oracle, 4, 4, 1, make_task).unwrap();
        assert_eq!(out.winners, vec![3, 2, 1, 0]);
    }

    #[test]
    fn budget_exhaustion_yields_best_effort_champion() {
        // Budget for only 2 of the 3 matches of a 4-item bracket.
        let oracle = TruthfulOracle::new(2.0);
        let out = crowd_max(&oracle, 4, 1, make_task).unwrap();
        assert_eq!(out.winners.len(), 1);
        assert_eq!(out.questions_asked, 2);
        // Finals was a walkover for the left slot (winner of match 1 = 1).
        assert_eq!(out.winners, vec![1]);
    }

    #[test]
    #[should_panic(expected = "1 ≤ k ≤ n")]
    fn top_k_rejects_k_zero() {
        let oracle = TruthfulOracle::new(10.0);
        let _ = crowd_top_k(&oracle, 3, 0, 1, make_task);
    }

    #[test]
    fn single_item_tournament_is_free() {
        let oracle = TruthfulOracle::new(10.0);
        let out = crowd_max(&oracle, 1, 3, make_task).unwrap();
        assert_eq!(out.winners, vec![0]);
        assert_eq!(out.questions_asked, 0);
    }
}
