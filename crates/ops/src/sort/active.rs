//! Active comparison sampling: spend the next comparison where the
//! ranking is least certain.
//!
//! Random pair sampling wastes budget re-confirming pairs whose order is
//! already clear. The active-ranking literature picks the next pair by
//! uncertainty instead; here we use the classic score-gap heuristic:
//! maintain Bradley–Terry strengths over the comparisons so far and, in
//! each round, buy comparisons for the yet-uncompared (or least-compared)
//! pairs whose current strength gap is smallest. Experiment E4 contrasts
//! this with uniform sampling at equal budgets.

use std::collections::HashMap;

use crowdkit_core::answer::Preference;
use crowdkit_core::ask::AskRequest;
use crowdkit_core::error::Result;
use crowdkit_core::ids::{IdGen, TaskId};
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;

use super::rankers::bradley_terry;
use super::ComparisonGraph;

/// Settings for [`active_comparisons`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveConfig {
    /// Crowd votes per selected pair.
    pub votes: u32,
    /// Pairs selected between score refreshes (larger = fewer BTL runs,
    /// less adaptive).
    pub round_size: usize,
}

impl Default for ActiveConfig {
    fn default() -> Self {
        Self {
            votes: 1,
            round_size: 25,
        }
    }
}

/// Buys up to `budget` pair selections (each worth `config.votes` crowd
/// questions) using score-gap-driven selection, and returns the resulting
/// comparison graph.
///
/// Selection is adaptive *between* rounds; the pairs chosen within one
/// round are independent and go to the platform as a single batch, so each
/// round costs one round of crowd latency. Ties in the gap are broken by
/// comparison count (least compared first), then pair order, so runs are
/// deterministic.
pub fn active_comparisons<O, F>(
    oracle: &O,
    n: usize,
    budget: usize,
    config: ActiveConfig,
    mut make_task: F,
) -> Result<ComparisonGraph>
where
    O: CrowdOracle + ?Sized,
    F: FnMut(TaskId, usize, usize) -> Task,
{
    assert!(n >= 2, "need at least two items to rank");
    let mut graph = ComparisonGraph::new(n);
    let mut ids = IdGen::new();
    let mut compared: HashMap<(usize, usize), u32> = HashMap::new();
    let mut remaining = budget;

    while remaining > 0 {
        // Refresh strengths from everything bought so far. The first round
        // has no data: scores are all equal and selection degenerates to
        // least-compared order, i.e. a covering pass.
        let scores = if graph.total_comparisons() > 0 {
            bradley_terry(&graph, 100, 1e-8)
        } else {
            vec![0.0; n]
        };

        // Rank candidate pairs by (comparison count, |score gap|).
        let mut candidates: Vec<(u32, f64, usize, usize)> = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let count = compared.get(&(a, b)).copied().unwrap_or(0);
                let gap = (scores[a] - scores[b]).abs();
                candidates.push((count, gap, a, b));
            }
        }
        candidates.sort_by(|x, y| {
            x.0.cmp(&y.0)
                .then_with(|| x.1.total_cmp(&y.1))
                .then_with(|| (x.2, x.3).cmp(&(y.2, y.3)))
        });

        // Greedily fill the round, bounding how often one item may appear
        // in it. Without the bound, the all-ties first round would pick
        // (0,1), (0,2), … — every pair sharing item 0 — and sparse budgets
        // would never cover the item space. The bound also keeps the
        // round's pairs spread across items, which is what lets them run
        // as one parallel batch of independent questions.
        let round_len = config.round_size.min(remaining);
        let cap = ((2 * round_len).div_ceil(n.max(1))).max(1) as u32;
        let mut used = vec![0u32; n];
        let mut selected: Vec<(usize, usize)> = Vec::with_capacity(round_len);
        for &(_, _, a, b) in &candidates {
            if selected.len() >= round_len {
                break;
            }
            if used[a] < cap && used[b] < cap {
                used[a] += 1;
                used[b] += 1;
                selected.push((a, b));
            }
        }
        // If the degree bound left slots open (small n, large rounds),
        // fill them in plain candidate order.
        if selected.len() < round_len {
            for &(_, _, a, b) in &candidates {
                if selected.len() >= round_len {
                    break;
                }
                if !selected.contains(&(a, b)) {
                    selected.push((a, b));
                }
            }
        }
        if selected.is_empty() {
            break;
        }
        remaining -= selected.len();
        let tasks: Vec<Task> = selected
            .iter()
            .map(|&(a, b)| {
                *compared.entry((a, b)).or_insert(0) += 1;
                make_task(ids.next_task(), a, b)
            })
            .collect();
        let reqs: Vec<AskRequest<'_>> = tasks
            .iter()
            .map(|t| AskRequest::new(t).with_redundancy(config.votes.max(1) as usize))
            .collect();
        let mut exhausted = false;
        for (&(a, b), out) in selected.iter().zip(oracle.ask_batch(&reqs)?.iter()) {
            match &out.shortfall {
                Some(e) if e.is_resource_exhaustion() => exhausted = true,
                Some(e) => return Err(e.clone()),
                None => {}
            }
            for answer in &out.answers {
                match answer.value.as_preference() {
                    Some(Preference::Left) => graph.record(a, b),
                    Some(Preference::Right) => graph.record(b, a),
                    None => {}
                }
            }
        }
        if exhausted {
            break;
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::order_by_scores;
    use crowdkit_core::answer::AnswerValue;
    use crowdkit_core::ids::{ItemId, WorkerId};

    /// Oracle where item index = latent strength, with deterministic
    /// pseudo-noise flipping ~15 % of verdicts.
    struct NoisyOracle {
        calls: std::cell::Cell<u64>,
    }

    impl NoisyOracle {
        fn new() -> Self {
            Self {
                calls: std::cell::Cell::new(0),
            }
        }
    }

    impl CrowdOracle for NoisyOracle {
        fn ask_one(&self, task: &Task) -> Result<crowdkit_core::answer::Answer> {
            let calls = self.calls.get() + 1;
            self.calls.set(calls);
            let truth = task.truth.clone().unwrap();
            let flip = calls.is_multiple_of(7); // ~14 % deterministic noise
            let value = match truth {
                AnswerValue::Prefer(p) => {
                    AnswerValue::Prefer(if flip { p.flip() } else { p })
                }
                other => other,
            };
            Ok(crowdkit_core::answer::Answer::bare(
                task.id,
                WorkerId::new(calls),
                value,
            ))
        }
        fn remaining_budget(&self) -> Option<f64> {
            None
        }
        fn answers_delivered(&self) -> u64 {
            self.calls.get()
        }
    }

    fn make_task(id: TaskId, a: usize, b: usize) -> Task {
        let pref = if a > b { Preference::Left } else { Preference::Right };
        Task::pairwise(id, ItemId::new(a as u64), ItemId::new(b as u64))
            .with_truth(AnswerValue::Prefer(pref))
    }

    #[test]
    fn first_round_covers_uncompared_pairs() {
        let oracle = NoisyOracle::new();
        let g = active_comparisons(
            &oracle,
            10,
            45,
            ActiveConfig {
                votes: 1,
                round_size: 45,
            },
            make_task,
        )
        .unwrap();
        // Budget = the full pair space and a single covering round: every
        // pair compared exactly once.
        assert_eq!(g.distinct_pairs(), 45);
        assert_eq!(g.total_comparisons(), 45);
    }

    #[test]
    fn budget_is_respected_in_crowd_questions() {
        let oracle = NoisyOracle::new();
        let g = active_comparisons(
            &oracle,
            8,
            20,
            ActiveConfig {
                votes: 3,
                round_size: 5,
            },
            make_task,
        )
        .unwrap();
        assert_eq!(g.total_comparisons(), 60, "20 selections × 3 votes");
        assert_eq!(oracle.answers_delivered(), 60);
    }

    #[test]
    fn active_ranking_recovers_order_with_noise() {
        let oracle = NoisyOracle::new();
        let g = active_comparisons(&oracle, 12, 150, ActiveConfig::default(), make_task)
            .unwrap();
        let scores = bradley_terry(&g, 200, 1e-9);
        let order = order_by_scores(&scores);
        // The top item must be found exactly; the full order nearly.
        assert_eq!(order[0], 11, "order {order:?}");
        let tau = crowdkit_core::metrics::kendall_tau(
            &scores,
            &(0..12).map(|i| i as f64).collect::<Vec<_>>(),
        );
        assert!(tau > 0.8, "tau {tau}");
    }

    #[test]
    fn revisits_concentrate_on_close_pairs() {
        // After covering all pairs once, extra budget should go to pairs of
        // adjacent (hard) items, not to 0-vs-11 (easy).
        let oracle = NoisyOracle::new();
        let n = 8;
        let full = n * (n - 1) / 2; // 28
        let g = active_comparisons(
            &oracle,
            n,
            full + 14,
            ActiveConfig {
                votes: 1,
                round_size: 7,
            },
            make_task,
        )
        .unwrap();
        // Extremes compared once; some close pair got a revisit.
        let (easy_a, easy_b) = (0, n - 1);
        let easy = {
            let (x, y) = g.tally(easy_a, easy_b);
            x + y
        };
        assert!(easy <= 2, "easy extreme pair re-bought {easy} times");
        let max_revisits = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .map(|(a, b)| {
                let (x, y) = g.tally(a, b);
                x + y
            })
            .max()
            .unwrap();
        assert!(max_revisits >= 2, "someone got revisited");
    }

    #[test]
    #[should_panic(expected = "at least two items")]
    fn rejects_single_item() {
        let oracle = NoisyOracle::new();
        let _ = active_comparisons(&oracle, 1, 5, ActiveConfig::default(), make_task);
    }
}
