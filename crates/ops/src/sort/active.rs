//! Active comparison sampling: spend the next comparison where the
//! ranking is least certain.
//!
//! Random pair sampling wastes budget re-confirming pairs whose order is
//! already clear. The active-ranking literature picks the next pair by
//! uncertainty instead; here we use the classic score-gap heuristic:
//! maintain Bradley–Terry strengths over the comparisons so far and, in
//! each round, buy comparisons for the yet-uncompared (or least-compared)
//! pairs whose current strength gap is smallest. Experiment E4 contrasts
//! this with uniform sampling at equal budgets.

use std::collections::HashMap;

use crowdkit_core::answer::Preference;
use crowdkit_core::error::Result;
use crowdkit_core::ids::{IdGen, TaskId};
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;

use super::rankers::bradley_terry;
use super::ComparisonGraph;

/// Settings for [`active_comparisons`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveConfig {
    /// Crowd votes per selected pair.
    pub votes: u32,
    /// Pairs selected between score refreshes (larger = fewer BTL runs,
    /// less adaptive).
    pub round_size: usize,
}

impl Default for ActiveConfig {
    fn default() -> Self {
        Self {
            votes: 1,
            round_size: 25,
        }
    }
}

/// Buys up to `budget` pair selections (each worth `config.votes` crowd
/// questions) using score-gap-driven selection, and returns the resulting
/// comparison graph.
///
/// Ties in the gap are broken by comparison count (least compared first),
/// then pair order, so runs are deterministic.
pub fn active_comparisons<O, F>(
    oracle: &mut O,
    n: usize,
    budget: usize,
    config: ActiveConfig,
    mut make_task: F,
) -> Result<ComparisonGraph>
where
    O: CrowdOracle + ?Sized,
    F: FnMut(TaskId, usize, usize) -> Task,
{
    assert!(n >= 2, "need at least two items to rank");
    let mut graph = ComparisonGraph::new(n);
    let mut ids = IdGen::new();
    let mut compared: HashMap<(usize, usize), u32> = HashMap::new();
    let mut remaining = budget;

    'outer: while remaining > 0 {
        // Refresh strengths from everything bought so far. The first round
        // has no data: scores are all equal and selection degenerates to
        // least-compared order, i.e. a covering pass.
        let scores = if graph.total_comparisons() > 0 {
            bradley_terry(&graph, 100, 1e-8)
        } else {
            vec![0.0; n]
        };

        // Rank candidate pairs by (comparison count, |score gap|).
        let mut candidates: Vec<(u32, f64, usize, usize)> = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let count = compared.get(&(a, b)).copied().unwrap_or(0);
                let gap = (scores[a] - scores[b]).abs();
                candidates.push((count, gap, a, b));
            }
        }
        candidates.sort_by(|x, y| {
            x.0.cmp(&y.0)
                .then_with(|| x.1.partial_cmp(&y.1).expect("finite scores"))
                .then_with(|| (x.2, x.3).cmp(&(y.2, y.3)))
        });

        for &(_, _, a, b) in candidates.iter().take(config.round_size) {
            if remaining == 0 {
                break 'outer;
            }
            remaining -= 1;
            *compared.entry((a, b)).or_insert(0) += 1;
            let task = make_task(ids.next_task(), a, b);
            for _ in 0..config.votes.max(1) {
                match oracle.ask_one(&task) {
                    Ok(answer) => match answer.value.as_preference() {
                        Some(Preference::Left) => graph.record(a, b),
                        Some(Preference::Right) => graph.record(b, a),
                        None => {}
                    },
                    Err(e) if e.is_resource_exhaustion() => break 'outer,
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::order_by_scores;
    use crowdkit_core::answer::AnswerValue;
    use crowdkit_core::ids::{ItemId, WorkerId};

    /// Oracle where item index = latent strength, with deterministic
    /// pseudo-noise flipping ~15 % of verdicts.
    struct NoisyOracle {
        calls: u64,
    }

    impl CrowdOracle for NoisyOracle {
        fn ask_one(&mut self, task: &Task) -> Result<crowdkit_core::answer::Answer> {
            self.calls += 1;
            let truth = task.truth.clone().unwrap();
            let flip = self.calls.is_multiple_of(7); // ~14 % deterministic noise
            let value = match truth {
                AnswerValue::Prefer(p) => {
                    AnswerValue::Prefer(if flip { p.flip() } else { p })
                }
                other => other,
            };
            Ok(crowdkit_core::answer::Answer::bare(
                task.id,
                WorkerId::new(self.calls),
                value,
            ))
        }
        fn remaining_budget(&self) -> Option<f64> {
            None
        }
        fn answers_delivered(&self) -> u64 {
            self.calls
        }
    }

    fn make_task(id: TaskId, a: usize, b: usize) -> Task {
        let pref = if a > b { Preference::Left } else { Preference::Right };
        Task::pairwise(id, ItemId::new(a as u64), ItemId::new(b as u64))
            .with_truth(AnswerValue::Prefer(pref))
    }

    #[test]
    fn first_round_covers_uncompared_pairs() {
        let mut oracle = NoisyOracle { calls: 0 };
        let g = active_comparisons(
            &mut oracle,
            10,
            45,
            ActiveConfig {
                votes: 1,
                round_size: 45,
            },
            make_task,
        )
        .unwrap();
        // Budget = the full pair space and a single covering round: every
        // pair compared exactly once.
        assert_eq!(g.distinct_pairs(), 45);
        assert_eq!(g.total_comparisons(), 45);
    }

    #[test]
    fn budget_is_respected_in_crowd_questions() {
        let mut oracle = NoisyOracle { calls: 0 };
        let g = active_comparisons(
            &mut oracle,
            8,
            20,
            ActiveConfig {
                votes: 3,
                round_size: 5,
            },
            make_task,
        )
        .unwrap();
        assert_eq!(g.total_comparisons(), 60, "20 selections × 3 votes");
        assert_eq!(oracle.answers_delivered(), 60);
    }

    #[test]
    fn active_ranking_recovers_order_with_noise() {
        let mut oracle = NoisyOracle { calls: 0 };
        let g = active_comparisons(&mut oracle, 12, 150, ActiveConfig::default(), make_task)
            .unwrap();
        let scores = bradley_terry(&g, 200, 1e-9);
        let order = order_by_scores(&scores);
        // The top item must be found exactly; the full order nearly.
        assert_eq!(order[0], 11, "order {order:?}");
        let tau = crowdkit_core::metrics::kendall_tau(
            &scores,
            &(0..12).map(|i| i as f64).collect::<Vec<_>>(),
        );
        assert!(tau > 0.8, "tau {tau}");
    }

    #[test]
    fn revisits_concentrate_on_close_pairs() {
        // After covering all pairs once, extra budget should go to pairs of
        // adjacent (hard) items, not to 0-vs-11 (easy).
        let mut oracle = NoisyOracle { calls: 0 };
        let n = 8;
        let full = n * (n - 1) / 2; // 28
        let g = active_comparisons(
            &mut oracle,
            n,
            full + 14,
            ActiveConfig {
                votes: 1,
                round_size: 7,
            },
            make_task,
        )
        .unwrap();
        // Extremes compared once; some close pair got a revisit.
        let (easy_a, easy_b) = (0, n - 1);
        let easy = {
            let (x, y) = g.tally(easy_a, easy_b);
            x + y
        };
        assert!(easy <= 2, "easy extreme pair re-bought {easy} times");
        let max_revisits = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .map(|(a, b)| {
                let (x, y) = g.tally(a, b);
                x + y
            })
            .max()
            .unwrap();
        assert!(max_revisits >= 2, "someone got revisited");
    }

    #[test]
    #[should_panic(expected = "at least two items")]
    fn rejects_single_item() {
        let mut oracle = NoisyOracle { calls: 0 };
        let _ = active_comparisons(&mut oracle, 1, 5, ActiveConfig::default(), make_task);
    }
}
