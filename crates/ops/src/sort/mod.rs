//! Crowd sort / top-k / max from noisy pairwise comparisons.
//!
//! Machines cannot order photos by clarity or answers by helpfulness;
//! crowds can, one pairwise comparison at a time (Qurk's sort operator,
//! Marcus et al. 2012). The cost/quality dial is how many of the
//! `n·(n−1)/2` comparisons to buy and how to aggregate them:
//!
//! * [`ComparisonGraph`] — accumulates (possibly contradictory) pairwise
//!   verdicts.
//! * [`collect_comparisons`] — buys comparisons through a
//!   [`CrowdOracle`].
//! * [`rankers`] — Borda, Copeland, Elo, and Bradley–Terry (MM) rank
//!   aggregation.
//! * [`tournament`] — max/top-k via elimination brackets, the cheap
//!   alternative when only the extremes matter.

pub mod active;
pub mod rankers;
pub mod tournament;

use std::collections::BTreeMap;

use crowdkit_core::answer::Preference;
use crowdkit_core::ask::AskRequest;
use crowdkit_core::error::Result;
use crowdkit_core::ids::{IdGen, TaskId};
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Accumulated pairwise verdicts over `n` items.
#[derive(Debug, Clone)]
pub struct ComparisonGraph {
    n: usize,
    /// `(a, b)` with `a < b` → (times `a` won, times `b` won).
    wins: BTreeMap<(usize, usize), (u32, u32)>,
}

impl ComparisonGraph {
    /// An empty graph over `n` items.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "comparisons need at least two items");
        Self {
            n,
            wins: BTreeMap::new(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Records that `winner` beat `loser` once.
    ///
    /// # Panics
    /// Panics if the indices are out of range or equal.
    pub fn record(&mut self, winner: usize, loser: usize) {
        assert!(winner < self.n && loser < self.n && winner != loser);
        let key = (winner.min(loser), winner.max(loser));
        let entry = self.wins.entry(key).or_insert((0, 0));
        if winner == key.0 {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }

    /// `(a_wins, b_wins)` for the unordered pair `{a, b}` presented as
    /// (wins of `a`, wins of `b`).
    pub fn tally(&self, a: usize, b: usize) -> (u32, u32) {
        let key = (a.min(b), a.max(b));
        let (x, y) = self.wins.get(&key).copied().unwrap_or((0, 0));
        if a == key.0 {
            (x, y)
        } else {
            (y, x)
        }
    }

    /// Total comparisons recorded.
    pub fn total_comparisons(&self) -> u32 {
        self.wins.values().map(|(a, b)| a + b).sum()
    }

    /// Number of distinct pairs with at least one comparison.
    pub fn distinct_pairs(&self) -> usize {
        self.wins.len()
    }

    /// Iterates `((a, b), (a_wins, b_wins))` in deterministic (sorted pair)
    /// order — free now that the storage itself is ordered.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), (u32, u32))> + '_ {
        self.wins.iter().map(|(k, v)| (*k, *v))
    }
}

/// Samples `budget` distinct unordered pairs uniformly from the
/// `n·(n−1)/2` pair space, deterministically for the seed. Returns all
/// pairs if `budget` exceeds the space.
pub fn sample_pairs(n: usize, budget: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut all: Vec<(usize, usize)> = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    all.shuffle(&mut rng);
    all.truncate(budget);
    all
}

/// Buys `votes` crowd comparisons for each pair in `pairs` and accumulates
/// them into a [`ComparisonGraph`].
///
/// All pairs go to the platform as one batched request (each with
/// redundancy `votes`), so independent comparisons overlap in crowd
/// latency. `make_task` builds the pairwise task for `(a, b)`; an answer
/// of [`Preference::Left`] means `a` won. Stops early (returning the
/// partial graph) when the oracle's budget or pool is exhausted.
pub fn collect_comparisons<O, F>(
    oracle: &O,
    n: usize,
    pairs: &[(usize, usize)],
    votes: u32,
    mut make_task: F,
) -> Result<ComparisonGraph>
where
    O: CrowdOracle + ?Sized,
    F: FnMut(TaskId, usize, usize) -> Task,
{
    let mut graph = ComparisonGraph::new(n);
    let mut ids = IdGen::new();
    let tasks: Vec<Task> = pairs
        .iter()
        .map(|&(a, b)| make_task(ids.next_task(), a, b))
        .collect();
    let reqs: Vec<AskRequest<'_>> = tasks
        .iter()
        .map(|t| AskRequest::new(t).with_redundancy(votes.max(1) as usize))
        .collect();
    for (&(a, b), outcome) in pairs.iter().zip(oracle.ask_batch(&reqs)?.iter()) {
        if let Some(e) = &outcome.shortfall {
            if !e.is_resource_exhaustion() {
                return Err(e.clone());
            }
        }
        for answer in &outcome.answers {
            if let Some(pref) = answer.value.as_preference() {
                match pref {
                    Preference::Left => graph.record(a, b),
                    Preference::Right => graph.record(b, a),
                }
            }
        }
    }
    Ok(graph)
}

/// Converts scores to a best-first ordering of item indices (ties broken
/// by index for determinism).
pub fn order_by_scores(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&x, &y| {
        scores[y]
            .total_cmp(&scores[x])
            .then_with(|| x.cmp(&y))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_tally_are_symmetric() {
        let mut g = ComparisonGraph::new(3);
        g.record(2, 0);
        g.record(0, 2);
        g.record(2, 0);
        assert_eq!(g.tally(2, 0), (2, 1));
        assert_eq!(g.tally(0, 2), (1, 2));
        assert_eq!(g.total_comparisons(), 3);
        assert_eq!(g.distinct_pairs(), 1);
    }

    #[test]
    #[should_panic]
    fn self_comparison_panics() {
        let mut g = ComparisonGraph::new(3);
        g.record(1, 1);
    }

    #[test]
    fn sample_pairs_distinct_and_bounded() {
        let pairs = sample_pairs(10, 20, 7);
        assert_eq!(pairs.len(), 20);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &pairs {
            assert!(a < b && b < 10);
            assert!(seen.insert((a, b)), "pairs must be distinct");
        }
        // Budget above the space returns everything.
        assert_eq!(sample_pairs(4, 100, 0).len(), 6);
        // Determinism.
        assert_eq!(sample_pairs(10, 5, 3), sample_pairs(10, 5, 3));
    }

    #[test]
    fn order_by_scores_descending_with_stable_ties() {
        assert_eq!(order_by_scores(&[0.1, 0.9, 0.5]), vec![1, 2, 0]);
        assert_eq!(order_by_scores(&[0.5, 0.5]), vec![0, 1]);
    }

    #[test]
    fn iter_is_deterministic() {
        let mut g = ComparisonGraph::new(4);
        g.record(3, 1);
        g.record(0, 2);
        let keys: Vec<(usize, usize)> = g.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![(0, 2), (1, 3)]);
    }
}
