//! Rank aggregation over a [`ComparisonGraph`].
//!
//! Four estimators spanning the cost/quality space the crowdsourced-sort
//! literature sweeps:
//!
//! * [`borda`] — win-rate scoring; cheapest, needs dense coverage.
//! * [`copeland`] — majority-duel scoring; robust to per-pair noise.
//! * [`elo`] — online rating updates; order-dependent but strong at low
//!   comparison budgets.
//! * [`bradley_terry`] — maximum-likelihood strengths via the classic MM
//!   (minorization–maximization) iteration; the statistically efficient
//!   choice when comparisons are repeated.

use super::ComparisonGraph;

/// Borda-style scores: each item's total wins divided by total comparisons
/// it appeared in (0.5 for items never compared, keeping them mid-pack
/// rather than artificially last).
pub fn borda(graph: &ComparisonGraph) -> Vec<f64> {
    let n = graph.len();
    let mut wins = vec![0.0f64; n];
    let mut games = vec![0.0f64; n];
    for ((a, b), (wa, wb)) in graph.iter() {
        wins[a] += wa as f64;
        wins[b] += wb as f64;
        games[a] += (wa + wb) as f64;
        games[b] += (wa + wb) as f64;
    }
    (0..n)
        .map(|i| if games[i] > 0.0 { wins[i] / games[i] } else { 0.5 })
        .collect()
}

/// Copeland scores: for each pair with comparisons, the item winning the
/// majority gets +1, the loser −1 (0 each on a tie). Normalized by the
/// number of opponents faced.
pub fn copeland(graph: &ComparisonGraph) -> Vec<f64> {
    let n = graph.len();
    let mut score = vec![0.0f64; n];
    let mut faced = vec![0.0f64; n];
    for ((a, b), (wa, wb)) in graph.iter() {
        faced[a] += 1.0;
        faced[b] += 1.0;
        if wa > wb {
            score[a] += 1.0;
            score[b] -= 1.0;
        } else if wb > wa {
            score[b] += 1.0;
            score[a] -= 1.0;
        }
    }
    (0..n)
        .map(|i| if faced[i] > 0.0 { score[i] / faced[i] } else { 0.0 })
        .collect()
}

/// Elo ratings: replays every recorded comparison as a match, for
/// `epochs` passes over the (deterministically ordered) match list.
///
/// `k_factor` is the usual Elo step size (32 is the chess default; smaller
/// is smoother). Returned ratings are centred on 0.
pub fn elo(graph: &ComparisonGraph, k_factor: f64, epochs: usize) -> Vec<f64> {
    let n = graph.len();
    let mut rating = vec![0.0f64; n];
    // Expand the tally into individual matches in deterministic order.
    let mut matches: Vec<(usize, usize)> = Vec::new(); // (winner, loser)
    for ((a, b), (wa, wb)) in graph.iter() {
        for _ in 0..wa {
            matches.push((a, b));
        }
        for _ in 0..wb {
            matches.push((b, a));
        }
    }
    for _ in 0..epochs.max(1) {
        for &(w, l) in &matches {
            let expect_w = 1.0 / (1.0 + 10f64.powf((rating[l] - rating[w]) / 400.0));
            rating[w] += k_factor * (1.0 - expect_w);
            rating[l] -= k_factor * (1.0 - expect_w);
        }
    }
    rating
}

/// Bradley–Terry maximum-likelihood strengths via the MM algorithm
/// (Hunter, 2004): iterate
/// `p_i ← W_i / Σ_j n_ij / (p_i + p_j)` then renormalize, where `W_i` is
/// item `i`'s total wins and `n_ij` the comparisons between `i` and `j`.
///
/// Returns log-strengths (so downstream ordering code treats them like any
/// other score). Items with no comparisons keep strength 1 (log 0).
/// A small smoothing win is added per pair to keep strengths finite when
/// an item never wins.
pub fn bradley_terry(graph: &ComparisonGraph, max_iters: usize, tol: f64) -> Vec<f64> {
    let n = graph.len();
    let smoothing = 0.1;
    let mut wins = vec![0.0f64; n];
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new(); // (a, b, n_ab)
    for ((a, b), (wa, wb)) in graph.iter() {
        wins[a] += wa as f64 + smoothing;
        wins[b] += wb as f64 + smoothing;
        pairs.push((a, b, (wa + wb) as f64 + 2.0 * smoothing));
    }

    let mut p = vec![1.0f64; n];
    for _ in 0..max_iters.max(1) {
        let mut denom = vec![0.0f64; n];
        for &(a, b, nab) in &pairs {
            let d = nab / (p[a] + p[b]);
            denom[a] += d;
            denom[b] += d;
        }
        let mut next = p.clone();
        let mut moved = 0.0f64;
        for i in 0..n {
            if denom[i] > 0.0 {
                next[i] = wins[i] / denom[i];
            }
        }
        // Normalize the geometric mean to 1 for identifiability.
        let log_mean =
            next.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / n as f64;
        for x in &mut next {
            *x = (x.max(1e-12).ln() - log_mean).exp();
        }
        for i in 0..n {
            moved = moved.max((next[i] - p[i]).abs());
        }
        p = next;
        if moved < tol {
            break;
        }
    }
    p.iter().map(|x| x.max(1e-12).ln()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::order_by_scores;

    /// Graph where item order 0 > 1 > 2 is unanimous (3 votes per pair).
    fn clean_graph() -> ComparisonGraph {
        let mut g = ComparisonGraph::new(3);
        for _ in 0..3 {
            g.record(0, 1);
            g.record(0, 2);
            g.record(1, 2);
        }
        g
    }

    #[test]
    fn all_rankers_recover_a_clean_total_order() {
        let g = clean_graph();
        for scores in [
            borda(&g),
            copeland(&g),
            elo(&g, 32.0, 3),
            bradley_terry(&g, 100, 1e-9),
        ] {
            assert_eq!(order_by_scores(&scores), vec![0, 1, 2], "scores {scores:?}");
        }
    }

    #[test]
    fn borda_is_win_fraction() {
        let g = clean_graph();
        let s = borda(&g);
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!((s[1] - 0.5).abs() < 1e-12);
        assert!((s[2] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn uncompared_items_sit_mid_pack_for_borda() {
        let mut g = ComparisonGraph::new(3);
        g.record(0, 1); // item 2 never compared
        let s = borda(&g);
        assert_eq!(s[2], 0.5);
        assert!(s[0] > s[2] && s[2] > s[1]);
    }

    #[test]
    fn copeland_tolerates_minority_noise() {
        // 0 beats 1 in 2 of 3 votes; Copeland gives the duel to 0 outright.
        let mut g = ComparisonGraph::new(2);
        g.record(0, 1);
        g.record(0, 1);
        g.record(1, 0);
        let s = copeland(&g);
        assert_eq!(s, vec![1.0, -1.0]);
    }

    #[test]
    fn copeland_tie_scores_zero() {
        let mut g = ComparisonGraph::new(2);
        g.record(0, 1);
        g.record(1, 0);
        assert_eq!(copeland(&g), vec![0.0, 0.0]);
    }

    #[test]
    fn elo_winner_gains_rating() {
        let mut g = ComparisonGraph::new(2);
        g.record(1, 0);
        let r = elo(&g, 32.0, 1);
        assert!(r[1] > 0.0 && r[0] < 0.0);
        assert!((r[0] + r[1]).abs() < 1e-9, "zero-sum updates");
    }

    #[test]
    fn bradley_terry_strengths_reflect_win_probability() {
        // 0 beats 1 in 9 of 10 comparisons → strength gap matches ~9:1 odds.
        let mut g = ComparisonGraph::new(2);
        for _ in 0..9 {
            g.record(0, 1);
        }
        g.record(1, 0);
        let log_p = bradley_terry(&g, 200, 1e-10);
        let odds = (log_p[0] - log_p[1]).exp();
        // Smoothing shades the raw 9:1 ratio slightly toward 1.
        assert!(odds > 5.0 && odds < 10.0, "odds {odds}");
    }

    #[test]
    fn bradley_terry_handles_shutouts_via_smoothing() {
        let mut g = ComparisonGraph::new(2);
        for _ in 0..5 {
            g.record(0, 1);
        }
        let log_p = bradley_terry(&g, 200, 1e-10);
        assert!(log_p.iter().all(|x| x.is_finite()));
        assert!(log_p[0] > log_p[1]);
    }

    #[test]
    fn rankers_are_deterministic() {
        let g = clean_graph();
        assert_eq!(elo(&g, 32.0, 2), elo(&g, 32.0, 2));
        assert_eq!(bradley_terry(&g, 50, 1e-8), bradley_terry(&g, 50, 1e-8));
    }
}
