//! # crowdkit-ops
//!
//! Crowd-powered query operators — the tutorial's operator axis, one module
//! per operator family:
//!
//! * [`filter`] — crowd selection (`WHERE crowd_predicate(item)`) with
//!   adaptive per-item stopping.
//! * [`join`] — crowd join / entity resolution: similarity blocking, crowd
//!   pair verification, and transitivity-based answer deduction.
//! * [`sort`] — sort / top-k / max from noisy pairwise comparisons, with
//!   Borda, Copeland, Elo and Bradley–Terry rank aggregation and
//!   tournament max.
//! * [`agg`] — sampling-based COUNT/SUM estimation with confidence
//!   intervals.
//! * [`collect`] — open-world enumeration with species-richness estimation
//!   (Good–Turing coverage, Chao1/Chao92).
//! * [`fill`] — missing-cell completion with answer reconciliation.
//! * [`categorize`] — taxonomy placement with hierarchy-aware voting.
//!
//! Every operator buys its answers exclusively through
//! [`crowdkit_core::traits::CrowdOracle`] and reports what it spent, so
//! experiments compare operators on *crowd questions asked* — the metric
//! the cost-control literature optimizes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod agg;
pub mod categorize;
pub mod collect;
pub mod fill;
pub mod filter;
pub mod join;
pub mod sort;
