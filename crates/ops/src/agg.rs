//! Sampling-based crowd aggregation: COUNT / SUM / proportion estimation.
//!
//! Asking the crowd to verify *every* item of a large population is the
//! naive COUNT plan; the sampling line of work estimates the count from a
//! random sample with a confidence interval, trading a quantified error
//! for an order-of-magnitude cost cut. The whole sample is submitted as
//! one batched request so its verifications overlap in crowd latency.
//! Experiment E6 sweeps the sample fraction against the realized error and
//! interval coverage.

use crowdkit_core::ask::AskRequest;
use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An estimated count with a normal-approximation confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountEstimate {
    /// Point estimate of the number of positive items in the population.
    pub estimate: f64,
    /// Lower bound of the confidence interval (clamped to ≥ 0).
    pub ci_low: f64,
    /// Upper bound of the confidence interval (clamped to ≤ population).
    pub ci_high: f64,
    /// Sample size actually used.
    pub sample_size: usize,
    /// Positives observed in the sample.
    pub sample_positives: usize,
    /// Crowd answers purchased.
    pub questions_asked: usize,
}

/// Estimates how many of `items` are positive by crowd-verifying a random
/// sample of `sample_size` items with `votes` judgements each (majority
/// decides; ties count negative).
///
/// `z` is the normal critical value for the interval (1.96 → 95 %). The
/// interval uses the finite-population correction, so sampling everything
/// collapses it to the exact count.
///
/// Items must be binary single-choice tasks (label 1 = positive).
pub fn estimate_count<O>(
    oracle: &O,
    items: &[Task],
    sample_size: usize,
    votes: u32,
    z: f64,
    seed: u64,
) -> Result<CountEstimate>
where
    O: CrowdOracle + ?Sized,
{
    if items.is_empty() {
        return Err(CrowdError::EmptyInput("population"));
    }
    let n = items.len();
    let m = sample_size.clamp(1, n);

    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut StdRng::seed_from_u64(seed));
    indices.truncate(m);

    let reqs: Vec<AskRequest<'_>> = indices
        .iter()
        .map(|&i| AskRequest::new(&items[i]).with_redundancy(votes.max(1) as usize))
        .collect();
    let outcomes = oracle.ask_batch(&reqs)?;

    let mut positives = 0usize;
    let mut sampled = 0usize;
    let mut questions = 0usize;
    for out in &outcomes {
        if let Some(e) = &out.shortfall {
            if !e.is_resource_exhaustion() {
                return Err(e.clone());
            }
        }
        if out.answers.is_empty() {
            // Exhaustion before this item got any judgement: the sample
            // ends here (later outcomes are starved too).
            break;
        }
        let mut yes = 0u32;
        let mut no = 0u32;
        for a in &out.answers {
            questions += 1;
            match a.value.as_choice() {
                Some(1) => yes += 1,
                _ => no += 1,
            }
        }
        sampled += 1;
        if yes > no {
            positives += 1;
        }
    }

    if sampled == 0 {
        return Err(CrowdError::EmptyInput("no sample item received any answer"));
    }

    let p_hat = positives as f64 / sampled as f64;
    let fpc = if sampled < n {
        ((n - sampled) as f64 / (n as f64 - 1.0).max(1.0)).sqrt()
    } else {
        0.0
    };
    let se = (p_hat * (1.0 - p_hat) / sampled as f64).sqrt() * fpc;
    let estimate = p_hat * n as f64;
    let half = z * se * n as f64;

    Ok(CountEstimate {
        estimate,
        ci_low: (estimate - half).max(0.0),
        ci_high: (estimate + half).min(n as f64),
        sample_size: sampled,
        sample_positives: positives,
        questions_asked: questions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::answer::{Answer, AnswerValue};
    use crowdkit_core::budget::Budget;
    use crowdkit_core::ids::{TaskId, WorkerId};
    use std::cell::{Cell, RefCell};

    struct TruthfulOracle {
        budget: RefCell<Budget>,
        next_worker: Cell<u64>,
        delivered: Cell<u64>,
    }

    impl TruthfulOracle {
        fn new(limit: f64) -> Self {
            Self {
                budget: RefCell::new(Budget::new(limit)),
                next_worker: Cell::new(0),
                delivered: Cell::new(0),
            }
        }
    }

    impl CrowdOracle for TruthfulOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            self.budget.borrow_mut().debit(1.0)?;
            self.delivered.set(self.delivered.get() + 1);
            let w = WorkerId::new(self.next_worker.get());
            self.next_worker.set(self.next_worker.get() + 1);
            Ok(Answer::bare(task.id, w, task.truth.clone().unwrap()))
        }
        fn remaining_budget(&self) -> Option<f64> {
            Some(self.budget.borrow().remaining())
        }
        fn answers_delivered(&self) -> u64 {
            self.delivered.get()
        }
    }

    fn population(flags: &[bool]) -> Vec<Task> {
        flags
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                Task::binary(TaskId::new(i as u64), format!("i{i}"))
                    .with_truth(AnswerValue::Choice(f as u32))
            })
            .collect()
    }

    #[test]
    fn full_sample_gives_exact_count_with_zero_width_interval() {
        let flags: Vec<bool> = (0..100).map(|i| i % 4 == 0).collect();
        let items = population(&flags);
        let oracle = TruthfulOracle::new(1e9);
        let est = estimate_count(&oracle, &items, 100, 1, 1.96, 0).unwrap();
        assert_eq!(est.estimate, 25.0);
        assert_eq!(est.ci_low, 25.0);
        assert_eq!(est.ci_high, 25.0);
        assert_eq!(est.questions_asked, 100);
    }

    #[test]
    fn partial_sample_is_close_and_covered() {
        let flags: Vec<bool> = (0..2000).map(|i| i % 10 < 3).collect(); // 30 %
        let items = population(&flags);
        let oracle = TruthfulOracle::new(1e9);
        let est = estimate_count(&oracle, &items, 400, 1, 1.96, 42).unwrap();
        let truth = 600.0;
        assert!(
            (est.estimate - truth).abs() < 100.0,
            "estimate {} vs truth {truth}",
            est.estimate
        );
        assert!(est.ci_low <= truth && truth <= est.ci_high, "CI covers truth");
        assert!(est.ci_high - est.ci_low > 0.0);
    }

    #[test]
    fn larger_samples_tighten_the_interval() {
        let flags: Vec<bool> = (0..2000).map(|i| i % 2 == 0).collect();
        let items = population(&flags);
        let width = |m: usize| -> f64 {
            let oracle = TruthfulOracle::new(1e9);
            let e = estimate_count(&oracle, &items, m, 1, 1.96, 7).unwrap();
            e.ci_high - e.ci_low
        };
        assert!(width(800) < width(100));
    }

    #[test]
    fn budget_exhaustion_estimates_from_partial_sample() {
        let flags = vec![true; 100];
        let items = population(&flags);
        let oracle = TruthfulOracle::new(10.0);
        let est = estimate_count(&oracle, &items, 50, 1, 1.96, 0).unwrap();
        assert_eq!(est.sample_size, 10);
        assert_eq!(est.estimate, 100.0, "all sampled items positive");
    }

    #[test]
    fn empty_population_is_an_error() {
        let oracle = TruthfulOracle::new(10.0);
        assert!(matches!(
            estimate_count(&oracle, &[], 10, 1, 1.96, 0).unwrap_err(),
            CrowdError::EmptyInput(_)
        ));
    }

    #[test]
    fn zero_budget_is_an_error() {
        let items = population(&[true, false]);
        let oracle = TruthfulOracle::new(0.0);
        assert!(estimate_count(&oracle, &items, 2, 1, 1.96, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let flags: Vec<bool> = (0..500).map(|i| i % 3 == 0).collect();
        let items = population(&flags);
        let run = |seed| {
            let oracle = TruthfulOracle::new(1e9);
            estimate_count(&oracle, &items, 50, 1, 1.96, seed).unwrap()
        };
        assert_eq!(run(3), run(3));
    }
}
