//! The ratcheted baseline: `LINT_BASELINE.json` load, match, and render.
//!
//! A baseline is a checked-in list of *known* findings, each carried by its
//! stable fingerprint and a written reason — debt acknowledged, not debt
//! hidden. `crowdkit-lint --baseline LINT_BASELINE.json` then fails only on
//! findings **not** in the list (new debt) and on baseline entries that no
//! longer match anything (stale debt: the finding was fixed, so the entry
//! must be deleted — the ratchet only turns one way). The file also carries
//! a `burn_down` counter that must equal the entry count, which makes the
//! debt total an explicit, reviewed number in every diff that touches it.
//!
//! The format is parsed by the tiny recursive-descent JSON reader below —
//! the linter stays dependency-free, and the subset it accepts (objects,
//! arrays, strings with the common escapes, integers, booleans, null) is
//! exactly what the tool itself writes via `--write-baseline`.

use std::collections::BTreeMap;

/// One acknowledged finding.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Stable fingerprint from `LINT.json` (`rule|file|scope|key|ordinal`
    /// hashed — line-independent).
    pub fingerprint: String,
    /// Rule id, for human diffing of the file.
    pub rule: String,
    /// File the finding was in when baselined.
    pub file: String,
    /// Why this debt is acknowledged rather than fixed.
    pub reason: String,
}

/// The parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Declared debt total; must equal `entries.len()`.
    pub burn_down: usize,
    /// Acknowledged findings.
    pub entries: Vec<BaselineEntry>,
}

/// Minimal JSON value for the reader below.
#[derive(Debug, Clone)]
enum Json {
    /// Object with ordered keys.
    Obj(BTreeMap<String, Json>),
    /// Array.
    Arr(Vec<Json>),
    /// String.
    Str(String),
    /// Number (only non-negative integers are ever meaningful here).
    Num(f64),
    /// `true`, `false`, or `null` — accepted, never meaningful in the
    /// baseline format, so the value is not kept.
    Null,
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(s: &'a str) -> Self {
        Reader {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            Some(got) => Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )),
            None => Err(format!("expected `{}`, found end of input", b as char)),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Null),
            Some(b'f') => self.literal("false", Json::Null),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, val: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_owned())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_owned());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Re-borrow the full char: strings are valid UTF-8, so
                    // step back and take the whole scalar.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_owned())?;
                    let Some(c) = rest.chars().next() else {
                        return Err("unterminated string".to_owned());
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            let key = self.string()?;
            self.expect_byte(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut arr = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(arr));
        }
        loop {
            arr.push(self.value()?);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(arr));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

fn get_str(obj: &BTreeMap<String, Json>, key: &str) -> Result<String, String> {
    match obj.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(format!("entry missing string field `{key}`")),
    }
}

/// Parses and validates a baseline file. Errors are human sentences —
/// they end up verbatim in CI output.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut r = Reader::new(text);
    let root = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(format!("trailing garbage at byte {}", r.pos));
    }
    let Json::Obj(obj) = root else {
        return Err("baseline root must be a JSON object".to_owned());
    };
    let burn_down = match obj.get("burn_down") {
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as usize,
        _ => return Err("baseline must declare an integer `burn_down`".to_owned()),
    };
    let entries_json = match obj.get("entries") {
        Some(Json::Arr(a)) => a,
        _ => return Err("baseline must have an `entries` array".to_owned()),
    };
    let mut entries = Vec::with_capacity(entries_json.len());
    let mut seen = BTreeMap::new();
    for (i, e) in entries_json.iter().enumerate() {
        let Json::Obj(eo) = e else {
            return Err(format!("entry {i} is not an object"));
        };
        let entry = BaselineEntry {
            fingerprint: get_str(eo, "fingerprint")?,
            rule: get_str(eo, "rule")?,
            file: get_str(eo, "file")?,
            reason: get_str(eo, "reason")?,
        };
        if entry.reason.trim().len() < 3 {
            return Err(format!(
                "entry {i} ({}) has no written reason — baselined debt must say why it \
is acknowledged",
                entry.fingerprint
            ));
        }
        if let Some(prev) = seen.insert(entry.fingerprint.clone(), i) {
            return Err(format!(
                "duplicate fingerprint {} (entries {prev} and {i})",
                entry.fingerprint
            ));
        }
        entries.push(entry);
    }
    if burn_down != entries.len() {
        return Err(format!(
            "burn_down is {} but there are {} entries — the counter must track the \
debt exactly (it only goes down)",
            burn_down,
            entries.len()
        ));
    }
    Ok(Baseline {
        burn_down,
        entries,
    })
}

/// Renders a baseline file from `(fingerprint, rule, file, reason)` rows —
/// the `--write-baseline` output, byte-identical when re-generated over the
/// same findings.
pub fn render(rows: &[(String, String, String, String)]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"burn_down\": {},\n", rows.len()));
    out.push_str("  \"entries\": [");
    for (i, (fp, rule, file, reason)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"fingerprint\": ");
        escape(fp, &mut out);
        out.push_str(", \"rule\": ");
        escape(rule, &mut out);
        out.push_str(", \"file\": ");
        escape(file, &mut out);
        out.push_str(", \"reason\": ");
        escape(reason, &mut out);
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_validation() {
        let rows = vec![(
            "a1b2c3d4e5f60718".to_owned(),
            "CONC003".to_owned(),
            "crates/sql/src/exec.rs".to_owned(),
            "session guard across crowd I/O; burn down in the crowdkitd PR".to_owned(),
        )];
        let text = render(&rows);
        let b = parse(&text).expect("roundtrip parses");
        assert_eq!(b.burn_down, 1);
        assert_eq!(b.entries[0].fingerprint, "a1b2c3d4e5f60718");
        assert_eq!(b.entries[0].rule, "CONC003");
    }

    #[test]
    fn rejects_counter_drift_missing_reasons_and_duplicates() {
        let drift = r#"{"burn_down": 2, "entries": [
            {"fingerprint": "aa", "rule": "R", "file": "f", "reason": "valid reason"}
        ]}"#;
        assert!(parse(drift).is_err());
        let no_reason = r#"{"burn_down": 1, "entries": [
            {"fingerprint": "aa", "rule": "R", "file": "f", "reason": ""}
        ]}"#;
        assert!(parse(no_reason).is_err());
        let dup = r#"{"burn_down": 2, "entries": [
            {"fingerprint": "aa", "rule": "R", "file": "f", "reason": "valid reason"},
            {"fingerprint": "aa", "rule": "R", "file": "g", "reason": "another reason"}
        ]}"#;
        assert!(parse(dup).is_err());
    }

    #[test]
    fn string_escapes_parse() {
        let text = r#"{"burn_down": 1, "entries": [
            {"fingerprint": "ff", "rule": "R", "file": "a\"b\\c", "reason": "tab\there é"}
        ]}"#;
        let b = parse(text).expect("escapes parse");
        assert_eq!(b.entries[0].file, "a\"b\\c");
        assert_eq!(b.entries[0].reason, "tab\there é");
    }
}
