//! Workspace symbol table: function definitions and call sites, resolved
//! best-effort by name.
//!
//! The interprocedural rules (taint propagation, CONC lock analysis) need
//! to know *which function a call lands in*. Without a real type system
//! the table resolves by name: a call site binds to the unique function of
//! that name in the caller's crate, else the unique function of that name
//! in the workspace. Everything else lands in an explicit bucket —
//! `ambiguous` (several same-named candidates) or `unresolved` (no
//! candidate; std/vendored methods) — so resolution precision is a
//! *measured* number in `LINT.json`, not an article of faith.

use std::collections::{BTreeMap, BTreeSet};

use crate::analyze::Analysis;
use crate::lexer::{Lexed, Tok, Token};

/// One parsed source file, ready for workspace-level analysis.
pub struct FileUnit {
    /// Path relative to the scan root, `/`-separated.
    pub rel: String,
    /// Crate the file belongs to (see [`crate_of`]).
    pub crate_name: String,
    /// Token stream + comments.
    pub lexed: Lexed,
    /// Structural pass output.
    pub analysis: Analysis,
}

/// Derives the owning crate from a root-relative path: `crates/<name>/…`
/// belongs to `<name>`, the root `src/` tree to `crowdkit`, anything else
/// (fixtures scanned directly in tests) to `local`.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("local").to_owned(),
        Some("src") => "crowdkit".to_owned(),
        _ => "local".to_owned(),
    }
}

/// One `fn` item with a body, workspace-wide.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index into [`SymbolTable::fns`].
    pub id: usize,
    /// The function's name (raw identifiers keep their `r#`).
    pub name: String,
    /// Owning crate.
    pub crate_name: String,
    /// File (root-relative).
    pub file: String,
    /// Index of the unit in the slice passed to [`SymbolTable::build`].
    pub unit: usize,
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// Token index of the body `{`.
    pub body_open: usize,
    /// Token index of the body `}`.
    pub body_close: usize,
    /// Line of the `fn` keyword.
    pub start_line: u32,
    /// Line of the body's closing `}`.
    pub end_line: u32,
    /// True when the signature declares a return type (`->` between the
    /// keyword and the body). Taint only propagates through
    /// value-returning functions.
    pub has_return: bool,
    /// True when the item is test-scoped.
    pub is_test: bool,
}

/// How a call site resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Exactly one candidate — edge in the call graph.
    Resolved(usize),
    /// Multiple same-named candidates; no edge (counted separately so the
    /// precision loss is visible).
    Ambiguous(Vec<usize>),
    /// No workspace function of that name (std, vendored, trait-object).
    Unresolved,
}

/// One call or method-call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Caller [`FnDef`] id.
    pub caller: usize,
    /// Callee name as written.
    pub callee: String,
    /// True for `.name(…)` method syntax.
    pub is_method: bool,
    /// Token index of the callee identifier (for test-scope checks).
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// Name-resolution outcome.
    pub resolution: Resolution,
}

/// Resolution accounting for the whole table.
#[derive(Debug, Default, Clone)]
pub struct ResolutionStats {
    /// Total call sites extracted.
    pub calls: usize,
    /// Sites with a unique candidate.
    pub resolved: usize,
    /// Sites with several candidates.
    pub ambiguous: usize,
    /// Sites with no workspace candidate.
    pub unresolved: usize,
    /// Distinct unresolved callee names (the extern surface).
    pub unresolved_names: BTreeSet<String>,
}

/// The workspace symbol table.
#[derive(Default)]
pub struct SymbolTable {
    /// Every bodied `fn`, in (file, token) order.
    pub fns: Vec<FnDef>,
    /// Every extracted call site, in (file, token) order.
    pub calls: Vec<CallSite>,
    /// Resolution accounting.
    pub stats: ResolutionStats,
}

/// Keywords that can precede `(` without being calls.
const NON_CALL_KEYWORDS: [&str; 18] = [
    "if", "while", "for", "match", "loop", "return", "in", "as", "let", "fn", "impl", "where",
    "move", "ref", "mut", "else", "dyn", "await",
];

/// Ubiquitous std/core method names that must never resolve to a
/// same-named workspace function: calling `.iter()` on a Vec has nothing
/// to do with a local `fn iter`. Plain (non-method) calls are exempt from
/// this list — `iter(…)` written bare is most likely the local function.
const EXTERNAL_METHODS: [&str; 48] = [
    "lock", "read", "write", "unwrap", "expect", "clone", "iter", "iter_mut", "into_iter",
    "keys", "values", "drain", "len", "is_empty", "push", "pop", "insert", "remove", "get",
    "get_mut", "contains", "contains_key", "extend", "collect", "map", "filter", "fold", "sum",
    "min", "max", "sort", "to_owned", "to_string", "as_str", "as_ref", "take", "next", "load",
    "store", "swap", "new", "default", "from", "into", "clear", "entry", "join", "drop",
];

fn is_non_call_keyword(w: &str) -> bool {
    NON_CALL_KEYWORDS.contains(&w)
}

/// True when `w` is on the always-external method-name list.
pub fn is_external_method(w: &str) -> bool {
    EXTERNAL_METHODS.contains(&w)
}

fn punct_is(t: &Token, c: char) -> bool {
    matches!(&t.tok, Tok::Punct(p) if *p == c)
}

impl SymbolTable {
    /// Builds the table over a set of parsed units.
    pub fn build(units: &[FileUnit]) -> Self {
        let mut table = SymbolTable::default();
        for (u, unit) in units.iter().enumerate() {
            collect_fns(u, unit, &mut table.fns);
        }
        // Name indexes for resolution.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_crate_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for f in &table.fns {
            by_name.entry(&f.name).or_default().push(f.id);
            by_crate_name
                .entry((&f.crate_name, &f.name))
                .or_default()
                .push(f.id);
        }
        for (u, unit) in units.iter().enumerate() {
            let fn_ids: Vec<usize> = table
                .fns
                .iter()
                .filter(|f| f.unit == u)
                .map(|f| f.id)
                .collect();
            collect_calls(
                unit,
                &fn_ids,
                &table.fns,
                &by_name,
                &by_crate_name,
                &mut table.calls,
                &mut table.stats,
            );
        }
        table
    }

    /// The innermost function definition containing token `tok` of `unit`,
    /// if any.
    pub fn fn_at(&self, unit: usize, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .filter(|f| f.unit == unit && f.kw <= tok && tok <= f.body_close)
            .max_by_key(|f| f.kw)
            .map(|f| f.id)
    }

    /// The name of the innermost function covering `line` of file `rel`
    /// (empty when the line sits outside every function). Used for stable
    /// finding fingerprints.
    pub fn scope_at_line(&self, rel: &str, line: u32) -> String {
        self.fns
            .iter()
            .filter(|f| f.file == rel && f.start_line <= line && line <= f.end_line)
            .max_by_key(|f| f.start_line)
            .map(|f| f.name.clone())
            .unwrap_or_default()
    }
}

fn collect_fns(u: usize, unit: &FileUnit, out: &mut Vec<FnDef>) {
    let tokens = &unit.lexed.tokens;
    for span in &unit.analysis.fns {
        let name = match tokens.get(span.kw + 1).map(|t| &t.tok) {
            Some(Tok::Ident(w)) => w.clone(),
            _ => continue,
        };
        // `->` between the signature start and the body `{` means the fn
        // returns a value (over-approximate: `Fn() -> T` bounds count too).
        let mut has_return = false;
        let mut k = span.kw + 1;
        while k + 1 < span.body_open {
            if punct_is(&tokens[k], '-') && punct_is(&tokens[k + 1], '>') {
                has_return = true;
                break;
            }
            k += 1;
        }
        let id = out.len();
        out.push(FnDef {
            id,
            name,
            crate_name: unit.crate_name.clone(),
            file: unit.rel.clone(),
            unit: u,
            kw: span.kw,
            body_open: span.body_open,
            body_close: span.body_close,
            start_line: span.start_line,
            end_line: span.end_line,
            has_return,
            is_test: span.is_test,
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn collect_calls(
    unit: &FileUnit,
    fn_ids: &[usize],
    fns: &[FnDef],
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_crate_name: &BTreeMap<(&str, &str), Vec<usize>>,
    out: &mut Vec<CallSite>,
    stats: &mut ResolutionStats,
) {
    let tokens = &unit.lexed.tokens;
    // Innermost enclosing fn per token: refreshed lazily while scanning.
    let enclosing = |tok: usize| -> Option<usize> {
        fn_ids
            .iter()
            .copied()
            .filter(|&id| fns[id].body_open < tok && tok < fns[id].body_close)
            .max_by_key(|&id| fns[id].body_open)
    };
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip attribute contents: `#[derive(...)]` contains idents
        // followed by `(` that are not calls.
        if punct_is(&tokens[i], '#') {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| punct_is(t, '!')) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| punct_is(t, '[')) {
                let mut depth = 0usize;
                while j < tokens.len() {
                    if punct_is(&tokens[j], '[') {
                        depth += 1;
                    } else if punct_is(&tokens[j], ']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        let (name, is_method) = match &tokens[i].tok {
            Tok::Ident(w)
                if tokens.get(i + 1).is_some_and(|t| punct_is(t, '('))
                    && !is_non_call_keyword(w) =>
            {
                (w.clone(), i > 0 && punct_is(&tokens[i - 1], '.'))
            }
            _ => {
                i += 1;
                continue;
            }
        };
        // A call after `fn` is the definition's own name+params, not a
        // call (bodyless signatures aren't in `fns`, so `enclosing` can't
        // screen them); same for `fn name(` of the fns we did collect.
        if i > 0 && matches!(&tokens[i - 1].tok, Tok::Ident(w) if w == "fn") {
            i += 1;
            continue;
        }
        let Some(caller) = enclosing(i) else {
            i += 1;
            continue;
        };
        stats.calls += 1;
        let resolution = if is_method && is_external_method(&name) {
            stats.unresolved += 1;
            stats.unresolved_names.insert(name.clone());
            Resolution::Unresolved
        } else {
            let crate_key = (unit.crate_name.as_str(), name.as_str());
            let candidates = by_crate_name
                .get(&crate_key)
                .filter(|v| !v.is_empty())
                .or_else(|| by_name.get(name.as_str()).filter(|v| !v.is_empty()));
            match candidates {
                Some(v) if v.len() == 1 => {
                    stats.resolved += 1;
                    Resolution::Resolved(v[0])
                }
                Some(v) => {
                    stats.ambiguous += 1;
                    Resolution::Ambiguous(v.clone())
                }
                None => {
                    stats.unresolved += 1;
                    stats.unresolved_names.insert(name.clone());
                    Resolution::Unresolved
                }
            }
        };
        out.push(CallSite {
            caller,
            callee: name,
            is_method,
            tok: i,
            line: tokens[i].line,
            resolution,
        });
        i += 1;
    }
}

/// Builds a [`FileUnit`] from raw source — the parse front-end shared by
/// the engine and the unit tests.
pub fn parse_unit(rel: &str, source: &str) -> FileUnit {
    let lexed = crate::lexer::lex(source);
    let analysis = crate::analyze::analyze(&lexed);
    FileUnit {
        rel: rel.to_owned(),
        crate_name: crate_of(rel),
        lexed,
        analysis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolved_pairs(table: &SymbolTable) -> Vec<(String, String)> {
        table
            .calls
            .iter()
            .filter_map(|c| match c.resolution {
                Resolution::Resolved(id) => {
                    Some((table.fns[c.caller].name.clone(), table.fns[id].name.clone()))
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn cross_module_calls_resolve_within_the_crate() {
        let units = vec![
            parse_unit("crates/a/src/lib.rs", "fn top() { helper(1); }"),
            parse_unit("crates/a/src/util.rs", "fn helper(x: u32) -> u32 { x }"),
        ];
        let t = SymbolTable::build(&units);
        assert_eq!(resolved_pairs(&t), vec![("top".into(), "helper".into())]);
        assert_eq!(t.stats.resolved, 1);
    }

    #[test]
    fn method_calls_resolve_by_name_but_std_methods_stay_external() {
        let units = vec![parse_unit(
            "crates/a/src/lib.rs",
            "fn refresh(&self) { self.rebuild(); }\n\
             fn rebuild(&self) { let v: Vec<u32> = Vec::new(); v.clear(); }",
        )];
        let t = SymbolTable::build(&units);
        // `.rebuild()` resolves to the local fn; `.clear()` and `Vec::new()`
        // hit the external bucket (`new` is deny-listed as a method; here it
        // is a path call but ambiguity rules still apply — no local `new`).
        assert_eq!(resolved_pairs(&t), vec![("refresh".into(), "rebuild".into())]);
        assert!(t.stats.unresolved_names.contains("clear"));
    }

    #[test]
    fn shadowed_names_prefer_the_callers_crate_and_cross_crate_uniques_resolve() {
        let units = vec![
            parse_unit("crates/a/src/lib.rs", "fn score() -> u32 { 1 }\nfn use_a() { score(); }"),
            parse_unit("crates/b/src/lib.rs", "fn score() -> u32 { 2 }\nfn use_b() { score(); }"),
            parse_unit("crates/c/src/lib.rs", "fn use_c() { score(); only_in_a(); }"),
            parse_unit("crates/a/src/extra.rs", "fn only_in_a() {}"),
        ];
        let t = SymbolTable::build(&units);
        let pairs = resolved_pairs(&t);
        // a::use_a -> a::score, b::use_b -> b::score.
        assert!(pairs.contains(&("use_a".into(), "score".into())));
        assert!(pairs.contains(&("use_b".into(), "score".into())));
        let a_score = t.fns.iter().find(|f| f.name == "score" && f.crate_name == "a");
        let resolved_use_a = t
            .calls
            .iter()
            .find(|c| t.fns[c.caller].name == "use_a")
            .map(|c| c.resolution.clone());
        assert_eq!(
            resolved_use_a,
            Some(Resolution::Resolved(a_score.map(|f| f.id).unwrap_or(usize::MAX)))
        );
        // c has no `score`: two workspace candidates -> ambiguous bucket.
        let c_score = t
            .calls
            .iter()
            .find(|c| t.fns[c.caller].name == "use_c" && c.callee == "score")
            .map(|c| c.resolution.clone());
        assert!(matches!(c_score, Some(Resolution::Ambiguous(ref v)) if v.len() == 2));
        // `only_in_a` is unique workspace-wide -> resolves cross-crate.
        assert!(pairs.contains(&("use_c".into(), "only_in_a".into())));
        assert_eq!(t.stats.ambiguous, 1);
    }

    #[test]
    fn unresolved_extern_bucket_counts_distinct_names() {
        let units = vec![parse_unit(
            "crates/a/src/lib.rs",
            "fn f(v: &[u32]) -> u32 { v.iter().sum::<u32>() + totally_external(v) }",
        )];
        let t = SymbolTable::build(&units);
        assert_eq!(t.stats.resolved, 0);
        assert!(t.stats.unresolved_names.contains("iter"));
        assert!(t.stats.unresolved_names.contains("totally_external"));
        // `sum::<u32>(` is turbofish syntax — the ident is not directly
        // followed by `(`, so it is (documented) not extracted at all.
        assert!(!t.stats.unresolved_names.contains("sum"));
    }

    #[test]
    fn has_return_and_attribute_skipping() {
        let units = vec![parse_unit(
            "crates/a/src/lib.rs",
            "#[derive(Clone)]\nstruct S;\n\
             fn void() { helper(); }\nfn valued() -> u32 { 3 }\nfn helper() {}",
        )];
        let t = SymbolTable::build(&units);
        let valued = t.fns.iter().find(|f| f.name == "valued").expect("valued");
        let void = t.fns.iter().find(|f| f.name == "void").expect("void");
        assert!(valued.has_return);
        assert!(!void.has_return);
        // `derive(` and `Clone` inside the attribute produced no call.
        assert!(t.calls.iter().all(|c| c.callee != "derive"));
    }
}
