//! The workspace call graph and deterministic taint propagation over it.
//!
//! Edges come from uniquely-resolved call sites only (see
//! [`crate::symbols`]); ambiguous and unresolved calls contribute no
//! edges, which keeps taint precise at the cost of (measured) recall.
//! Propagation is a plain BFS from the seed set with parent pointers, so
//! every tainted function can print a *witness chain* down to the seed —
//! `a -> b -> Instant::now()` — in its findings. Seeds and edges are
//! processed in stable (id, token) order, making chains byte-deterministic
//! across runs.

use crate::symbols::{Resolution, SymbolTable};

/// One call edge: caller → callee via a specific call site.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Caller [`crate::symbols::FnDef`] id.
    pub caller: usize,
    /// Callee [`crate::symbols::FnDef`] id.
    pub callee: usize,
    /// Index into [`SymbolTable::calls`].
    pub call: usize,
}

/// Adjacency over the symbol table.
pub struct CallGraph {
    /// Outgoing edges per function id, in call-site order.
    pub out_edges: Vec<Vec<Edge>>,
    /// Incoming edges per function id, in call-site order.
    pub in_edges: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Builds both adjacency directions from the resolved call sites.
    pub fn build(table: &SymbolTable) -> Self {
        let n = table.fns.len();
        let mut out_edges: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut in_edges: Vec<Vec<Edge>> = vec![Vec::new(); n];
        for (ci, c) in table.calls.iter().enumerate() {
            if let Resolution::Resolved(callee) = c.resolution {
                let e = Edge {
                    caller: c.caller,
                    callee,
                    call: ci,
                };
                out_edges[c.caller].push(e);
                in_edges[callee].push(e);
            }
        }
        CallGraph {
            out_edges,
            in_edges,
        }
    }
}

/// Why a function is tainted.
#[derive(Debug, Clone)]
pub enum TaintCause {
    /// The function is a seed; the string describes the intrinsic source
    /// (e.g. `Instant::now() at crates/x/src/a.rs:12`).
    Seed(String),
    /// Taint arrived through a call: (callee id, call-site line).
    Call(usize, u32),
}

/// Per-function taint state after [`propagate`]: `None` = clean.
pub type TaintMap = Vec<Option<TaintCause>>;

/// Propagates taint from `seeds` up the call graph (callee → caller).
/// A caller only becomes tainted when `gate(caller_id)` holds — the
/// determinism rules gate on "returns a value" so taint models *values
/// flowing out*, not mere reachability (otherwise every `main` would be
/// tainted by its transitive leaves).
pub fn propagate(
    table: &SymbolTable,
    graph: &CallGraph,
    seeds: Vec<(usize, String)>,
    gate: impl Fn(usize) -> bool,
) -> TaintMap {
    let mut taint: TaintMap = vec![None; graph.in_edges.len()];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for (id, label) in seeds {
        if taint[id].is_none() {
            taint[id] = Some(TaintCause::Seed(label));
            queue.push_back(id);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for e in &graph.in_edges[cur] {
            if taint[e.caller].is_none() && gate(e.caller) {
                taint[e.caller] = Some(TaintCause::Call(cur, table.calls[e.call].line));
                queue.push_back(e.caller);
            }
        }
    }
    taint
}

/// Renders the witness chain from `start` down to the seed:
/// `["start (file:line)", …, "<seed label>"]`. `first_line` is the call
/// line at which `start` reached the tainted callee (the finding site).
pub fn witness_chain(
    table: &SymbolTable,
    taint: &TaintMap,
    start: usize,
    first_callee: usize,
    first_line: u32,
) -> Vec<String> {
    let mut chain = Vec::new();
    let f = &table.fns[start];
    chain.push(format!("{} ({}:{})", f.name, f.file, first_line));
    let mut cur = first_callee;
    let mut hops = 0usize;
    loop {
        hops += 1;
        if hops > 64 {
            chain.push("… (chain truncated)".to_owned());
            break;
        }
        let fd = &table.fns[cur];
        match &taint[cur] {
            Some(TaintCause::Seed(label)) => {
                chain.push(format!("{} ({}:{})", fd.name, fd.file, fd.start_line));
                chain.push(label.clone());
                break;
            }
            Some(TaintCause::Call(next, line)) => {
                chain.push(format!("{} ({}:{})", fd.name, fd.file, line));
                cur = *next;
            }
            None => break,
        }
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{parse_unit, SymbolTable};

    #[test]
    fn taint_propagates_through_returning_fns_only() {
        let units = vec![parse_unit(
            "crates/a/src/lib.rs",
            "fn seed() -> u64 { 1 }\n\
             fn relay() -> u64 { seed() }\n\
             fn sink() { let _ = relay(); }\n\
             fn caller_of_sink() { sink(); }",
        )];
        let t = SymbolTable::build(&units);
        let g = CallGraph::build(&t);
        let seed_id = t.fns.iter().find(|f| f.name == "seed").map(|f| f.id);
        let seed_id = match seed_id {
            Some(id) => id,
            None => unreachable!("seed fn present"),
        };
        let taint = propagate(&t, &g, vec![(seed_id, "the-source".into())], |id| {
            t.fns[id].has_return
        });
        let by = |n: &str| t.fns.iter().find(|f| f.name == n).map(|f| f.id);
        assert!(taint[by("relay").into_iter().next().unwrap_or(usize::MAX)].is_some());
        // `sink` returns nothing: not tainted, and its caller cannot be.
        assert!(taint[by("sink").into_iter().next().unwrap_or(usize::MAX)].is_none());
        assert!(taint[by("caller_of_sink").into_iter().next().unwrap_or(usize::MAX)].is_none());
    }
}
