//! `crowdkit-lint` — the workspace's determinism & safety static-analysis
//! pass.
//!
//! The reproducibility contract of this system — same seed, same answers,
//! same serialized JSONL stream at any thread count — was enforced only by
//! tests until two latent `HashMap`-iteration-order float-reduction bugs
//! shipped and were caught by accident (the PR 3 `e16` scoring and
//! `truth::numeric` fixes). This crate turns those conventions into
//! machine-checked rules: a token-level scanner (no external parser —
//! the workspace is offline-vendored) walks every `.rs` file under
//! `crates/` and `src/`, builds a workspace [symbol table](symbols) and
//! [call graph](callgraph) on top, and fails the build on any unsuppressed
//! finding not covered by the ratcheted [baseline].
//!
//! Per-file rules: [DET001] hash-ordered iteration where floats accumulate
//! or output is serialized, [DET002] wall-clock reads outside the obs
//! boundary, [PANIC001] `unwrap`/`expect`/`panic!` in non-test library
//! code, [SAFETY001] `unsafe` without `// SAFETY:`, [DOC001] missing
//! `//!` module docs and crate-root lint headers.
//!
//! Workspace rules: interprocedural [taint] chains for DET001/DET002
//! (a helper that *returns* a wall-clock or hash-ordered value marks its
//! callers transitively, with a printed witness chain down to the seed),
//! and the [CONC family](conc) — CONC001 lock-ordering cycles, CONC002
//! atomic `Ordering` audit, CONC003 guards held across crowd I/O or
//! lock-acquiring calls.
//!
//! See [`rules`] for rationale, [`engine`] for the suppression protocol
//! and fingerprint scheme, and [`baseline`] for the ratchet semantics.
//!
//! Run it as `cargo run --release -p crowdkit-lint` (add `--json
//! LINT.json` for the machine-readable report, `--baseline
//! LINT_BASELINE.json` to ratchet, `--audit-suppressions` to flag stale
//! allows, `--rule ID` to filter).
//!
//! [DET001]: rules::ALL_RULES
//! [DET002]: rules::ALL_RULES
//! [PANIC001]: rules::ALL_RULES
//! [SAFETY001]: rules::ALL_RULES
//! [DOC001]: rules::ALL_RULES

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod baseline;
pub mod callgraph;
pub mod conc;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod symbols;
pub mod taint;

pub use engine::{scan, scan_file, scan_paths, Config, Report};
pub use rules::Finding;
