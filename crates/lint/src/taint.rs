//! Interprocedural determinism taint: the call-graph extension of DET001
//! and DET002.
//!
//! The PR 4 rules are per-site: they see `Instant::now()` where it is
//! written and `m.iter()` where it is iterated. A helper that *launders*
//! either through one function call is invisible to them:
//!
//! ```text
//! fn stamp() -> u64 { Instant::now()… }     // DET002 fires here
//! fn jitter() -> u64 { stamp() / 3 }        // …but this propagates it
//! fn schedule() -> u64 { jitter() + 1 }     // …and this consumes it
//! ```
//!
//! This pass seeds taint at the intrinsic sources (direct wall-clock
//! reads; hash-ordered iteration in value-returning functions), propagates
//! it callee→caller through *value-returning* functions only (a function
//! returning `()` consumes the value — reachability alone is not a leak),
//! and reports every call edge from non-test code into a tainted
//! function. Each finding carries the witness chain down to the seed.
//! DET001 findings additionally require the caller to accumulate floats
//! or serialize output — the same "order can leak" contexts as the
//! per-site rule.

use std::collections::BTreeSet;

use crate::callgraph::{witness_chain, CallGraph, TaintMap};
use crate::rules::{fold_profile, hash_iter_sites, hash_named_bindings, Finding, DET002_ALLOWLIST};
use crate::symbols::{FileUnit, FnDef, SymbolTable};
use crate::lexer::Tok;

/// Runs both taint analyses; `want` filters by rule id.
pub fn run(
    units: &[FileUnit],
    table: &SymbolTable,
    graph: &CallGraph,
    want: impl Fn(&str) -> bool,
    out: &mut Vec<Finding>,
) {
    if want("DET002") {
        det002_taint(units, table, graph, out);
    }
    if want("DET001") {
        det001_taint(units, table, graph, out);
    }
}

/// Direct wall-clock read inside the fn body (non-test tokens), if any:
/// `(line, label)`.
fn wall_clock_seed(unit: &FileUnit, f: &FnDef) -> Option<(u32, String)> {
    if DET002_ALLOWLIST.contains(&f.file.as_str()) {
        return None;
    }
    let tokens = &unit.lexed.tokens;
    for i in f.body_open..=f.body_close {
        if unit.analysis.is_test[i] {
            continue;
        }
        match &tokens[i].tok {
            Tok::Ident(w) if w == "Instant" => {
                let now = tokens.get(i + 1).is_some_and(|t| matches!(&t.tok, Tok::Punct(':')))
                    && tokens.get(i + 2).is_some_and(|t| matches!(&t.tok, Tok::Punct(':')))
                    && tokens
                        .get(i + 3)
                        .is_some_and(|t| matches!(&t.tok, Tok::Ident(n) if n == "now"));
                if now {
                    return Some((tokens[i].line, format!("Instant::now() ({}:{})", f.file, tokens[i].line)));
                }
            }
            Tok::Ident(w) if w == "SystemTime" => {
                return Some((tokens[i].line, format!("SystemTime ({}:{})", f.file, tokens[i].line)));
            }
            _ => {}
        }
    }
    None
}

fn det002_taint(
    units: &[FileUnit],
    table: &SymbolTable,
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    let seeds: Vec<(usize, String)> = table
        .fns
        .iter()
        .filter(|f| !f.is_test)
        .filter_map(|f| wall_clock_seed(&units[f.unit], f).map(|(_, label)| (f.id, label)))
        .collect();
    if seeds.is_empty() {
        return;
    }
    let taint = crate::callgraph::propagate(table, graph, seeds, |id| {
        let f = &table.fns[id];
        f.has_return && !DET002_ALLOWLIST.contains(&f.file.as_str())
    });
    report_edges_into_taint(
        units,
        table,
        graph,
        &taint,
        |_caller| true,
        "DET002",
        |callee, chain_tail| {
            format!(
                "wall-clock value reaches here through `{callee}` (chain: {chain_tail})"
            )
        },
        "taint-wall",
        "the callee transitively reads the host clock; route the timing through \
crowdkit-obs wall fields or make the callee deterministic. Suppress with \
`// crowdkit-lint: allow(DET002) — <reason>` where wall time is the point",
        out,
    );
}

fn det001_taint(
    units: &[FileUnit],
    table: &SymbolTable,
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    // Seeds: value-returning fns with hash-ordered iteration.
    let mut seeds: Vec<(usize, String)> = Vec::new();
    for f in &table.fns {
        if f.is_test || !f.has_return {
            continue;
        }
        let unit = &units[f.unit];
        let names = hash_named_bindings(&unit.lexed.tokens);
        if names.is_empty() {
            continue;
        }
        let span = match unit
            .analysis
            .fns
            .iter()
            .find(|s| s.kw == f.kw)
        {
            Some(s) => s,
            None => continue,
        };
        let sites = hash_iter_sites(span, &unit.lexed.tokens, &unit.analysis, &names);
        if let Some((line, desc)) = sites.first() {
            seeds.push((
                f.id,
                format!("hash-ordered iteration `{desc}` ({}:{line})", f.file),
            ));
        }
    }
    if seeds.is_empty() {
        return;
    }
    let taint = crate::callgraph::propagate(table, graph, seeds, |id| table.fns[id].has_return);
    // Callers must be order-sensitive consumers: float accumulation or
    // serialized output in the caller's own body.
    let consumer: Vec<bool> = table
        .fns
        .iter()
        .map(|f| {
            let unit = &units[f.unit];
            fold_profile(&unit.lexed.tokens[f.body_open..=f.body_close]).is_some()
        })
        .collect();
    report_edges_into_taint(
        units,
        table,
        graph,
        &taint,
        |caller| consumer[caller],
        "DET001",
        |callee, chain_tail| {
            format!(
                "`{callee}` propagates hash-ordered iteration into a function that \
accumulates floats or serializes (chain: {chain_tail})"
            )
        },
        "taint-hash",
        "the callee's result depends on HashMap/HashSet iteration order; sort in \
the callee or switch it to BTreeMap. Suppress with \
`// crowdkit-lint: allow(DET001) — <reason>` if order provably cannot reach output",
        out,
    );
}

/// Shared reporter: one finding per (caller, tainted callee) edge from
/// non-test code, at the first such call site.
#[allow(clippy::too_many_arguments)]
fn report_edges_into_taint(
    units: &[FileUnit],
    table: &SymbolTable,
    graph: &CallGraph,
    taint: &TaintMap,
    caller_filter: impl Fn(usize) -> bool,
    rule: &'static str,
    message: impl Fn(&str, &str) -> String,
    key_prefix: &str,
    hint: &'static str,
    out: &mut Vec<Finding>,
) {
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for edges in &graph.out_edges {
        for e in edges {
            if taint[e.callee].is_none() {
                continue;
            }
            let caller = &table.fns[e.caller];
            let callee = &table.fns[e.callee];
            if caller.is_test || e.caller == e.callee || !caller_filter(e.caller) {
                continue;
            }
            if DET002_ALLOWLIST.contains(&caller.file.as_str()) {
                continue;
            }
            let call = &table.calls[e.call];
            if units[caller.unit].analysis.is_test[call.tok] {
                continue;
            }
            if !seen.insert((e.caller, e.callee)) {
                continue;
            }
            let chain = witness_chain(table, taint, e.caller, e.callee, call.line);
            let chain_tail = chain.join(" -> ");
            out.push(Finding {
                rule,
                file: caller.file.clone(),
                line: call.line,
                message: message(&callee.name, &chain_tail),
                hint,
                key: format!("{key_prefix}:{}", callee.name),
                chain,
                ..Finding::default()
            });
        }
    }
}
