//! CLI entry point for `crowdkit-lint`.
//!
//! ```text
//! crowdkit-lint [--root <dir>] [--json <path>] [--rule <ID>]...
//!               [--baseline <path>] [--write-baseline <path>]
//!               [--audit-suppressions]
//! ```
//!
//! Exits nonzero when any unsuppressed finding survives — with
//! `--baseline`, when any **new** (unbaselined) finding survives or a
//! baseline entry went stale; with `--audit-suppressions`, additionally
//! when any suppression comment no longer suppresses anything. `ci.sh`
//! runs this between clippy and the doc check.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use crowdkit_lint::baseline;
use crowdkit_lint::engine::{
    apply_baseline, render_audit, render_human, render_json, scan, Config,
};
use crowdkit_lint::rules::ALL_RULES;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut audit = false;
    let mut only_rules: BTreeSet<String> = BTreeSet::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage("--json needs a path"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a path"),
            },
            "--write-baseline" => match args.next() {
                Some(v) => write_baseline = Some(PathBuf::from(v)),
                None => return usage("--write-baseline needs a path"),
            },
            "--audit-suppressions" => audit = true,
            "--rule" => match args.next() {
                Some(v) if ALL_RULES.contains(&v.as_str()) => {
                    only_rules.insert(v);
                }
                Some(v) => return usage(&format!("unknown rule `{v}` (known: {ALL_RULES:?})")),
                None => return usage("--rule needs a rule id"),
            },
            "--help" | "-h" => {
                println!(
                    "crowdkit-lint [--root <dir>] [--json <path>] [--rule <ID>]... \
[--baseline <path>] [--write-baseline <path>] [--audit-suppressions]\n\
                     rules: {ALL_RULES:?}"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if audit && !only_rules.is_empty() {
        // A rule filter would zero hit counts for the filtered-out rules
        // and report every one of their suppressions as stale.
        return usage("--audit-suppressions requires the full rule set (drop --rule)");
    }

    let mut report = scan(&Config { root, only_rules });

    if let Some(path) = &write_baseline {
        // Baseline the *current* surviving findings; reasons start as
        // PLACEHOLDER so a human must edit each one before check-in (the
        // parser rejects the file otherwise — "PLACEHOLDER" is ≥3 chars,
        // so the guard is review, not the parser; keep them greppable).
        let rows: Vec<(String, String, String, String)> = report
            .findings
            .iter()
            .map(|f| {
                (
                    f.fingerprint.clone(),
                    f.rule.to_owned(),
                    f.file.clone(),
                    "PLACEHOLDER — write why this debt is acknowledged".to_owned(),
                )
            })
            .collect();
        if let Err(e) = std::fs::write(path, baseline::render(&rows)) {
            eprintln!("crowdkit-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "crowdkit-lint: wrote {} entry(ies) to {} — edit every reason before \
checking it in",
            rows.len(),
            path.display()
        );
    }

    if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("crowdkit-lint: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let parsed = match baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("crowdkit-lint: invalid baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        apply_baseline(&mut report, &parsed);
    }

    print!("{}", render_human(&report));
    if audit {
        print!("{}", render_audit(&report));
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, render_json(&report)) {
            eprintln!("crowdkit-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    let stale_sups = if audit {
        report.stale_suppressions().len()
    } else {
        0
    };
    if report.findings.is_empty() && report.stale_baseline.is_empty() && stale_sups == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("crowdkit-lint: {msg}");
    ExitCode::FAILURE
}
