//! CLI entry point for `crowdkit-lint`.
//!
//! ```text
//! crowdkit-lint [--root <dir>] [--json <path>] [--rule <ID>]...
//! ```
//!
//! Exits nonzero when any unsuppressed finding survives — `ci.sh` runs
//! this between clippy and the doc check.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use crowdkit_lint::engine::{render_human, render_json, scan, Config};
use crowdkit_lint::rules::ALL_RULES;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut only_rules: BTreeSet<String> = BTreeSet::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage("--json needs a path"),
            },
            "--rule" => match args.next() {
                Some(v) if ALL_RULES.contains(&v.as_str()) => {
                    only_rules.insert(v);
                }
                Some(v) => return usage(&format!("unknown rule `{v}` (known: {ALL_RULES:?})")),
                None => return usage("--rule needs a rule id"),
            },
            "--help" | "-h" => {
                println!(
                    "crowdkit-lint [--root <dir>] [--json <path>] [--rule <ID>]...\n\
                     rules: {ALL_RULES:?}"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = scan(&Config { root, only_rules });
    print!("{}", render_human(&report));
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, render_json(&report)) {
            eprintln!("crowdkit-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("crowdkit-lint: {msg}");
    ExitCode::FAILURE
}
