//! A minimal Rust lexer: just enough structure for rule matching.
//!
//! The scanner does not parse Rust; it tokenizes it. Strings (cooked, raw,
//! byte), char literals, lifetimes, and comments (line and nested block)
//! are recognized so that rule patterns never match inside them, and
//! comments are kept on the side because suppressions and `// SAFETY:`
//! justifications live there. Everything else becomes a flat token stream
//! of identifiers, numeric literals, and single punctuation characters
//! with line numbers.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (kept verbatim; `contains('.')` detects floats).
    Num(String),
    /// A single punctuation character. Multi-character operators appear
    /// as adjacent tokens (`+=` is `Punct('+')` then `Punct('=')`).
    Punct(char),
}

/// A token plus its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A comment, kept separate from the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body (without the `//` / `/*` markers).
    pub text: String,
    /// True when code precedes the comment on the same line.
    pub trailing: bool,
}

/// Lexer output: the token stream and the comment list.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-trivia tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `source`. Unterminated constructs are tolerated (the rest of
/// the file is consumed as the open construct) — a linter must never
/// panic on weird input.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut last_tok_line: u32 = 0;

    macro_rules! bump_lines {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_lines!(c);
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                let start_line = line;
                let mut text = String::new();
                i += 2;
                while i < chars.len() && chars[i] != '\n' {
                    text.push(chars[i]);
                    i += 1;
                }
                out.comments.push(Comment {
                    line: start_line,
                    text,
                    trailing: last_tok_line == start_line,
                });
                continue;
            }
            if chars[i + 1] == '*' {
                let start_line = line;
                let mut text = String::new();
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                        text.push_str("/*");
                        continue;
                    }
                    if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                        if depth > 0 {
                            text.push_str("*/");
                        }
                        continue;
                    }
                    bump_lines!(chars[i]);
                    text.push(chars[i]);
                    i += 1;
                }
                out.comments.push(Comment {
                    line: start_line,
                    text,
                    trailing: last_tok_line == start_line,
                });
                continue;
            }
        }
        // Cooked string literal.
        if c == '"' {
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    ch => {
                        bump_lines!(ch);
                        i += 1;
                    }
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_char_lit = match next {
                Some('\\') => true,
                Some(n) if n != '\'' => after == Some('\''),
                _ => false,
            };
            if is_char_lit {
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        ch => {
                            bump_lines!(ch);
                            i += 1;
                        }
                    }
                }
            } else {
                // Lifetime: consume the quote and the label; emit nothing
                // (`&'a HashMap` then lexes as `& HashMap`, which is what
                // the type patterns want).
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            continue;
        }
        // Identifier — with raw/byte string lookahead.
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            let next = chars.get(i).copied();
            // Raw identifier: `r#fn`, `r#type` — a `#` immediately followed
            // by an identifier start. Must be discriminated from raw
            // strings (`r#"…"#`) before the raw-string lookahead, or the
            // escaped keyword would re-lex as the bare keyword and confuse
            // the structural pass (`let r#fn = 1` is not a function item).
            if word == "r"
                && next == Some('#')
                && chars.get(i + 1).copied().is_some_and(is_ident_start)
            {
                i += 1; // the `#`
                let id_start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let ident: String = chars[id_start..i].iter().collect();
                out.tokens.push(Token {
                    tok: Tok::Ident(format!("r#{ident}")),
                    line,
                });
                last_tok_line = line;
                continue;
            }
            let raw_string = (word == "r" || word == "br")
                && matches!(next, Some('"') | Some('#'));
            let byte_string = word == "b" && matches!(next, Some('"') | Some('\''));
            if raw_string {
                // r"..." / r#"..."# / br##"..."## — count the hashes,
                // then scan for `"` followed by that many hashes.
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    hashes += 1;
                    i += 1;
                }
                if chars.get(i) == Some(&'"') {
                    i += 1;
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        bump_lines!(chars[i]);
                        i += 1;
                    }
                }
                continue;
            }
            if byte_string {
                let quote = match next {
                    Some(q) => q,
                    None => continue,
                };
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        ch if ch == quote => {
                            i += 1;
                            break;
                        }
                        ch => {
                            bump_lines!(ch);
                            i += 1;
                        }
                    }
                }
                continue;
            }
            out.tokens.push(Token {
                tok: Tok::Ident(word),
                line,
            });
            last_tok_line = line;
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (is_ident_continue(chars[i])) {
                i += 1;
            }
            // Fractional part: a dot followed by a digit (not `..`).
            if chars.get(i) == Some(&'.')
                && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
            {
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            // Exponent sign: `1e-5`.
            if matches!(chars.get(i), Some('+') | Some('-'))
                && chars[start..i].last().is_some_and(|l| *l == 'e' || *l == 'E')
            {
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
            }
            out.tokens.push(Token {
                tok: Tok::Num(chars[start..i].iter().collect()),
                line,
            });
            last_tok_line = line;
            continue;
        }
        // Everything else: single punctuation char.
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        last_tok_line = line;
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_tokens() {
        let src = r##"
            let x = "unwrap() inside a string";
            // unwrap() inside a comment
            /* block /* nested */ unwrap() */
            let r = r#"raw unwrap()"#;
            let b = b"bytes unwrap()";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_owned()));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(m: &'a str) { let c = '\\''; let d = 'x'; }";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "f", "m", "str", "let", "c", "let", "d"]);
        // Lifetime label leaks as no token; `&'a str` keeps the `&`.
        let toks = lex("&'a HashMap").tokens;
        assert_eq!(toks[0].tok, Tok::Punct('&'));
        assert_eq!(toks[1].tok, Tok::Ident("HashMap".into()));
    }

    #[test]
    fn float_literals_keep_their_dot() {
        let toks = lex("let x = 0.5 + 1e-3; for i in 0..10 {}").tokens;
        let nums: Vec<String> = toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Num(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0.5", "1e-3", "0", "10"]);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings_or_keywords() {
        // `r#fn` / `r#type` are identifiers, not raw-string openers; the
        // old lexer dropped the `r#` and re-lexed the bare keyword, which
        // made the structural pass see a phantom `fn` item.
        let ids = idents("let r#fn = 1; let r#type = r#fn + 1;");
        assert_eq!(ids, vec!["let", "r#fn", "let", "r#type", "r#fn"]);
        assert!(!ids.contains(&"fn".to_owned()));
        // Raw strings still lex as trivia, including just after a raw ident.
        let src = "let r#match = r#\"fn unwrap()\"#;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "r#match"]);
        // And a raw ident used as a call keeps its `(` adjacency.
        let toks = lex("r#match(x)").tokens;
        assert_eq!(toks[0].tok, Tok::Ident("r#match".into()));
        assert_eq!(toks[1].tok, Tok::Punct('('));
    }

    #[test]
    fn trailing_comment_flag() {
        let lx = lex("let x = 1; // trailing\n// standalone\n");
        assert!(lx.comments[0].trailing);
        assert!(!lx.comments[1].trailing);
    }

    #[test]
    fn line_numbers_advance_through_all_trivia() {
        let lx = lex("a\n\"x\ny\"\n/* c\nc */\nb");
        assert_eq!(lx.tokens[0].line, 1);
        assert_eq!(lx.tokens[1].line, 6);
    }
}
