//! The scan engine: walks the tree, runs the rules, applies suppressions,
//! and renders human and JSON reports.
//!
//! # Suppression protocol
//!
//! Suppressions are explicit and auditable. Three forms, all requiring a
//! written reason after a separator (`—`, `--`, or `:`):
//!
//! * trailing, on the offending line:
//!   `let t = x.unwrap(); // crowdkit-lint: allow(PANIC001) — len checked above`
//! * standalone, on the line above the offending line — when that line
//!   opens a block (`fn`, `for`, `impl`, …), the whole block is covered:
//!   `// crowdkit-lint: allow(DET001) — folded into a max, order-free`
//! * file-level, anywhere in the file (conventionally at the top):
//!   `// crowdkit-lint: allow-file(PANIC001) — experiment harness, fail-fast by design`
//!
//! A suppression with no reason does not suppress anything and is itself
//! reported (`LINT000`), so the audit trail cannot silently decay.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use crate::analyze::{analyze, Analysis};
use crate::lexer::{lex, Comment, Lexed, Tok};
use crate::rules::{run_rules, FileCtx, Finding, ALL_RULES};

/// Scan configuration.
pub struct Config {
    /// Repository root; `crates/` and `src/` under it are scanned.
    pub root: PathBuf,
    /// When non-empty, only these rules run.
    pub only_rules: BTreeSet<String>,
}

/// Scan output: surviving findings plus suppression accounting.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Count of suppressed findings per rule.
    pub suppressed: BTreeMap<String, usize>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Total suppressed findings across rules.
    pub fn suppressed_total(&self) -> usize {
        self.suppressed.values().sum()
    }
}

/// One parsed suppression comment.
struct Suppression {
    rules: Vec<String>,
    /// Line range (inclusive) the suppression covers; `None` = whole file.
    span: Option<(u32, u32)>,
}

/// Walks `crates/` and `src/` under the root, collecting `.rs` files.
/// Skips `target/`, `vendor/`, `fixtures/` (lint test data is known-bad
/// on purpose), and hidden directories.
fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out);
        }
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.')
                || name == "target"
                || name == "vendor"
                || name == "fixtures"
            {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Parses `crowdkit-lint: allow(...)` / `allow-file(...)` comments.
/// Returns the suppressions and any malformed-suppression findings.
fn parse_suppressions(
    rel_path: &str,
    lexed: &Lexed,
    analysis: &Analysis,
) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        // Doc comments (`//!`, `///`) are prose — suppression examples in
        // them must stay inert.
        if c.text.starts_with('!') || c.text.starts_with('/') {
            continue;
        }
        let Some(at) = c.text.find("crowdkit-lint:") else {
            continue;
        };
        let rest = c.text[at + "crowdkit-lint:".len()..].trim_start();
        let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            bad.push(malformed(rel_path, c, "expected `allow(RULE)` or `allow-file(RULE)`"));
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad.push(malformed(rel_path, c, "unclosed rule list"));
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() || rules.iter().any(|r| !ALL_RULES.contains(&r.as_str())) {
            bad.push(malformed(rel_path, c, "unknown or empty rule id"));
            continue;
        }
        // The reason: text after the closing paren, past a separator.
        let reason = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':', ' '])
            .trim();
        if reason.len() < 3 {
            bad.push(malformed(rel_path, c, "missing written reason"));
            continue;
        }
        let span = if file_wide {
            None
        } else if c.trailing {
            Some((c.line, c.line))
        } else {
            // Standalone: covers the next code line; when that line opens
            // a block, the whole block.
            Some(standalone_span(c.line, lexed, analysis))
        };
        sups.push(Suppression { rules, span });
    }
    (sups, bad)
}

fn malformed(rel_path: &str, c: &Comment, why: &str) -> Finding {
    Finding {
        rule: "LINT000",
        file: rel_path.to_owned(),
        line: c.line,
        message: format!("malformed suppression: {why}"),
        hint: "format: `// crowdkit-lint: allow(RULE_ID) — <reason>` \
(or allow-file); the reason is mandatory",
    }
}

/// Computes the line span a standalone suppression at `comment_line`
/// covers: the next code line, extended to the full block when that line
/// opens one before hitting a `;`.
fn standalone_span(comment_line: u32, lexed: &Lexed, analysis: &Analysis) -> (u32, u32) {
    let tokens = &lexed.tokens;
    let Some(first) = tokens.iter().position(|t| t.line > comment_line) else {
        return (comment_line + 1, comment_line + 1);
    };
    let target_line = tokens[first].line;
    let mut i = first;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct(';') => break,
            Tok::Punct('{') => {
                if let Some(close) = analysis.brace_match[i] {
                    return (target_line, tokens[close].line);
                }
                break;
            }
            _ => {}
        }
        i += 1;
    }
    (target_line, target_line)
}

/// Scans one file. Returns (kept findings, suppressed-count-per-rule).
pub fn scan_file(
    root: &Path,
    path: &Path,
    only_rules: &BTreeSet<String>,
) -> (Vec<Finding>, BTreeMap<String, usize>) {
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let source = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            return (
                vec![Finding {
                    rule: "LINT000",
                    file: rel,
                    line: 0,
                    message: format!("unreadable source file: {e}"),
                    hint: "the scanner must be able to read every source file it governs",
                }],
                BTreeMap::new(),
            );
        }
    };
    let lexed = lex(&source);
    let analysis = analyze(&lexed);
    let is_crate_root = rel.ends_with("src/lib.rs") && {
        path.parent()
            .and_then(Path::parent)
            .is_some_and(|crate_dir| crate_dir.join("Cargo.toml").is_file())
    };
    let ctx = FileCtx {
        rel_path: &rel,
        is_crate_root,
    };
    let raw = run_rules(&ctx, &lexed, &analysis, only_rules);
    let (sups, malformed) = parse_suppressions(&rel, &lexed, &analysis);

    let mut kept = Vec::new();
    let mut suppressed: BTreeMap<String, usize> = BTreeMap::new();
    for f in raw {
        let hit = sups.iter().any(|s| {
            s.rules.iter().any(|r| r == f.rule)
                && match s.span {
                    None => true,
                    Some((lo, hi)) => f.line >= lo && f.line <= hi,
                }
        });
        if hit {
            *suppressed.entry(f.rule.to_owned()).or_insert(0) += 1;
        } else {
            kept.push(f);
        }
    }
    // LINT000 findings (malformed suppressions) are never suppressible.
    kept.extend(malformed);
    (kept, suppressed)
}

/// Runs the full scan.
pub fn scan(config: &Config) -> Report {
    let files = collect_files(&config.root);
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for path in &files {
        let (kept, suppressed) = scan_file(&config.root, path, &config.only_rules);
        report.findings.extend(kept);
        for (rule, n) in suppressed {
            *report.suppressed.entry(rule).or_insert(0) += n;
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Renders the human-readable report.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{} {} {}\n    hint: {}\n",
            f.file, f.line, f.rule, f.message, f.hint
        ));
    }
    out.push_str(&format!(
        "crowdkit-lint: {} file(s) scanned, {} unsuppressed finding(s), {} suppressed\n",
        report.files_scanned,
        report.findings.len(),
        report.suppressed_total()
    ));
    out
}

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders the machine-readable report (the `LINT.json` format).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"unsuppressed\": {},\n  \"suppressed\": {},\n",
        report.findings.len(),
        report.suppressed_total()
    ));
    out.push_str("  \"suppressed_by_rule\": {");
    for (i, (rule, n)) in report.suppressed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        json_escape(rule, &mut out);
        out.push_str(&format!(": {n}"));
    }
    out.push_str("\n  },\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"rule\": ");
        json_escape(f.rule, &mut out);
        out.push_str(", \"file\": ");
        json_escape(&f.file, &mut out);
        out.push_str(&format!(", \"line\": {}, \"message\": ", f.line));
        json_escape(&f.message, &mut out);
        out.push_str(", \"hint\": ");
        json_escape(f.hint, &mut out);
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}
