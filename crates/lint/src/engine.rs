//! The scan engine: walks the tree, runs the per-file rules, builds the
//! workspace symbol table + call graph, runs the interprocedural passes
//! (taint, CONC), applies suppressions and the ratcheted baseline, and
//! renders human and JSON reports.
//!
//! # Suppression protocol
//!
//! Suppressions are explicit and auditable. Three forms, all requiring a
//! written reason after a separator (`—`, `--`, or `:`):
//!
//! * trailing, on the offending line:
//!   `let t = x.unwrap(); // crowdkit-lint: allow(PANIC001) — len checked above`
//! * standalone, on the line above the offending line — when that line
//!   opens a block (`fn`, `for`, `impl`, …), the whole block is covered:
//!   `// crowdkit-lint: allow(DET001) — folded into a max, order-free`
//! * file-level, anywhere in the file (conventionally at the top):
//!   `// crowdkit-lint: allow-file(PANIC001) — experiment harness, fail-fast by design`
//!
//! A suppression with no reason does not suppress anything and is itself
//! reported (`LINT000`), so the audit trail cannot silently decay. Every
//! suppression's *hit count* is tracked; `--audit-suppressions` fails on
//! suppressions that no longer suppress anything (stale allows).
//!
//! # Fingerprints and the baseline
//!
//! Every surviving finding gets a stable fingerprint:
//! `fnv1a64(rule | file | scope | key | ordinal)` — the enclosing function
//! name and the rule-specific key rather than the line number, so
//! fingerprints survive unrelated edits above the finding. `--baseline
//! LINT_BASELINE.json` subtracts baselined fingerprints (see
//! [`crate::baseline`]) and fails only on *new* debt and *stale* entries.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use crate::analyze::{analyze, Analysis};
use crate::baseline::{Baseline, BaselineEntry};
use crate::callgraph::CallGraph;
use crate::lexer::{lex, Comment, Lexed, Tok};
use crate::rules::{run_rules, FileCtx, Finding, ALL_RULES};
use crate::symbols::{FileUnit, ResolutionStats, SymbolTable};

/// Scan configuration.
pub struct Config {
    /// Repository root; `crates/` and `src/` under it are scanned.
    pub root: PathBuf,
    /// When non-empty, only these rules run.
    pub only_rules: BTreeSet<String>,
}

/// One suppression comment with its audit state.
#[derive(Debug, Clone)]
pub struct SuppressionRecord {
    /// File containing the comment.
    pub file: String,
    /// Comment line.
    pub line: u32,
    /// Rules it covers.
    pub rules: Vec<String>,
    /// True for `allow-file`.
    pub file_wide: bool,
    /// The written reason.
    pub reason: String,
    /// Findings this suppression absorbed in the last scan. Zero means the
    /// allow is *stale*: the code it excused no longer triggers the rule.
    pub hits: usize,
}

/// Scan output: surviving findings plus suppression/baseline accounting.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed, unbaselined findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings matched by the baseline (acknowledged debt).
    pub baselined: Vec<Finding>,
    /// Baseline entries that matched nothing — debt that was fixed but not
    /// deleted from the file. The ratchet fails on these.
    pub stale_baseline: Vec<BaselineEntry>,
    /// Count of suppressed findings per rule.
    pub suppressed: BTreeMap<String, usize>,
    /// Every suppression comment in the tree, with hit counts.
    pub suppressions: Vec<SuppressionRecord>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Call-site resolution accounting from the symbol table.
    pub resolution: ResolutionStats,
    /// Number of function definitions in the symbol table.
    pub functions: usize,
}

impl Report {
    /// Total suppressed findings across rules.
    pub fn suppressed_total(&self) -> usize {
        self.suppressed.values().sum()
    }

    /// Suppressions whose hit count is zero (stale allows).
    pub fn stale_suppressions(&self) -> Vec<&SuppressionRecord> {
        self.suppressions.iter().filter(|s| s.hits == 0).collect()
    }
}

/// One parsed suppression comment, pre-audit.
struct Suppression {
    rules: Vec<String>,
    /// Line range (inclusive) the suppression covers; `None` = whole file.
    span: Option<(u32, u32)>,
    /// Comment line (for the audit record).
    line: u32,
    file_wide: bool,
    reason: String,
    hits: usize,
}

/// Walks `crates/` and `src/` under the root, collecting `.rs` files.
/// Skips `target/`, `vendor/`, `fixtures/` (lint test data is known-bad
/// on purpose), and hidden directories.
fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out);
        }
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.')
                || name == "target"
                || name == "vendor"
                || name == "fixtures"
            {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Parses `crowdkit-lint: allow(...)` / `allow-file(...)` comments.
/// Returns the suppressions and any malformed-suppression findings.
fn parse_suppressions(
    rel_path: &str,
    lexed: &Lexed,
    analysis: &Analysis,
) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        // Doc comments (`//!`, `///`) are prose — suppression examples in
        // them must stay inert.
        if c.text.starts_with('!') || c.text.starts_with('/') {
            continue;
        }
        let Some(at) = c.text.find("crowdkit-lint:") else {
            continue;
        };
        let rest = c.text[at + "crowdkit-lint:".len()..].trim_start();
        let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            bad.push(malformed(rel_path, c, "expected `allow(RULE)` or `allow-file(RULE)`"));
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad.push(malformed(rel_path, c, "unclosed rule list"));
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() || rules.iter().any(|r| !ALL_RULES.contains(&r.as_str())) {
            bad.push(malformed(rel_path, c, "unknown or empty rule id"));
            continue;
        }
        // The reason: text after the closing paren, past a separator.
        let reason = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':', ' '])
            .trim();
        if reason.len() < 3 {
            bad.push(malformed(rel_path, c, "missing written reason"));
            continue;
        }
        let span = if file_wide {
            None
        } else if c.trailing {
            Some((c.line, c.line))
        } else {
            // Standalone: covers the next code line; when that line opens
            // a block, the whole block.
            Some(standalone_span(c.line, lexed, analysis))
        };
        sups.push(Suppression {
            rules,
            span,
            line: c.line,
            file_wide,
            reason: reason.to_owned(),
            hits: 0,
        });
    }
    (sups, bad)
}

fn malformed(rel_path: &str, c: &Comment, why: &str) -> Finding {
    Finding {
        rule: "LINT000",
        file: rel_path.to_owned(),
        line: c.line,
        message: format!("malformed suppression: {why}"),
        hint: "format: `// crowdkit-lint: allow(RULE_ID) — <reason>` \
(or allow-file); the reason is mandatory",
        key: "malformed".to_owned(),
        ..Finding::default()
    }
}

/// Computes the line span a standalone suppression at `comment_line`
/// covers: the next code line, extended to the full block when that line
/// opens one before hitting a `;`.
fn standalone_span(comment_line: u32, lexed: &Lexed, analysis: &Analysis) -> (u32, u32) {
    let tokens = &lexed.tokens;
    let Some(first) = tokens.iter().position(|t| t.line > comment_line) else {
        return (comment_line + 1, comment_line + 1);
    };
    let target_line = tokens[first].line;
    let mut i = first;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct(';') => break,
            Tok::Punct('{') => {
                if let Some(close) = analysis.brace_match[i] {
                    return (target_line, tokens[close].line);
                }
                break;
            }
            _ => {}
        }
        i += 1;
    }
    (target_line, target_line)
}

/// Whether `path` is a crate root (`src/lib.rs` with a sibling
/// `Cargo.toml` two levels up).
fn is_crate_root(rel: &str, path: &Path) -> bool {
    rel.ends_with("src/lib.rs")
        && path
            .parent()
            .and_then(Path::parent)
            .is_some_and(|crate_dir| crate_dir.join("Cargo.toml").is_file())
}

/// Scans one file in isolation — per-file rules only, no workspace
/// analysis, no fingerprints. The fixture tests use this to pin individual
/// per-site rule behavior. Returns (kept findings, suppressed-per-rule).
pub fn scan_file(
    root: &Path,
    path: &Path,
    only_rules: &BTreeSet<String>,
) -> (Vec<Finding>, BTreeMap<String, usize>) {
    let rel = rel_of(root, path);
    let source = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return (vec![unreadable(&rel, &e)], BTreeMap::new()),
    };
    let lexed = lex(&source);
    let analysis = analyze(&lexed);
    let ctx = FileCtx {
        rel_path: &rel,
        is_crate_root: is_crate_root(&rel, path),
    };
    let raw = run_rules(&ctx, &lexed, &analysis, only_rules);
    let (mut sups, malformed) = parse_suppressions(&rel, &lexed, &analysis);
    let mut kept = Vec::new();
    let mut suppressed: BTreeMap<String, usize> = BTreeMap::new();
    for f in raw {
        if suppress(&mut sups, &f) {
            *suppressed.entry(f.rule.to_owned()).or_insert(0) += 1;
        } else {
            kept.push(f);
        }
    }
    // LINT000 findings (malformed suppressions) are never suppressible.
    kept.extend(malformed);
    (kept, suppressed)
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn unreadable(rel: &str, e: &std::io::Error) -> Finding {
    Finding {
        rule: "LINT000",
        file: rel.to_owned(),
        line: 0,
        message: format!("unreadable source file: {e}"),
        hint: "the scanner must be able to read every source file it governs",
        key: "unreadable".to_owned(),
        ..Finding::default()
    }
}

/// Tries to absorb `f` into one of `sups`; bumps the winner's hit count.
fn suppress(sups: &mut [Suppression], f: &Finding) -> bool {
    for s in sups.iter_mut() {
        let applies = s.rules.iter().any(|r| r == f.rule)
            && match s.span {
                None => true,
                Some((lo, hi)) => f.line >= lo && f.line <= hi,
            };
        if applies {
            s.hits += 1;
            return true;
        }
    }
    false
}

/// FNV-1a, 64-bit — the fingerprint hash. Stable across platforms and
/// releases by construction.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Scans an explicit file list as one workspace: per-file rules, then the
/// symbol table + call graph, then the interprocedural passes, then
/// suppressions and fingerprints. `scan` and the workspace-level tests
/// both land here.
pub fn scan_paths(root: &Path, files: &[PathBuf], only_rules: &BTreeSet<String>) -> Report {
    let want = |rule: &str| only_rules.is_empty() || only_rules.contains(rule);
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };

    // Phase 1: parse every file, run the per-file rules, collect
    // suppressions.
    let mut units: Vec<FileUnit> = Vec::with_capacity(files.len());
    let mut findings: Vec<Finding> = Vec::new();
    let mut lint000: Vec<Finding> = Vec::new();
    // Suppressions per unit index, applied after the workspace passes.
    let mut sups_by_file: BTreeMap<String, Vec<Suppression>> = BTreeMap::new();
    for path in files {
        let rel = rel_of(root, path);
        let source = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                lint000.push(unreadable(&rel, &e));
                continue;
            }
        };
        let unit = crate::symbols::parse_unit(&rel, &source);
        let ctx = FileCtx {
            rel_path: &rel,
            is_crate_root: is_crate_root(&rel, path),
        };
        findings.extend(run_rules(&ctx, &unit.lexed, &unit.analysis, only_rules));
        let (sups, bad) = parse_suppressions(&rel, &unit.lexed, &unit.analysis);
        lint000.extend(bad);
        sups_by_file.insert(rel.clone(), sups);
        units.push(unit);
    }

    // Phase 2: workspace analysis.
    let table = SymbolTable::build(&units);
    let graph = CallGraph::build(&table);
    crate::taint::run(&units, &table, &graph, want, &mut findings);
    crate::conc::run(&units, &table, want, &mut findings);
    report.functions = table.fns.len();
    report.resolution = table.stats.clone();

    // Scope every finding by its enclosing function (used in fingerprints).
    for f in &mut findings {
        if f.scope.is_empty() {
            f.scope = table.scope_at_line(&f.file, f.line);
        }
    }

    // Phase 3: suppressions (hit-tracked), then LINT000, sort, fingerprint.
    let mut kept: Vec<Finding> = Vec::new();
    for f in findings {
        let absorbed = sups_by_file
            .get_mut(&f.file)
            .is_some_and(|sups| suppress(sups, &f));
        if absorbed {
            *report.suppressed.entry(f.rule.to_owned()).or_insert(0) += 1;
        } else {
            kept.push(f);
        }
    }
    kept.extend(lint000);
    kept.sort_by(|a, b| (&a.file, a.line, a.rule, &a.key).cmp(&(&b.file, b.line, b.rule, &b.key)));
    // Ordinals disambiguate repeated (rule, file, scope, key) findings in
    // source order; everything else about the fingerprint is line-free.
    let mut ordinals: BTreeMap<(String, String, String, String), usize> = BTreeMap::new();
    for f in &mut kept {
        let slot = ordinals
            .entry((
                f.rule.to_owned(),
                f.file.clone(),
                f.scope.clone(),
                f.key.clone(),
            ))
            .or_insert(0);
        let ordinal = *slot;
        *slot += 1;
        f.fingerprint = format!(
            "{:016x}",
            fnv1a64(&format!(
                "{}|{}|{}|{}|{}",
                f.rule, f.file, f.scope, f.key, ordinal
            ))
        );
    }
    report.findings = kept;

    // Audit records, in (file, line) order.
    for (file, sups) in sups_by_file {
        for s in sups {
            report.suppressions.push(SuppressionRecord {
                file: file.clone(),
                line: s.line,
                rules: s.rules,
                file_wide: s.file_wide,
                reason: s.reason,
                hits: s.hits,
            });
        }
    }
    report
}

/// Runs the full scan over the configured root.
pub fn scan(config: &Config) -> Report {
    let files = collect_files(&config.root);
    scan_paths(&config.root, &files, &config.only_rules)
}

/// Applies a baseline to a scanned report: findings whose fingerprint is
/// baselined move to `report.baselined`; entries matching nothing land in
/// `report.stale_baseline`. After this, `report.findings` is exactly the
/// *new* debt.
pub fn apply_baseline(report: &mut Report, baseline: &Baseline) {
    let by_fp: BTreeMap<&str, &BaselineEntry> = baseline
        .entries
        .iter()
        .map(|e| (e.fingerprint.as_str(), e))
        .collect();
    let mut matched: BTreeSet<String> = BTreeSet::new();
    let mut new_findings = Vec::new();
    for f in report.findings.drain(..) {
        if by_fp.contains_key(f.fingerprint.as_str()) {
            matched.insert(f.fingerprint.clone());
            report.baselined.push(f);
        } else {
            new_findings.push(f);
        }
    }
    report.findings = new_findings;
    report.stale_baseline = baseline
        .entries
        .iter()
        .filter(|e| !matched.contains(&e.fingerprint))
        .cloned()
        .collect();
}

/// Renders the human-readable report.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{} {} {}\n    hint: {}\n",
            f.file, f.line, f.rule, f.message, f.hint
        ));
        if !f.chain.is_empty() {
            out.push_str(&format!("    chain: {}\n", f.chain.join(" -> ")));
        }
    }
    for e in &report.stale_baseline {
        out.push_str(&format!(
            "{}: STALE baseline entry {} ({}) — the finding no longer exists; delete \
the entry and decrement burn_down\n",
            e.file, e.fingerprint, e.rule
        ));
    }
    out.push_str(&format!(
        "crowdkit-lint: {} file(s), {} fn(s), {} call(s) ({} resolved / {} ambiguous / \
{} unresolved); {} unsuppressed finding(s), {} suppressed, {} baselined\n",
        report.files_scanned,
        report.functions,
        report.resolution.calls,
        report.resolution.resolved,
        report.resolution.ambiguous,
        report.resolution.unresolved,
        report.findings.len(),
        report.suppressed_total(),
        report.baselined.len(),
    ));
    out
}

/// Renders the suppression audit (`--audit-suppressions`): every
/// suppression grouped by rule then file, stale ones flagged.
pub fn render_audit(report: &Report) -> String {
    let mut by_rule: BTreeMap<&str, Vec<&SuppressionRecord>> = BTreeMap::new();
    for s in &report.suppressions {
        for r in &s.rules {
            by_rule.entry(r).or_default().push(s);
        }
    }
    let mut out = String::new();
    let stale = report.stale_suppressions().len();
    for (rule, sups) in &by_rule {
        out.push_str(&format!("{rule}: {} suppression(s)\n", sups.len()));
        for s in sups {
            let kind = if s.file_wide { "allow-file" } else { "allow" };
            let status = if s.hits == 0 {
                "STALE".to_owned()
            } else {
                format!("{} hit(s)", s.hits)
            };
            out.push_str(&format!(
                "  {}:{} [{kind}] {status} — {}\n",
                s.file, s.line, s.reason
            ));
        }
    }
    out.push_str(&format!(
        "crowdkit-lint audit: {} suppression(s), {} stale\n",
        report.suppressions.len(),
        stale
    ));
    out
}

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_finding(f: &Finding, out: &mut String) {
    out.push_str("\n    {\"rule\": ");
    json_escape(f.rule, out);
    out.push_str(", \"file\": ");
    json_escape(&f.file, out);
    out.push_str(&format!(", \"line\": {}, \"scope\": ", f.line));
    json_escape(&f.scope, out);
    out.push_str(", \"key\": ");
    json_escape(&f.key, out);
    out.push_str(", \"fingerprint\": ");
    json_escape(&f.fingerprint, out);
    out.push_str(", \"message\": ");
    json_escape(&f.message, out);
    out.push_str(", \"hint\": ");
    json_escape(f.hint, out);
    if !f.chain.is_empty() {
        out.push_str(", \"chain\": [");
        for (i, link) in f.chain.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json_escape(link, out);
        }
        out.push(']');
    }
    out.push('}');
}

/// Renders the machine-readable report (the `LINT.json` format, v2).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"version\": 2,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"unsuppressed\": {},\n  \"suppressed\": {},\n  \"baselined\": {},\n",
        report.findings.len(),
        report.suppressed_total(),
        report.baselined.len(),
    ));
    out.push_str(&format!(
        "  \"callgraph\": {{\"functions\": {}, \"calls\": {}, \"resolved\": {}, \
\"ambiguous\": {}, \"unresolved\": {}, \"distinct_extern_names\": {}}},\n",
        report.functions,
        report.resolution.calls,
        report.resolution.resolved,
        report.resolution.ambiguous,
        report.resolution.unresolved,
        report.resolution.unresolved_names.len(),
    ));
    out.push_str("  \"suppressed_by_rule\": {");
    for (i, (rule, n)) in report.suppressed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        json_escape(rule, &mut out);
        out.push_str(&format!(": {n}"));
    }
    out.push_str("\n  },\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_finding(f, &mut out);
    }
    out.push_str("\n  ],\n  \"baselined_findings\": [");
    for (i, f) in report.baselined.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_finding(f, &mut out);
    }
    out.push_str("\n  ],\n  \"suppressions\": [");
    for (i, s) in report.suppressions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"file\": ");
        json_escape(&s.file, &mut out);
        out.push_str(&format!(", \"line\": {}, \"rules\": [", s.line));
        for (j, r) in s.rules.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            json_escape(r, &mut out);
        }
        out.push_str(&format!(
            "], \"file_wide\": {}, \"hits\": {}, \"reason\": ",
            s.file_wide, s.hits
        ));
        json_escape(&s.reason, &mut out);
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}
