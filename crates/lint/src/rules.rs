//! The rule set. Each rule is a pure function from one file's lexed +
//! analyzed form to findings.
//!
//! Every rule here is derived from a real invariant this workspace has
//! already paid to learn (see DESIGN.md, "Determinism invariants"):
//!
//! * **DET001** — hash-ordered iteration in functions that accumulate
//!   floats or write serialized output (the PR 3 `e16` / `truth::numeric`
//!   bug class: float addition is not associative, so `HashMap` order
//!   leaks into results).
//! * **DET002** — wall-clock reads outside the sanctioned telemetry
//!   boundary (`crowdkit-obs`' wall-clock-segregated event fields).
//! * **PANIC001** — `unwrap`/`expect`/`panic!` in non-test library code.
//! * **SAFETY001** — `unsafe` without an adjacent `// SAFETY:` comment.
//! * **DOC001** — src modules must open with a `//!` module doc;
//!   crate roots must additionally carry the standard lint header.

use std::collections::BTreeSet;

use crate::analyze::Analysis;
use crate::lexer::{Lexed, Tok, Token};

/// One reported rule violation.
#[derive(Debug, Clone, Default)]
pub struct Finding {
    /// Stable rule identifier (`DET001`, …).
    pub rule: &'static str,
    /// Path relative to the scan root.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// What is wrong, specifically.
    pub message: String,
    /// How to fix it (or how to suppress it with a reason).
    pub hint: &'static str,
    /// Rule-specific stable core of the finding — what it is about,
    /// independent of source line (e.g. `scores.iter` for DET001,
    /// `held:core:record` for CONC003). Fingerprints hash this instead of
    /// the line so baselines survive unrelated edits.
    pub key: String,
    /// Name of the enclosing function (engine-filled; empty at file scope).
    pub scope: String,
    /// Taint witness chain, outermost call first, seed last. Empty for
    /// intraprocedural findings.
    pub chain: Vec<String>,
    /// Stable fingerprint (engine-filled): hash of
    /// `rule|file|scope|key|ordinal`.
    pub fingerprint: String,
}

/// Per-file context the engine passes to the rules.
pub struct FileCtx<'a> {
    /// Path relative to the scan root, with `/` separators.
    pub rel_path: &'a str,
    /// True for `src/lib.rs` files directly under a directory with a
    /// `Cargo.toml` (the crate roots DOC001 governs).
    pub is_crate_root: bool,
}

/// All rule ids, in report order. DET001/DET002 cover both the per-site
/// and the interprocedural (taint-chain) findings; the CONC family is
/// implemented in [`crate::conc`].
pub const ALL_RULES: [&str; 8] = [
    "DET001", "DET002", "PANIC001", "SAFETY001", "DOC001", "CONC001", "CONC002", "CONC003",
];

/// Files allowed to read the wall clock without a suppression: the obs
/// event layer is the one sanctioned wall-clock authority (it segregates
/// wall fields out of the determinism boundary by construction).
pub(crate) const DET002_ALLOWLIST: [&str; 1] = ["crates/obs/src/event.rs"];

/// Paths PANIC001 skips wholesale: test and bench harness code, where
/// fail-fast is the correct idiom.
const PANIC001_EXEMPT_DIRS: [&str; 3] = ["/tests/", "/benches/", "/examples/"];

fn ident_is(t: &Token, s: &str) -> bool {
    matches!(&t.tok, Tok::Ident(w) if w == s)
}

fn ident_in(t: &Token, set: &[&str]) -> bool {
    matches!(&t.tok, Tok::Ident(w) if set.iter().any(|s| s == w))
}

fn punct_is(t: &Token, c: char) -> bool {
    matches!(&t.tok, Tok::Punct(p) if *p == c)
}

/// Runs every rule (or the `only` subset) over one file.
pub fn run_rules(
    ctx: &FileCtx<'_>,
    lexed: &Lexed,
    analysis: &Analysis,
    only: &BTreeSet<String>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let want = |rule: &str| only.is_empty() || only.contains(rule);
    if want("DET001") {
        det001(ctx, lexed, analysis, &mut findings);
    }
    if want("DET002") {
        det002(ctx, lexed, analysis, &mut findings);
    }
    if want("PANIC001") {
        panic001(ctx, lexed, analysis, &mut findings);
    }
    if want("SAFETY001") {
        safety001(ctx, lexed, analysis, &mut findings);
    }
    if want("DOC001") {
        doc001(ctx, lexed, &mut findings);
    }
    findings
}

// ---------------------------------------------------------------- DET001

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ORDER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Collects names bound to hash-ordered containers, file-wide: typed
/// bindings/params/fields (`name: [&]HashMap<…>`) and `let` statements
/// whose initializer mentions a hash type (`let m = HashMap::new()`,
/// `…collect::<HashSet<_>>()`).
pub(crate) fn hash_named_bindings(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        // `name : [&]* [mut] [std :: collections ::] HashMap`
        if punct_is(t, ':') && i >= 1 && !punct_is(&tokens[i - 1], ':') {
            if let Tok::Ident(name) = &tokens[i - 1].tok {
                let mut j = i + 1;
                while j < tokens.len()
                    && (punct_is(&tokens[j], '&')
                        || ident_is(&tokens[j], "mut")
                        || ident_is(&tokens[j], "std")
                        || ident_is(&tokens[j], "collections")
                        || punct_is(&tokens[j], ':'))
                {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| ident_in(t, &HASH_TYPES)) {
                    names.insert(name.clone());
                }
            }
        }
        // `let [mut] name … = <stmt mentioning HashMap/HashSet> ;`
        if ident_is(t, "let") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| ident_is(t, "mut")) {
                j += 1;
            }
            let name = match tokens.get(j).map(|t| &t.tok) {
                Some(Tok::Ident(n)) => n.clone(),
                _ => continue,
            };
            let mut brace = 0i32;
            let mut mentions_hash = false;
            for tk in tokens.iter().skip(j + 1) {
                match &tk.tok {
                    Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => brace += 1,
                    Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                        if brace == 0 {
                            break;
                        }
                        brace -= 1;
                    }
                    Tok::Punct(';') if brace == 0 => break,
                    Tok::Ident(w) if HASH_TYPES.iter().any(|h| h == w) => {
                        mentions_hash = true;
                    }
                    _ => {}
                }
            }
            if mentions_hash {
                names.insert(name);
            }
        }
    }
    names
}

/// True when `tokens[i]` is a hash-bound receiver: `name` or
/// `self . field` with the name in `names`.
fn hash_receiver(tokens: &[Token], i: usize, names: &BTreeSet<String>) -> Option<String> {
    if let Tok::Ident(w) = &tokens[i].tok {
        if names.contains(w) {
            if w == "self" {
                return None;
            }
            return Some(w.clone());
        }
        if i >= 2 && punct_is(&tokens[i - 1], '.') && ident_is(&tokens[i - 2], "self") && names.contains(w)
        {
            return Some(format!("self.{w}"));
        }
    }
    None
}

/// What a function body does with accumulated state: float accumulation
/// and/or serialized output. Returns the human "why" when either holds —
/// the contexts where iteration order leaks into results.
pub(crate) fn fold_profile(body: &[Token]) -> Option<&'static str> {
    let mut float_ctx = false;
    let mut plus_eq = false;
    let mut ser_out = false;
    for (k, t) in body.iter().enumerate() {
        match &t.tok {
            Tok::Punct('+') if body.get(k + 1).is_some_and(|n| punct_is(n, '=')) => {
                plus_eq = true;
            }
            Tok::Ident(w) if w == "f64" || w == "f32" => float_ctx = true,
            Tok::Num(n) if n.contains('.') => float_ctx = true,
            // `.sum::<f64>()` — float type within the turbofish.
            Tok::Ident(w)
                if (w == "sum" || w == "product")
                    && body
                        .iter()
                        .skip(k + 1)
                        .take(4)
                        .any(|t| ident_in(t, &["f64", "f32"])) =>
            {
                plus_eq = true;
                float_ctx = true;
            }
            Tok::Ident(w)
                if (w == "write" || w == "writeln")
                    && body.get(k + 1).is_some_and(|n| punct_is(n, '!')) =>
            {
                ser_out = true;
            }
            Tok::Ident(w) if w == "to_json" || w == "push_str" || w == "serialize" => {
                ser_out = true;
            }
            _ => {}
        }
    }
    match (plus_eq && float_ctx, ser_out) {
        (true, true) => Some("accumulates floats and writes serialized output"),
        (true, false) => Some("accumulates floats"),
        (false, true) => Some("writes serialized output"),
        (false, false) => None,
    }
}

/// Hash-ordered iteration sites inside one function body (non-test tokens
/// only): `(line, description)` pairs like `("m.values()", 12)`. Shared
/// by per-site DET001 and the interprocedural taint seeds.
pub(crate) fn hash_iter_sites(
    f: &crate::analyze::FnSpan,
    tokens: &[Token],
    analysis: &Analysis,
    names: &BTreeSet<String>,
) -> Vec<(u32, String)> {
    let body = &tokens[f.body_open..=f.body_close];
    let mut sites = Vec::new();
    for (k, t) in body.iter().enumerate() {
        let abs = f.body_open + k;
        if analysis.is_test[abs] {
            continue;
        }
        // `recv . iter ( )` et al.
        if let Some(recv) = hash_receiver(body, k, names) {
            if body.get(k + 1).is_some_and(|n| punct_is(n, '.'))
                && body.get(k + 2).is_some_and(|n| ident_in(n, &ORDER_METHODS))
                && body.get(k + 3).is_some_and(|n| punct_is(n, '('))
            {
                let method = match &body[k + 2].tok {
                    Tok::Ident(m) => m.clone(),
                    _ => String::new(),
                };
                sites.push((t.line, format!("{recv}.{method}()")));
            }
        }
        // `for pat in [&][mut] recv {`
        if ident_is(t, "for") {
            let mut j = k + 1;
            let mut depth = 0i32;
            while j < body.len() {
                match &body[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                    Tok::Punct('{') if depth == 0 => break,
                    Tok::Ident(w) if w == "in" && depth == 0 => {
                        let mut m = j + 1;
                        while m < body.len()
                            && (punct_is(&body[m], '&') || ident_is(&body[m], "mut"))
                        {
                            m += 1;
                        }
                        let recv_at = if m + 2 < body.len()
                            && ident_is(&body[m], "self")
                            && punct_is(&body[m + 1], '.')
                        {
                            m + 2
                        } else {
                            m
                        };
                        if let Some(recv) = hash_receiver(body, recv_at, names) {
                            // Only a bare binding up to the loop body
                            // (methods on it were handled above).
                            if body.get(recv_at + 1).is_some_and(|n| punct_is(n, '{')) {
                                sites.push((t.line, format!("for … in {recv}")));
                            }
                        }
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
    sites
}

fn det001(ctx: &FileCtx<'_>, lexed: &Lexed, analysis: &Analysis, out: &mut Vec<Finding>) {
    let tokens = &lexed.tokens;
    let names = hash_named_bindings(tokens);
    if names.is_empty() {
        return;
    }
    for f in &analysis.fns {
        if f.is_test {
            continue;
        }
        let Some(why) = fold_profile(&tokens[f.body_open..=f.body_close]) else {
            continue;
        };
        for (line, desc) in hash_iter_sites(f, tokens, analysis, &names) {
            out.push(Finding {
                rule: "DET001",
                file: ctx.rel_path.to_owned(),
                line,
                message: format!("hash-ordered iteration `{desc}` in a function that {why}"),
                hint: DET001_HINT,
                key: desc,
                ..Finding::default()
            });
        }
    }
}

const DET001_HINT: &str = "use BTreeMap/BTreeSet, sort keys before folding, or keep an \
insertion-order Vec; if order provably cannot reach any output, suppress with \
`// crowdkit-lint: allow(DET001) — <reason>`";

// ---------------------------------------------------------------- DET002

fn det002(ctx: &FileCtx<'_>, lexed: &Lexed, analysis: &Analysis, out: &mut Vec<Finding>) {
    if DET002_ALLOWLIST.contains(&ctx.rel_path) {
        return;
    }
    let tokens = &lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if analysis.is_test[i] {
            continue;
        }
        let flagged = if ident_is(t, "Instant") {
            tokens.get(i + 1).is_some_and(|a| punct_is(a, ':'))
                && tokens.get(i + 2).is_some_and(|a| punct_is(a, ':'))
                && tokens.get(i + 3).is_some_and(|a| ident_is(a, "now"))
        } else {
            ident_is(t, "SystemTime")
        };
        if flagged {
            out.push(Finding {
                rule: "DET002",
                file: ctx.rel_path.to_owned(),
                line: t.line,
                message: "wall-clock read outside the sanctioned telemetry boundary".to_owned(),
                hint: "route timings through crowdkit-obs (`obs::WallTimer` / wall-clock event \
fields); only the obs event layer may read the clock directly. Suppress with \
`// crowdkit-lint: allow(DET002) — <reason>` for genuinely wall-clock-permitted code",
                key: "wall-clock".to_owned(),
                ..Finding::default()
            });
        }
    }
}

// -------------------------------------------------------------- PANIC001

/// Number of top-level commas inside the delimiter group opening at token
/// index `open`. Distinguishes `Option::expect("msg")` (one argument, zero
/// commas) from user-defined multi-argument `expect` methods such as a
/// parser's `self.expect(&Token::LParen, "'('")`.
fn top_level_commas(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut commas = 0usize;
    for t in &tokens[open..] {
        if let Tok::Punct(c) = &t.tok {
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return commas;
                    }
                }
                ',' if depth == 1 => commas += 1,
                _ => {}
            }
        }
    }
    commas
}

fn panic001(ctx: &FileCtx<'_>, lexed: &Lexed, analysis: &Analysis, out: &mut Vec<Finding>) {
    if PANIC001_EXEMPT_DIRS
        .iter()
        .any(|d| format!("/{}", ctx.rel_path).contains(d))
    {
        return;
    }
    let tokens = &lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if analysis.is_test[i] {
            continue;
        }
        let what = if punct_is(t, '.')
            && tokens.get(i + 1).is_some_and(|n| ident_is(n, "unwrap"))
            && tokens.get(i + 2).is_some_and(|n| punct_is(n, '('))
        {
            Some(("unwrap()", tokens[i + 1].line))
        } else if punct_is(t, '.')
            && tokens.get(i + 1).is_some_and(|n| ident_is(n, "expect"))
            && tokens.get(i + 2).is_some_and(|n| punct_is(n, '('))
            // `Option/Result::expect` takes exactly one argument; calls
            // with more are user-defined methods (parser combinators).
            && top_level_commas(tokens, i + 2) == 0
        {
            Some(("expect(…)", tokens[i + 1].line))
        } else if ident_is(t, "panic")
            && tokens.get(i + 1).is_some_and(|n| punct_is(n, '!'))
        {
            Some(("panic!", t.line))
        } else {
            None
        };
        if let Some((what, line)) = what {
            out.push(Finding {
                rule: "PANIC001",
                file: ctx.rel_path.to_owned(),
                line,
                message: format!("`{what}` in non-test library code"),
                hint: "return a CrowdError (or propagate with `?`); for provably infallible \
sites, suppress with `// crowdkit-lint: allow(PANIC001) — <why it cannot fail>`",
                key: what.to_owned(),
                ..Finding::default()
            });
        }
    }
}

// ------------------------------------------------------------- SAFETY001

fn safety001(ctx: &FileCtx<'_>, lexed: &Lexed, analysis: &Analysis, out: &mut Vec<Finding>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if analysis.is_test[i] || !ident_is(t, "unsafe") {
            continue;
        }
        let justified = lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.line + 3 >= t.line && c.line <= t.line
        });
        if !justified {
            out.push(Finding {
                rule: "SAFETY001",
                file: ctx.rel_path.to_owned(),
                line: t.line,
                message: "`unsafe` without an adjacent `// SAFETY:` justification".to_owned(),
                hint: "document the invariant that makes this sound in a `// SAFETY:` comment \
on or directly above the unsafe block",
                key: "unsafe".to_owned(),
                ..Finding::default()
            });
        }
    }
}

// ---------------------------------------------------------------- DOC001

fn doc001(ctx: &FileCtx<'_>, lexed: &Lexed, out: &mut Vec<Finding>) {
    // Every source module (any `.rs` under a `src/` directory, crate
    // roots included) must open with a `//!` module doc — before the
    // first code token — saying what the module is for.
    if ctx.rel_path.contains("src/") && ctx.rel_path.ends_with(".rs") {
        let first_code_line = lexed.tokens.first().map_or(u32::MAX, |t| t.line);
        let has_module_doc = lexed
            .comments
            .iter()
            .any(|c| !c.trailing && c.text.starts_with('!') && c.line <= first_code_line);
        if !has_module_doc {
            out.push(Finding {
                rule: "DOC001",
                file: ctx.rel_path.to_owned(),
                line: 1,
                message: "source module missing a `//!` module doc header".to_owned(),
                hint: "open every src module with a `//!` doc comment stating what the \
module is and why it exists",
                key: "module-doc".to_owned(),
                ..Finding::default()
            });
        }
    }
    if !ctx.is_crate_root {
        return;
    }
    let tokens = &lexed.tokens;
    let has_inner_attr = |outer: &str, inner: &str| -> bool {
        tokens.windows(7).any(|w| {
            punct_is(&w[0], '#')
                && punct_is(&w[1], '!')
                && punct_is(&w[2], '[')
                && ident_is(&w[3], outer)
                && punct_is(&w[4], '(')
                && ident_is(&w[5], inner)
                && punct_is(&w[6], ')')
        })
    };
    for (outer, inner) in [
        ("warn", "missing_docs"),
        ("warn", "rust_2018_idioms"),
        ("forbid", "unsafe_code"),
    ] {
        if !has_inner_attr(outer, inner) {
            out.push(Finding {
                rule: "DOC001",
                file: ctx.rel_path.to_owned(),
                line: 1,
                message: format!("crate root missing `#![{outer}({inner})]`"),
                hint: "every crate root carries the standard lint header: \
#![warn(missing_docs)], #![warn(rust_2018_idioms)], #![forbid(unsafe_code)]; a crate that \
must opt out suppresses with a written exception",
                key: format!("header:{outer}({inner})"),
                ..Finding::default()
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::lexer::lex;

    fn panic_lines(src: &str) -> Vec<u32> {
        let lexed = lex(src);
        let analysis = analyze(&lexed);
        let ctx = FileCtx {
            rel_path: "crates/x/src/lib.rs",
            is_crate_root: false,
        };
        let mut out = Vec::new();
        panic001(&ctx, &lexed, &analysis, &mut out);
        out.into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn expect_arity_discriminates_std_from_parser_methods() {
        let src = "fn f() {\n\
            self.expect(&Token::LParen, \"'('\")?;\n\
            let x = opt.expect(\"present\");\n\
            let y = opt.expect(fmt(a, b));\n\
            }\n";
        // Line 2 is a two-argument user method — not Option::expect.
        // Line 4's commas sit inside a nested call, so it is one argument.
        assert_eq!(panic_lines(src), vec![3, 4]);
    }
}
