//! Structural analysis over the token stream: brace matching, test-scope
//! marking, and function spans.
//!
//! The rules need three pieces of structure a flat token stream does not
//! give them: which `}` closes which `{`, which tokens live inside
//! `#[cfg(test)]` items or `mod tests` blocks (so shipped-code rules can
//! skip them), and where function bodies begin and end (DET001 reasons
//! about co-occurrence *within one function*).

use crate::lexer::{Lexed, Tok, Token};

/// Token-level structure for one file.
pub struct Analysis {
    /// `brace_match[i] = Some(j)` when token `i` is a `{` closed by token
    /// `j` (and symmetrically for the `}`).
    pub brace_match: Vec<Option<usize>>,
    /// True for tokens inside `#[cfg(test)]`/`#[test]` items or
    /// `mod tests { … }` blocks.
    pub is_test: Vec<bool>,
    /// Every `fn` item with a body, in source order.
    pub fns: Vec<FnSpan>,
}

/// One function item: its body's token range and source lines.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// Token index of the body's `{`.
    pub body_open: usize,
    /// Token index of the body's `}`.
    pub body_close: usize,
    /// Line of the `fn` keyword.
    pub start_line: u32,
    /// Line of the closing `}`.
    pub end_line: u32,
    /// True when the whole item is test-scoped.
    pub is_test: bool,
}

fn ident_is(tok: &Token, s: &str) -> bool {
    matches!(&tok.tok, Tok::Ident(w) if w == s)
}

fn punct_is(tok: &Token, c: char) -> bool {
    matches!(&tok.tok, Tok::Punct(p) if *p == c)
}

/// Builds the brace-match table with a simple stack. Unbalanced files
/// leave unmatched entries as `None`.
fn match_braces(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut out = vec![None; tokens.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if punct_is(t, '{') {
            stack.push(i);
        } else if punct_is(t, '}') {
            if let Some(open) = stack.pop() {
                out[open] = Some(i);
                out[i] = Some(open);
            }
        }
    }
    out
}

/// Marks tokens covered by `#[cfg(test)]` / `#[test]` items and
/// `mod tests { … }` blocks.
fn mark_tests(tokens: &[Token], brace_match: &[Option<usize>]) -> Vec<bool> {
    let mut is_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        // `#[...]` attribute: scan its bracket contents.
        if punct_is(&tokens[i], '#')
            && i + 1 < tokens.len()
            && punct_is(&tokens[i + 1], '[')
        {
            let attr_start = i;
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut body: Vec<&Tok> = Vec::new();
            while j < tokens.len() {
                if punct_is(&tokens[j], '[') {
                    depth += 1;
                } else if punct_is(&tokens[j], ']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else {
                    body.push(&tokens[j].tok);
                }
                j += 1;
            }
            let test_attr = match body.first() {
                Some(Tok::Ident(w)) if w == "test" => true,
                Some(Tok::Ident(w)) if w == "cfg" => body
                    .iter()
                    .any(|t| matches!(t, Tok::Ident(w) if w == "test")),
                _ => false,
            };
            if test_attr {
                // The attribute governs the next item: everything up to
                // the end of the next top-level brace block, or up to a
                // `;` if none opens first.
                let mut k = j + 1;
                let mut end = tokens.len().saturating_sub(1);
                while k < tokens.len() {
                    if punct_is(&tokens[k], '{') {
                        end = brace_match[k].unwrap_or(end);
                        break;
                    }
                    if punct_is(&tokens[k], ';') {
                        end = k;
                        break;
                    }
                    k += 1;
                }
                for flag in is_test
                    .iter_mut()
                    .take(end.min(tokens.len() - 1) + 1)
                    .skip(attr_start)
                {
                    *flag = true;
                }
                i = j + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        // `mod tests { … }` with no attribute (the conventional form is
        // attributed, but belt and braces).
        if ident_is(&tokens[i], "mod")
            && i + 2 < tokens.len()
            && ident_is(&tokens[i + 1], "tests")
            && punct_is(&tokens[i + 2], '{')
        {
            if let Some(close) = brace_match[i + 2] {
                for flag in is_test.iter_mut().take(close + 1).skip(i) {
                    *flag = true;
                }
            }
            i += 3;
            continue;
        }
        i += 1;
    }
    is_test
}

/// Finds every `fn` with a body: from the keyword, the first `{` at
/// paren-depth zero opens the body (a `;` first means a bodyless trait
/// method declaration).
fn find_fns(tokens: &[Token], brace_match: &[Option<usize>], is_test: &[bool]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !ident_is(t, "fn") {
            continue;
        }
        let mut paren = 0i32;
        let mut j = i + 1;
        while j < tokens.len() {
            match &tokens[j].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Punct(';') if paren == 0 => break,
                Tok::Punct('{') if paren == 0 => {
                    if let Some(close) = brace_match[j] {
                        fns.push(FnSpan {
                            kw: i,
                            body_open: j,
                            body_close: close,
                            start_line: t.line,
                            end_line: tokens[close].line,
                            is_test: is_test[i],
                        });
                    }
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
    fns
}

/// Runs the full structural pass.
pub fn analyze(lexed: &Lexed) -> Analysis {
    let brace_match = match_braces(&lexed.tokens);
    let is_test = mark_tests(&lexed.tokens, &brace_match);
    let fns = find_fns(&lexed.tokens, &brace_match, &is_test);
    Analysis {
        brace_match,
        is_test,
        fns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_scopes_the_next_item() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn live2() {}";
        let lx = lex(src);
        let a = analyze(&lx);
        let unwrap_idx = lx
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(w) if w == "unwrap"))
            .expect("unwrap token present");
        assert!(a.is_test[unwrap_idx]);
        let live2 = lx
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(w) if w == "live2"))
            .expect("live2 token present");
        assert!(!a.is_test[live2]);
    }

    #[test]
    fn cfg_test_use_statement_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}";
        let lx = lex(src);
        let a = analyze(&lx);
        let live = lx
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(w) if w == "live"))
            .expect("live token present");
        assert!(!a.is_test[live]);
    }

    #[test]
    fn fn_spans_cover_bodies_not_signatures_with_semicolons() {
        let src = "trait T { fn decl(&self); }\nfn real() -> u32 { 7 }";
        let a = analyze(&lex(src));
        assert_eq!(a.fns.len(), 1);
        assert_eq!(a.fns[0].start_line, 2);
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = "#[test]\nfn check() { assert!(true); }\nfn live() {}";
        let lx = lex(src);
        let a = analyze(&lx);
        assert!(a.fns[0].is_test);
        assert!(!a.fns[1].is_test);
    }
}
